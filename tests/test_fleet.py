"""Fleet engine suite: scalar equivalence, mobility, multi-AP network.

The load-bearing contract here is **bitwise equivalence**: with
``phy_exact_coding=True``, :class:`repro.core.fleet.TagFleet` poll
rounds must match the scalar :class:`repro.core.multitag.MultiTagCell`
reference bit for bit — addressed, broadcast and idle queries, for any
``batch_tags`` chunking and any engine worker count.  Everything the
fleet tier's speed claims rest on is asserted in this file (the gated
benchmark in ``benchmarks/test_fleet.py`` only re-checks a digest
before timing).

Also covered: the satellite fixes that made the equivalence possible —
``MultiTagCell`` draw-order independence from endpoint-dict insertion
order, consistent no-responder fading — plus ``TagPoller`` per-tag RNG
substreams, incremental mobility invalidation, and the event-driven
:class:`repro.sim.network.FleetNetwork` layer.
"""

import functools

import numpy as np
import pytest

from repro.core.fleet import TagFleet, _tag_generators
from repro.core.multitag import MultiTagCell
from repro.core.system import WiTagSystem
from repro.phy.channel import ChannelGeometry
from repro.runner import UnitContext, run_units
from repro.runner.workers import FleetSpec, fleet_poll_stats
from repro.sim.network import (
    FleetNetwork,
    NearestApPolicy,
    RandomWalkMobility,
    ReaderCell,
    StrongestRxPolicy,
    TagPoller,
    TrafficStation,
    _named_substream,
)
from repro.sim.scenario import build_system
from repro.tag.state_machine import TagStateMachine

pytestmark = pytest.mark.fleet


def make_fleet(n=5, seed=7, **kwargs) -> TagFleet:
    """A small fleet with tags scattered around the reader axis."""
    rng = np.random.default_rng(seed)
    positions = np.column_stack(
        [rng.uniform(1.0, 9.0, n), rng.uniform(-4.0, 4.0, n)]
    )
    kwargs.setdefault("phy_exact_coding", True)
    return TagFleet.build(positions, seed=seed, **kwargs)


def load_all(target, names, seed=3, bits_per_tag=24):
    rng = np.random.default_rng(seed)
    for name in names:
        target.load_bits(
            name, [int(b) for b in rng.integers(0, 2, bits_per_tag)]
        )


def as_tuple(result):
    """A comparable, order-insensitive view of one query result."""
    return (
        result.address,
        result.block_ack.ssn,
        result.block_ack.bitmap,
        result.raw_bits,
        tuple(sorted(result.responded)),
        tuple(sorted(result.per_tag_sent.items())),
    )


def assert_rounds_equal(got, want):
    assert sorted(got) == sorted(want)
    for name in got:
        assert as_tuple(got[name]) == as_tuple(want[name]), name


class TestScalarEquivalence:
    """Fleet poll paths are bitwise identical to the MultiTagCell."""

    @pytest.mark.parametrize("batch_tags", [1, 2, 3, 256])
    def test_addressed_rounds_match_reference(self, batch_tags):
        fleet = make_fleet(n=5, seed=11, batch_tags=batch_tags)
        cell = fleet.reference_cell()
        load_all(fleet, fleet.names)
        load_all(cell, fleet.names)
        for _ in range(3):  # drains queues, advances SSNs
            assert_rounds_equal(fleet.poll_round(), cell.poll_round())

    def test_broadcast_matches_reference(self):
        fleet = make_fleet(n=4, seed=5)
        cell = fleet.reference_cell()
        load_all(fleet, fleet.names, bits_per_tag=10)
        load_all(cell, fleet.names, bits_per_tag=10)
        for _ in range(3):
            got = fleet.run_query(address=None)
            want = cell.run_query(address=None)
            assert as_tuple(got) == as_tuple(want)

    def test_idle_no_responder_matches_reference(self):
        # No queued bits anywhere: nobody responds, and the benign
        # no-responder decode (one fading from the first endpoint, one
        # outcome vector) must match the fixed scalar branch exactly.
        fleet = make_fleet(n=3, seed=2)
        cell = fleet.reference_cell()
        for address in (None, fleet.names[1], fleet.names[0]):
            got = fleet.run_query(address=address)
            want = cell.run_query(address=address)
            assert got.responded == () and want.responded == ()
            assert as_tuple(got) == as_tuple(want)

    def test_mixed_sequence_matches_reference(self):
        # Partial queues: some tags drain mid-sequence, flipping
        # queries between responding and idle along the way.
        fleet = make_fleet(n=4, seed=9)
        cell = fleet.reference_cell()
        for target in (fleet, cell):
            target.load_bits(fleet.names[0], [1, 0, 1])
            target.load_bits(fleet.names[2], [0, 1] * 40)
        script = [
            fleet.names[0],
            None,
            fleet.names[1],  # idle tag
            fleet.names[2],
            None,
            fleet.names[0],  # drained by now
        ]
        for address in script:
            got = fleet.run_query(address=address)
            want = cell.run_query(address=address)
            assert as_tuple(got) == as_tuple(want)

    def test_chunking_is_draw_neutral(self):
        # Per-row generators make batch_tags a pure memory knob: any
        # chunking gives bitwise-identical rounds (default coding too).
        rounds = []
        for batch_tags in (1, 3, 256):
            fleet = make_fleet(
                n=6, seed=13, batch_tags=batch_tags, phy_exact_coding=False
            )
            load_all(fleet, fleet.names)
            rounds.append(
                [
                    {n: as_tuple(r) for n, r in fleet.poll_round().items()}
                    for _ in range(2)
                ]
            )
        assert rounds[0] == rounds[1] == rounds[2]

    def test_worker_count_is_result_neutral(self):
        # The same fleet units through the parallel engine: serial vs a
        # two-process pool must return identical values (the engine's
        # determinism contract extends to fleet workloads).
        fn = functools.partial(
            fleet_poll_stats,
            spec=FleetSpec(n_tags=6, phy_exact_coding=True),
            rounds=1,
            bits_per_tag=8,
        )
        units = [
            UnitContext(index=i, parameters={"unit": i}, root_seed=21)
            for i in range(3)
        ]
        serial = run_units(fn, list(units), seed=21, n_workers=1)
        parallel = run_units(
            fn, list(units), seed=21, n_workers=2, executor="process"
        )
        assert serial.values == parallel.values
        assert all(v["queries"] == 6 for v in serial.values)

    def test_load_bits_and_pending_roundtrip(self):
        fleet = make_fleet(n=3, seed=1)
        fleet.load_bits(fleet.names[1], [1, 0, 1, 1])
        assert fleet.pending_bits(fleet.names[1]) == 4
        assert fleet.pending_bits(fleet.names[0]) == 0
        with pytest.raises(KeyError, match="unknown tag"):
            fleet.load_bits("nope", [1])


class TestAddressedEqualsSingleTagSystem:
    """An addressed query with N idle neighbours == one WiTagSystem.

    The property from the ISSUE: idle neighbours draw nothing during an
    addressed query, so the fleet's result must equal a single-tag
    :class:`WiTagSystem` built from the addressed tag's own substreams.
    All-ones payloads keep ``WiTagSystem._effective_states`` from
    drawing misalignment collateral (it only fires for zero bits), which
    is the one scalar-system feature the multi-tag model omits.
    """

    @pytest.mark.parametrize("seed", [0, 4, 17])
    @pytest.mark.parametrize("target", [0, 2])
    def test_property(self, seed, target):
        fleet = make_fleet(n=3, seed=seed)
        name = fleet.names[target]
        n_bits = 12
        fleet.load_bits(name, [1] * n_bits)

        channel_rng, error_rng, tag_rng = _tag_generators(
            fleet._seed, target
        )
        from repro.phy.channel import BackscatterChannel
        from repro.phy.error_model import LinkErrorModel

        channel = BackscatterChannel(
            geometry=ChannelGeometry(
                tx_rx_m=fleet._tx_rx_m,
                tx_tag_m=float(fleet._tx_tag_m[target]),
                tag_rx_m=float(fleet._tag_rx_m[target]),
            ),
            band=fleet._band,
            direct_loss=fleet._direct_loss,
            tx_tag_loss=fleet._tx_tag_loss,
            tag_rx_loss=fleet._tag_rx_loss,
            antenna=fleet._antenna,
            rician_k_db=fleet._rician_k_db,
            tag_rician_k_db=fleet._tag_rician_k_db,
            channel_width_mhz=fleet._channel_width_mhz,
            rng=channel_rng,
        )
        system = WiTagSystem(
            config=fleet.config,
            error_model=LinkErrorModel(
                channel=channel,
                mcs=fleet.config.mcs,
                tx_power_dbm=fleet._tx_power_dbm,
                receiver=fleet._receiver,
                mismatch_gain_db=fleet._mismatch_gain_db,
                rng=error_rng,
                kernel_tier=fleet._kernel_tier,
            ),
            tag=TagStateMachine(rng=tag_rng),
            phy_fast_path=False,  # the scalar reference decode loop
        )
        system.load_tag_bits([1] * n_bits)

        got = fleet.run_query(address=name)
        want = system.run_query()

        assert np.isclose(
            float(fleet.rx_power_dbm[target]), want.rx_power_at_tag_dbm
        )
        assert got.responded == (name,)
        assert got.block_ack.ssn == want.block_ack.ssn
        assert got.block_ack.bitmap == want.block_ack.bitmap
        sent = got.per_tag_sent[name]
        assert sent == want.sent_bits
        assert tuple(got.raw_bits[: len(sent)]) == want.received_bits


class TestMultiTagDrawOrder:
    """Regression for the satellite fixes in MultiTagCell.run_query."""

    def test_endpoint_dict_order_does_not_change_results(self):
        fleet = make_fleet(n=4, seed=23)
        forward = fleet.reference_cell()
        backward = fleet.reference_cell()
        backward.endpoints = dict(
            reversed(list(backward.endpoints.items()))
        )
        load_all(forward, fleet.names, bits_per_tag=16)
        load_all(backward, fleet.names, bits_per_tag=16)
        for address in (None, None, fleet.names[2], None):
            got = forward.run_query(address=address)
            want = backward.run_query(address=address)
            assert as_tuple(got) == as_tuple(want)

    def test_failing_tag_does_not_truncate_other_streams(self):
        # Every responder's full outcome vector must be drawn even when
        # an earlier tag already killed a subframe: a broadcast and the
        # same broadcast with one tag removed must give the surviving
        # tags identical per-tag decode draws.  With the old early
        # `break` the second cell's error stream advanced differently.
        fleet = make_fleet(n=3, seed=31)
        full = fleet.reference_cell()
        load_all(full, fleet.names, bits_per_tag=16)
        full.run_query(address=None)
        state_after_full = [
            full.endpoints[n].error_model.rng.bit_generator.state["state"]
            for n in fleet.names
        ]

        solo = fleet.reference_cell()
        load_all(solo, fleet.names, bits_per_tag=16)
        solo.endpoints[fleet.names[0]].tag.data_queue.clear()  # drop one
        solo.run_query(address=None)
        # Tags 1 and 2 must have consumed exactly as much of their own
        # error streams as in the full broadcast.
        for n in fleet.names[1:]:
            assert (
                solo.endpoints[n].error_model.rng.bit_generator.state[
                    "state"
                ]
                == state_after_full[fleet.names.index(n)]
            )

    def test_no_responder_branch_draws_one_fading(self):
        # The fixed branch consumes the first endpoint's channel stream
        # exactly like one responding link would: one fading sample.
        fleet = make_fleet(n=2, seed=6)
        idle_cell = fleet.reference_cell()
        idle_cell.run_query(address=None)  # nobody loaded: no responder

        probe_cell = fleet.reference_cell()
        probe_cell.endpoints[
            fleet.names[0]
        ].error_model.sample_fading()
        first = fleet.names[0]
        assert (
            idle_cell.endpoints[first].error_model.channel.rng
            .bit_generator.state["state"]
            == probe_cell.endpoints[first].error_model.channel.rng
            .bit_generator.state["state"]
        )


@pytest.mark.adaptive
class TestScheduledFleetEquivalence:
    """Traffic-aware polling is tier-invariant at the fleet level.

    Given equal traffic and interference streams, the scheduler's
    ride/skip decisions and the collision-corrupted poll rounds must be
    bit-identical between a :class:`TagFleet` and its scalar
    ``reference_cell()`` — the fleet leg of the ISSUE-10 equivalence
    suite.
    """

    @staticmethod
    def _wrap(poller):
        from repro.traffic import (
            HoltPredictor,
            OnOffTraffic,
            OpportunityScheduler,
            ScheduledFleetPoller,
        )

        return ScheduledFleetPoller(
            poller=poller,
            traffic=OnOffTraffic(
                rate_fps=600.0,
                mean_on_s=0.30,
                mean_off_s=0.45,
                rng=np.random.default_rng(3),
            ),
            scheduler=OpportunityScheduler(predictor=HoltPredictor()),
            interference_rng=np.random.default_rng(4),
        )

    def test_fleet_rounds_match_reference_cell(self):
        fleet = make_fleet(n=4, seed=11)
        cell = fleet.reference_cell()
        load_all(fleet, fleet.names, bits_per_tag=400)
        load_all(cell, fleet.names, bits_per_tag=400)
        a, b = self._wrap(fleet), self._wrap(cell)
        rounds_a = a.run_windows(25)
        rounds_b = b.run_windows(25)
        assert a.decisions == b.decisions
        assert a.rides == b.rides == len(rounds_a) > 0
        assert len(a.decisions) == 25
        for got, want in zip(rounds_a, rounds_b):
            assert_rounds_equal(got, want)

    def test_scheduled_polling_is_deterministic(self):
        def run():
            fleet = make_fleet(n=3, seed=8)
            load_all(fleet, fleet.names, bits_per_tag=200)
            poller = self._wrap(fleet)
            rounds = poller.run_windows(20)
            return (
                poller.decisions,
                [
                    {n: as_tuple(r) for n, r in round_.items()}
                    for round_ in rounds
                ],
            )

        assert run() == run()

    def test_run_windows_validation(self):
        poller = self._wrap(make_fleet(n=2, seed=1))
        with pytest.raises(ValueError):
            poller.run_windows(0)


class TestMobility:
    def test_update_positions_refreshes_only_moved_rows(self):
        fleet = make_fleet(n=6, seed=3)
        h_before = fleet._h_tag_los.copy()
        rot_before = fleet._tag_rotation.copy()
        rx_before = fleet.rx_power_dbm.copy()
        moved = [1, 4]
        fleet.update_positions(
            moved, [(5.5, 2.0), (2.5, -1.5)]
        )
        assert fleet.invalidated_rows == 2
        for i in range(6):
            if i in moved:
                assert fleet._h_tag_los[i] != h_before[i]
                assert not np.array_equal(
                    fleet._tag_rotation[i], rot_before[i]
                )
            else:
                assert fleet._h_tag_los[i] == h_before[i]
                assert np.array_equal(
                    fleet._tag_rotation[i], rot_before[i]
                )
                assert fleet.rx_power_dbm[i] == rx_before[i]

    def test_mobility_keeps_determinism(self):
        def run():
            fleet = make_fleet(n=4, seed=8)
            load_all(fleet, fleet.names)
            fleet.poll_round()
            fleet.update_positions([0, 2], [(3.0, 1.0), (6.0, -2.0)])
            return {
                n: as_tuple(r) for n, r in fleet.poll_round().items()
            }

        assert run() == run()

    def test_update_positions_rejects_zero_distance(self):
        fleet = make_fleet(n=2, seed=0)
        with pytest.raises(ValueError, match="client or AP"):
            fleet.update_positions([0], [(0.0, 0.0)])


class TestTagPollerSubstreams:
    """Satellite 3: per-tag RNG substreams in the round-robin poller."""

    @staticmethod
    def _systems(n, seed=3):
        return {
            f"t{i}": build_system(
                ChannelGeometry(
                    tx_rx_m=3.0, tx_tag_m=1.0 + 0.3 * i, tag_rx_m=2.5
                ),
                seed=seed + i,
            )[0]
            for i in range(n)
        }

    def test_adding_a_tag_never_perturbs_existing_streams(self):
        two = {
            r.tag_name: r.stats
            for r in TagPoller(self._systems(2), seed=7).run_rounds(2)
        }
        three = {
            r.tag_name: r.stats
            for r in TagPoller(self._systems(3), seed=7).run_rounds(2)
        }
        for name, stats in two.items():
            assert three[name] == stats

    def test_shared_rng_escape_hatch_reproduces_shared_draws(self):
        def run():
            poller = TagPoller(
                self._systems(2),
                shared_rng=True,
                rng=np.random.default_rng(5),
            )
            return [(r.tag_name, r.stats) for r in poller.run_rounds(2)]

        assert run() == run()

    def test_substream_depends_only_on_name(self):
        a = _named_substream(9, "tag-a").random(4)
        b = _named_substream(9, "tag-a").random(4)
        other = _named_substream(9, "tag-b").random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, other)


class TestFleetNetwork:
    @staticmethod
    def _network(seed=11, mobility=None, policy=None, mobility_dt_s=1.0):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0.0, 10.0, size=(16, 2)) + [0.0, 1.0]
        cells = [
            ReaderCell(
                "ap0", ap_xy=(0.0, 0.0),
                stations=(TrafficStation("bg0"),),
            ),
            ReaderCell("ap1", ap_xy=(10.0, 0.0)),
        ]
        return FleetNetwork(
            cells,
            positions,
            seed=seed,
            policy=policy,
            mobility=mobility,
            mobility_dt_s=mobility_dt_s,
        )

    def test_assignment_partitions_the_population(self):
        net = self._network()
        assigned = set(net.assigned_names(0)) | set(net.assigned_names(1))
        assert assigned == set(net.names)
        assert (
            len(net.assigned_names(0)) + len(net.assigned_names(1))
            == net.n_tags
        )

    def test_event_driven_rounds_are_deterministic(self):
        def run():
            net = self._network(
                mobility=RandomWalkMobility(
                    bounds=(0.0, 1.0, 10.0, 11.0),
                    step_m=3.0,
                    fraction=0.5,
                    seed=4,
                ),
                mobility_dt_s=0.002,
            )
            load_all(net, net.names, bits_per_tag=200)
            return net.run_rounds(3), net.handoffs, net.invalidated_rows

        first, second = run(), run()
        assert first == second
        stats = first[0]
        assert len(stats) == 6  # 3 rounds x 2 APs
        assert sum(s.bits_sent for s in stats) > 0
        assert all(s.duration_s > 0 for s in stats)

    def test_mobility_handoff_conserves_queued_bits(self):
        net = self._network(
            policy=StrongestRxPolicy(hysteresis_db=0.5),
            mobility=RandomWalkMobility(
                bounds=(0.0, 1.0, 10.0, 11.0),
                step_m=4.0,
                fraction=0.8,
                seed=4,
            ),
            mobility_dt_s=0.002,
        )
        loaded = 16 * 100
        load_all(net, net.names, bits_per_tag=100)
        stats = net.run_rounds(4)
        assert net.mobility_ticks > 0
        assert net.invalidated_rows > 0
        sent = sum(s.bits_sent for s in stats)
        pending = sum(net.pending_bits(n) for n in net.names)
        assert sent + pending == loaded  # no bits lost across handoffs

    def test_nearest_policy_and_validation(self):
        net = self._network(policy=NearestApPolicy())
        ap_of_closest = net.assignment[
            int(np.argmin(net.positions[:, 0]))
        ]
        assert ap_of_closest == 0
        with pytest.raises(ValueError, match="at least one reader cell"):
            FleetNetwork([], [(1.0, 1.0)])
        with pytest.raises(ValueError, match="distinct"):
            FleetNetwork(
                [
                    ReaderCell("a", ap_xy=(0.0, 0.0)),
                    ReaderCell("a", ap_xy=(5.0, 0.0)),
                ],
                [(1.0, 1.0)],
            )


class TestMultiTagCellStillWorks:
    """The reference cell API the fleet claims to mirror."""

    def test_poll_round_addresses_every_tag(self):
        fleet = make_fleet(n=3, seed=19)
        cell = fleet.reference_cell()
        load_all(cell, fleet.names)
        round_results = cell.poll_round()
        assert sorted(round_results) == sorted(fleet.names)
        for name, result in round_results.items():
            assert result.address == name

    def test_cell_rejects_unknown_address(self):
        cell = make_fleet(n=2, seed=1).reference_cell()
        with pytest.raises(KeyError, match="unknown tag"):
            cell.run_query(address="ghost")
