"""``repro top``, multi-payload metrics merge, and exposition fidelity.

The offline halves of the observability surface:

* :mod:`repro.obs.top` — loading a metrics payload from disk and
  rendering it must work without a server, and the render must carry
  every series in the snapshot (that is what makes ``repro top
  --input`` a faithful text twin of ``/dash``).
* ``repro metrics --input A --input B`` — several payloads merge
  additively with full label-series algebra (union of label sets,
  summed counters, merged histogram buckets).
* Prometheus exposition fidelity — every counter/gauge series in a
  :class:`repro.obs.ServerMetrics` snapshot appears in
  ``render_prometheus`` with the same value, and label values
  containing backslashes, quotes and newlines survive the escaping
  round trip (property-based).
"""

import json
import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cli import main
from repro.obs import MetricsRegistry, ServerMetrics, render_prometheus
from repro.obs.top import load_status, render_status, run_top


def payload(counter_value, label, *, hist=()):
    """A minimal aggregated telemetry payload, as --metrics-out writes."""
    registry = MetricsRegistry()
    registry.counter("demo_total", "demo", labels=("kind",)).labels(
        kind=label
    ).inc(counter_value)
    family = registry.histogram("demo_seconds", (0.1, 1.0), "demo")
    for value in hist:
        family.labels().observe(value)
    return {
        "schema": 1,
        "version": "test",
        "chunks": 1,
        "metrics": registry.snapshot(),
    }


class TestTop:
    def test_load_status_accepts_payload_and_bare_snapshot(self, tmp_path):
        wrapped = tmp_path / "payload.json"
        wrapped.write_text(json.dumps(payload(3, "a")))
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(payload(3, "a")["metrics"]))
        for path in (wrapped, bare):
            status = load_status(str(path))
            assert status["health"] is None
            families = status["metrics"]["metrics"]
            assert (
                families["demo_total"]["series"][0]["value"] == 3.0
            )

    def test_load_status_rejects_metricless_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"values": [1, 2]}))
        with pytest.raises(ValueError, match="no metrics snapshot"):
            load_status(str(path))

    def test_render_carries_every_series(self, tmp_path):
        path = tmp_path / "payload.json"
        path.write_text(
            json.dumps(payload(7, "x", hist=[0.05, 0.5, 5.0]))
        )
        text = render_status(load_status(str(path)))
        assert "demo_total{kind=x}  7" in text
        assert "demo_seconds: count 3" in text
        # Three occupied buckets, one bar line each.
        assert text.count("#") >= 3
        assert str(path) in text

    def test_render_includes_server_sections(self):
        status = {
            "source": "http://x",
            "health": {
                "version": "1.0.0",
                "slots": 2,
                "queue_depth": 1,
                "jobs": {"running": 1, "queued": 1},
            },
            "jobs": [
                {
                    "id": "j1",
                    "kind": "sweep",
                    "state": "running",
                    "chunks_done": 2,
                    "n_chunks": 4,
                    "error": None,
                }
            ],
            "metrics": {"schema": 1, "metrics": {}},
        }
        text = render_status(status)
        assert "slots 2" in text and "queue depth 1" in text
        assert "queued=1" in text and "running=1" in text
        assert re.search(r"j1\s+sweep\s+running\s+2/4", text)

    def test_run_top_from_file_prints_once(self, tmp_path, capsys):
        path = tmp_path / "payload.json"
        path.write_text(json.dumps(payload(2, "b")))
        assert run_top(input_path=str(path)) == 0
        out = capsys.readouterr().out
        assert "demo_total{kind=b}  2" in out
        assert "\x1b[" not in out  # no clear-screen in one-shot mode

    def test_run_top_argument_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            run_top()
        with pytest.raises(ValueError, match="exactly one"):
            run_top(url="http://x", input_path="y")

    def test_cli_top_input(self, tmp_path, capsys):
        path = tmp_path / "payload.json"
        path.write_text(json.dumps(payload(4, "c")))
        assert main(["top", "--input", str(path)]) == 0
        assert "demo_total{kind=c}  4" in capsys.readouterr().out

    def test_cli_top_unreachable_server_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "top",
                    "--url",
                    "http://127.0.0.1:9",  # discard port: refused
                    "--once",
                ]
            )
            == 2
        )
        assert "repro top:" in capsys.readouterr().err


class TestMetricsInputMerge:
    def test_two_payloads_merge_label_series(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(payload(3, "alpha", hist=[0.05])))
        b = tmp_path / "b.json"
        b.write_text(
            json.dumps(payload(5, "beta", hist=[0.5, 5.0]))
        )
        both = tmp_path / "both.json"
        both.write_text(json.dumps(payload(10, "alpha")))
        assert (
            main(
                [
                    "metrics",
                    "--input",
                    str(a),
                    "--input",
                    str(b),
                    "--input",
                    str(both),
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        merged = json.loads(capsys.readouterr().out)
        assert merged["chunks"] == 3
        series = {
            entry["labels"]["kind"]: entry["value"]
            for entry in merged["metrics"]["metrics"]["demo_total"][
                "series"
            ]
        }
        assert series == {"alpha": 13.0, "beta": 5.0}
        hist = merged["metrics"]["metrics"]["demo_seconds"]["series"][0]
        assert hist["count"] == 3
        assert hist["counts"] == [1, 1, 1]

    def test_single_input_is_unchanged(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        original = payload(3, "alpha")
        a.write_text(json.dumps(original))
        assert (
            main(["metrics", "--input", str(a), "--format", "json"]) == 0
        )
        assert json.loads(capsys.readouterr().out) == original

    def test_metricless_input_fails(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(payload(1, "a")))
        b = tmp_path / "b.json"
        b.write_text(json.dumps({"no": "metrics"}))
        assert (
            main(
                [
                    "metrics",
                    "--input",
                    str(a),
                    "--input",
                    str(b),
                    "--format",
                    "json",
                ]
            )
            == 2
        )
        assert "no metrics snapshot" in capsys.readouterr().err


def parse_exposition(text):
    """Sample lines of a Prometheus exposition as {series: value}."""
    samples = {}
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


class TestServerMetricsExposition:
    def test_every_snapshot_series_is_exposed(self):
        metrics = ServerMetrics()
        metrics.job_submitted("sweep")
        metrics.job_submitted("sweep")
        metrics.job_submitted("sessions")
        metrics.set_job_states({"running": 1, "queued": 2})
        metrics.set_queue_depth(2)
        metrics.chunk_completed(0.25, resumed=False)
        metrics.chunk_completed(0.5, resumed=True)
        metrics.event_streamed()
        snapshot = metrics.snapshot()
        samples = parse_exposition(metrics.render_prometheus())
        checked = 0
        for name, family in snapshot["metrics"].items():
            for entry in family["series"]:
                labels = "".join(
                    f'{k}="{v}"' for k, v in entry["labels"].items()
                )
                if family["type"] == "histogram":
                    key = (
                        f"{name}_count{{{labels}}}"
                        if labels
                        else f"{name}_count"
                    )
                    assert samples[key] == entry["count"], name
                else:
                    key = f"{name}{{{labels}}}" if labels else name
                    assert samples[key] == entry["value"], name
                checked += 1
        assert checked >= 10  # submitted kinds + 5 states + the rest


LABEL_VALUES = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",)
    ),
    max_size=30,
)


def unescape_label(value):
    out = []
    i = 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}[nxt])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


class TestLabelEscaping:
    @given(LABEL_VALUES)
    def test_label_values_round_trip_through_exposition(self, value):
        # The exposition format frames samples on "\n" alone (other
        # vertical whitespace passes through inside quoted labels), so
        # the parse here splits exactly as a scraper would.
        registry = MetricsRegistry()
        registry.counter("demo_total", "", labels=("tag",)).labels(
            tag=value
        ).inc()
        text = render_prometheus(registry.snapshot())
        sample = next(
            line
            for line in text.split("\n")
            if line.startswith("demo_total{")
        )
        match = re.fullmatch(
            r'demo_total\{tag="(.*)"\} 1', sample, flags=re.DOTALL
        )
        assert match is not None, sample
        assert "\n" not in sample
        assert unescape_label(match.group(1)) == value

    def test_awkward_values_stay_single_line(self):
        registry = MetricsRegistry()
        family = registry.counter("demo_total", "", labels=("tag",))
        awkward = ['a\\b', 'say "hi"', "line\nbreak", '\\n"']
        for value in awkward:
            family.labels(tag=value).inc()
        text = render_prometheus(registry.snapshot())
        sample_lines = [
            line
            for line in text.split("\n")
            if line and not line.startswith("#")
        ]
        assert len(sample_lines) == len(awkward)
