"""Unit tests for the backscatter channel model."""

import math

import numpy as np
import pytest

from repro.phy.channel import (
    BackscatterChannel,
    ChannelGeometry,
    PathLossModel,
    TagAntenna,
    TagState,
)
from repro.phy.constants import Band


def make_channel(d_tag=4.0, seed=0, **kwargs):
    geometry = ChannelGeometry.on_line(8.0, d_tag)
    return BackscatterChannel(
        geometry=geometry, rng=np.random.default_rng(seed), **kwargs
    )


class TestPathLoss:
    def test_free_space_at_known_distance(self):
        # FSPL at 8 m, 2.437 GHz ~= 58.2 dB.
        model = PathLossModel()
        wavelength = Band.GHZ_2_4.wavelength_m
        assert model.path_loss_db(8.0, wavelength) == pytest.approx(
            58.2, abs=0.3
        )

    def test_obstruction_adds(self):
        wall = PathLossModel(obstruction_db=12.0)
        clear = PathLossModel()
        wl = Band.GHZ_2_4.wavelength_m
        assert wall.path_loss_db(5.0, wl) == pytest.approx(
            clear.path_loss_db(5.0, wl) + 12.0
        )

    def test_exponent_slope(self):
        model = PathLossModel(exponent=3.0)
        wl = 0.125
        delta = model.path_loss_db(10.0, wl) - model.path_loss_db(1.0, wl)
        assert delta == pytest.approx(30.0)

    def test_amplitude_gain_consistent(self):
        model = PathLossModel()
        wl = 0.125
        gain = model.amplitude_gain(4.0, wl)
        assert -20 * math.log10(gain) == pytest.approx(
            model.path_loss_db(4.0, wl)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PathLossModel(exponent=0.0)
        with pytest.raises(ValueError):
            PathLossModel(reference_m=0.0)
        with pytest.raises(ValueError):
            PathLossModel(obstruction_db=-1.0)
        with pytest.raises(ValueError):
            PathLossModel().path_loss_db(0.0, 0.125)


class TestGeometry:
    def test_on_line(self):
        g = ChannelGeometry.on_line(8.0, 3.0)
        assert g.tx_tag_m == 3.0
        assert g.tag_rx_m == 5.0
        assert g.excess_delay_s == pytest.approx(0.0)

    def test_on_line_bounds(self):
        with pytest.raises(ValueError):
            ChannelGeometry.on_line(8.0, 0.0)
        with pytest.raises(ValueError):
            ChannelGeometry.on_line(8.0, 8.0)

    def test_triangle_inequality(self):
        with pytest.raises(ValueError):
            ChannelGeometry(tx_rx_m=10.0, tx_tag_m=1.0, tag_rx_m=2.0)

    def test_excess_delay_off_line(self):
        g = ChannelGeometry(tx_rx_m=8.0, tx_tag_m=5.0, tag_rx_m=5.0)
        assert g.excess_delay_s == pytest.approx(2.0 / 2.998e8, rel=1e-3)

    def test_positive_distances(self):
        with pytest.raises(ValueError):
            ChannelGeometry(tx_rx_m=-1.0, tx_tag_m=1.0, tag_rx_m=1.0)


class TestTagAntenna:
    def test_rcs_scale(self):
        # ~2 dBi omni at 12.3 cm: sigma on the order of 1e-3 m^2.
        sigma = TagAntenna().radar_cross_section_m2(0.123)
        assert 1e-3 < sigma < 1e-2

    def test_rcs_grows_with_gain(self):
        low = TagAntenna(gain_dbi=0.0).radar_cross_section_m2(0.123)
        high = TagAntenna(gain_dbi=6.0).radar_cross_section_m2(0.123)
        assert high > low

    def test_efficiency_validated(self):
        with pytest.raises(ValueError):
            TagAntenna(modulation_efficiency=0.0)
        with pytest.raises(ValueError):
            TagAntenna(modulation_efficiency=1.5)


class TestTagStates:
    def test_reflection_coefficients(self):
        assert TagState.REFLECT_0.reflection_coefficient == 1.0
        assert TagState.REFLECT_180.reflection_coefficient == -1.0
        assert abs(TagState.ABSORB.reflection_coefficient) < 0.2


class TestBackscatterChannel:
    def test_direct_gain_matches_path_loss(self):
        ch = make_channel()
        expected = PathLossModel().amplitude_gain(
            8.0, Band.GHZ_2_4.wavelength_m
        )
        assert abs(ch.direct_gain) == pytest.approx(expected)

    def test_phase_flip_doubles_channel_change(self):
        """Paper Figure 3: |h' - h''| = 2 |h_tag| vs ~ |h_tag| open/short."""
        ch = make_channel()
        flip = ch.mean_change_magnitude(
            TagState.REFLECT_0, TagState.REFLECT_180
        )
        open_short = ch.mean_change_magnitude(
            TagState.ABSORB, TagState.REFLECT_0
        )
        assert flip / open_short == pytest.approx(2.0 / 0.9, rel=1e-6)

    def test_change_magnitude_u_shape(self):
        """Reflection weakest mid-span (paper Section 6.2's 1/Ds^2 Dr^2)."""
        mags = [
            make_channel(d).mean_change_magnitude(
                TagState.REFLECT_0, TagState.REFLECT_180
            )
            for d in (1.0, 4.0, 7.0)
        ]
        assert mags[0] > mags[1]
        assert mags[2] > mags[1]
        assert mags[0] == pytest.approx(mags[2], rel=0.01)

    def test_same_state_no_change(self):
        ch = make_channel()
        assert ch.mean_change_magnitude(
            TagState.REFLECT_0, TagState.REFLECT_0
        ) == pytest.approx(0.0)

    def test_channel_vector_shape(self):
        ch = make_channel()
        h = ch.channel_vector(TagState.REFLECT_0)
        assert h.shape == (ch.n_subcarriers,)
        assert ch.n_subcarriers == 52

    def test_fading_disabled_is_deterministic(self):
        ch = make_channel(rician_k_db=None)
        assert ch.sample_direct_fading() == ch.sample_direct_fading()

    def test_fading_mean_power_preserved(self):
        ch = make_channel(rician_k_db=10.0, seed=3)
        samples = np.array([ch.sample_direct_fading() for _ in range(4000)])
        mean_power = np.mean(np.abs(samples) ** 2)
        assert mean_power == pytest.approx(abs(ch.direct_gain) ** 2, rel=0.1)

    def test_tag_fading_unit_mean_power(self):
        ch = make_channel(tag_rician_k_db=5.0, seed=4)
        samples = np.array([ch.sample_tag_fading() for _ in range(4000)])
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_tag_fading_disabled(self):
        ch = make_channel(tag_rician_k_db=None)
        assert ch.sample_tag_fading() == 1.0 + 0.0j

    def test_reflected_path_much_weaker_than_direct(self):
        ch = make_channel()
        assert ch.tag_path_amplitude < 0.1 * abs(ch.direct_gain)

    def test_deterministic_under_seed(self):
        a = make_channel(seed=9)
        b = make_channel(seed=9)
        assert np.allclose(
            a.channel_vector(TagState.REFLECT_0),
            b.channel_vector(TagState.REFLECT_0),
        )

    def test_split_leg_losses(self):
        blocked = BackscatterChannel(
            geometry=ChannelGeometry(tx_rx_m=8.0, tx_tag_m=1.0, tag_rx_m=7.0),
            tag_rx_loss=PathLossModel(obstruction_db=20.0),
            rng=np.random.default_rng(0),
        )
        clear = BackscatterChannel(
            geometry=ChannelGeometry(tx_rx_m=8.0, tx_tag_m=1.0, tag_rx_m=7.0),
            rng=np.random.default_rng(0),
        )
        ratio = blocked.tag_path_amplitude / clear.tag_path_amplitude
        assert 20 * math.log10(ratio) == pytest.approx(-20.0, abs=0.1)
