"""Integration tests: full tag-to-reader message transfer.

These exercise the complete paper pipeline — framing, FEC, tag FSM, query
frames, channel corruption, block ACKs, reader — rather than any single
module.
"""

import numpy as np
import pytest

from repro.core.decoder import TagReader
from repro.core.encoder import LineCode, TagEncoder
from repro.core.fec import HammingCode, RepetitionCode
from repro.core.framing import TagMessage
from repro.core.session import MeasurementSession
from repro.sim.scenario import los_scenario, nlos_scenario


def transfer_message(payload: bytes, *, encoder=None, d=1.5, seed=33,
                     max_queries=40):
    """Send one framed message through the full system; return messages."""
    encoder = encoder or TagEncoder()
    system, _ = los_scenario(d, seed=seed)
    message_bits = TagMessage(payload=payload).to_bits()
    system.load_tag_bits(encoder.encode(message_bits))
    reader = TagReader(encoder=encoder)
    for _ in range(max_queries):
        result = system.run_query()
        reader.ingest(result.block_ack, result.query)
        if reader.messages():
            break
    return reader.messages()


class TestMessageTransfer:
    def test_short_message(self):
        messages = transfer_message(b"23.5C")
        assert [m.payload for m in messages] == [b"23.5C"]

    def test_multi_query_message(self):
        """A message longer than one A-MPDU spans several queries."""
        payload = b"soil-moisture=0.41;battery=harvesting;node=7"
        messages = transfer_message(payload)
        assert messages and messages[0].payload == payload

    def test_with_hamming_fec(self):
        messages = transfer_message(
            b"fec!", encoder=TagEncoder(fec=HammingCode())
        )
        assert messages and messages[0].payload == b"fec!"

    def test_with_repetition_at_midspan(self):
        """Repetition-3 pushes a message through the worst tag position."""
        messages = transfer_message(
            b"mid", encoder=TagEncoder(fec=RepetitionCode(3)), d=4.0,
            max_queries=60,
        )
        assert messages and messages[0].payload == b"mid"

    def test_manchester_line_code(self):
        messages = transfer_message(
            b"mc", encoder=TagEncoder(line_code=LineCode.MANCHESTER)
        )
        assert messages and messages[0].payload == b"mc"

    def test_back_to_back_messages(self):
        encoder = TagEncoder()
        system, _ = los_scenario(1.5, seed=34)
        for payload in (b"first", b"second"):
            bits = TagMessage(payload=payload).to_bits()
            system.load_tag_bits(encoder.encode(bits))
        reader = TagReader(encoder=encoder)
        for _ in range(10):
            result = system.run_query()
            reader.ingest(result.block_ack, result.query)
        payloads = [m.payload for m in reader.messages()]
        assert payloads == [b"first", b"second"]


class TestPaperClaims:
    """End-to-end assertions of the paper's headline numbers (shapes)."""

    def test_fig5_u_shape(self):
        """BER low at endpoints, higher mid-span (Figure 5)."""
        bers = {}
        for d in (1.0, 4.0, 7.0):
            system, _ = los_scenario(d, seed=50)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(1)
            ).run_for(1.5)
            bers[d] = stats.ber
        assert bers[4.0] > bers[1.0]
        assert bers[4.0] > bers[7.0]
        assert bers[1.0] < 0.02
        assert bers[4.0] < 0.15

    def test_fig5_throughput_stable_around_40kbps(self):
        """Throughput ~40 Kbps with only a slight mid-span dip (Figure 5)."""
        rates = {}
        for d in (1.0, 4.0):
            system, _ = los_scenario(d, seed=51)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(2)
            ).run_for(1.0)
            rates[d] = stats.throughput_bps
        assert 38e3 < rates[1.0] < 45e3
        assert rates[4.0] > 0.9 * rates[1.0]

    def test_fig6_nlos_works_and_orders(self):
        """Low BER in NLOS; location B worse than A (Figure 6)."""
        bers = {}
        for location in ("A", "B"):
            system, _ = nlos_scenario(location, seed=52)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(3)
            ).run_for(1.5)
            bers[location] = stats.ber
        assert bers["A"] < 0.02
        assert bers["B"] < 0.05
        assert bers["B"] > bers["A"]

    def test_ap_has_no_witag_logic(self):
        """The AP is a standard block-ACK recipient, oblivious to the tag.

        Structural assertion: the scoreboard type used as the 'AP' comes
        from the generic MAC package and contains no tag-related
        attributes.
        """
        from repro.mac.block_ack import BlockAckScoreboard

        attrs = {a for a in dir(BlockAckScoreboard) if not a.startswith("_")}
        assert attrs == {"record", "bitmap", "reset", "ssn"}
