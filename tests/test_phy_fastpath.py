"""Equivalence and regression suite for the vectorized PHY fast path.

Three layers of guarantees:

* **Bitwise**: the batch SINR/outcome APIs draw randomness in exactly
  the scalar order, so from the same generator state they must return
  bit-identical results to the per-subframe reference loop.
* **Tolerance**: the interpolated coded-BER table (the one deliberate
  approximation on the fast path) stays within ~1e-3 relative of the
  exact union bound, and whole sessions agree with the scalar path.
* **Pinned**: headline Figure 5 / Figure 3 numbers recorded before the
  optimization landed must keep reproducing (exact query/bit counts,
  banded BER) with the fast path on.
"""

import numpy as np
import pytest

from repro.core.session import MeasurementSession
from repro.phy.channel import (
    BackscatterChannel,
    ChannelGeometry,
    TagState,
)
from repro.phy.coding import (
    coded_bit_error_rate,
    coded_bit_error_rate_batch,
    packet_error_rate,
    packet_error_rate_batch,
)
from repro.phy.error_model import (
    FadingSample,
    LinkErrorModel,
    mpdu_success_probabilities,
    mpdu_success_probability,
)
from repro.phy.mcs import ht_mcs

MCS_TABLE = [ht_mcs(i) for i in range(8)]
from repro.sim.scenario import los_scenario

STATES = [
    TagState.REFLECT_0,
    TagState.ABSORB,
    TagState.REFLECT_0,
    TagState.REFLECT_0,
    TagState.ABSORB,
    TagState.ABSORB,
    TagState.REFLECT_0,
    TagState.ABSORB,
]


def _model(seed=7, mcs_index=3):
    channel = BackscatterChannel(
        ChannelGeometry.on_line(8.0, 3.0),
        rng=np.random.default_rng(seed),
    )
    return LinkErrorModel(
        channel,
        MCS_TABLE[mcs_index],
        rng=np.random.default_rng(seed + 1),
    )


def _fading():
    return FadingSample(
        direct_gain=0.9e-4 + 0.2e-4j, tag_fading=1.1 - 0.05j
    )


class TestBitwiseEquivalence:
    def test_batch_sinrs_match_scalar_with_estimation_noise(self):
        scalar_model = _model()
        batch_model = _model()
        fading = _fading()
        expected = np.array(
            [
                scalar_model.subframe_effective_sinr(
                    TagState.REFLECT_0, state, fading
                )
                for state in STATES
            ]
        )
        got = batch_model.subframe_effective_sinrs(
            TagState.REFLECT_0, STATES, fading
        )
        # Bitwise, not approximate: same RNG draws, same float op order.
        assert got.tolist() == expected.tolist()
        # Both paths consumed the identical randomness stream.
        assert (
            scalar_model.rng.bit_generator.state
            == batch_model.rng.bit_generator.state
        )

    def test_batch_sinrs_match_scalar_without_estimation_noise(self):
        model = _model()
        fading = _fading()
        expected = np.array(
            [
                model.subframe_effective_sinr(
                    TagState.REFLECT_0,
                    state,
                    fading,
                    include_estimation_noise=False,
                )
                for state in STATES
            ]
        )
        got = model.subframe_effective_sinrs(
            TagState.REFLECT_0, STATES, fading,
            include_estimation_noise=False,
        )
        assert got.tolist() == expected.tolist()

    def test_batch_outcomes_match_scalar_with_exact_coding(self):
        scalar_model = _model(seed=21)
        batch_model = _model(seed=21)
        fading = _fading()
        bits = [8 * 120] * len(STATES)
        expected = [
            scalar_model.subframe_outcome(
                bits[i], TagState.REFLECT_0, STATES[i], fading
            )
            for i in range(len(STATES))
        ]
        got = batch_model.subframe_outcomes(
            bits, TagState.REFLECT_0, STATES, fading, exact_coding=True
        )
        assert got.tolist() == expected
        assert (
            scalar_model.rng.bit_generator.state
            == batch_model.rng.bit_generator.state
        )

    def test_mpdu_success_probabilities_exact_matches_scalar(self):
        mcs = MCS_TABLE[4]
        sinrs = np.geomspace(0.1, 300.0, 17)
        expected = [
            mpdu_success_probability(mcs, 960, float(s)) for s in sinrs
        ]
        got = mpdu_success_probabilities(mcs, 960, sinrs, exact=True)
        assert got.tolist() == expected

    def test_per_mcs_uncoded_ber_array_matches_scalar(self):
        snrs = np.geomspace(1e-3, 1e3, 25)
        for mcs in MCS_TABLE:
            scalar = np.array(
                [mcs.modulation.bit_error_rate(float(s)) for s in snrs]
            )
            vector = mcs.modulation.bit_error_rate_array(snrs)
            np.testing.assert_allclose(vector, scalar, rtol=1e-12)


class TestDedup:
    def test_repeated_states_equal_unique_rows(self):
        model = _model(seed=3)
        fading = _fading()
        states = [TagState.REFLECT_0] * 5
        sinrs = model.subframe_effective_sinrs(
            TagState.REFLECT_0, states, fading,
            include_estimation_noise=False,
        )
        # Noise-free + one distinct state: every subframe identical.
        assert len(set(sinrs.tolist())) == 1
        assert sinrs.shape == (5,)

    def test_empty_batch(self):
        model = _model()
        sinrs = model.subframe_effective_sinrs(
            TagState.REFLECT_0, [], _fading()
        )
        assert sinrs.shape == (0,)
        outcomes = model.subframe_outcomes(
            [], TagState.REFLECT_0, [], _fading()
        )
        assert outcomes.shape == (0,)

    def test_all_three_states_one_ampdu(self):
        scalar_model = _model(seed=9)
        batch_model = _model(seed=9)
        fading = _fading()
        states = [
            TagState.ABSORB,
            TagState.REFLECT_0,
            TagState.REFLECT_180,
            TagState.REFLECT_180,
            TagState.ABSORB,
        ]
        expected = [
            scalar_model.subframe_effective_sinr(
                TagState.REFLECT_180, s, fading
            )
            for s in states
        ]
        got = batch_model.subframe_effective_sinrs(
            TagState.REFLECT_180, states, fading
        )
        assert got.tolist() == expected


class TestCodedBerTable:
    def test_table_tracks_exact_union_bound(self):
        # The scalar reference rounds p to 9 decimals for its own cache,
        # so sample at 9-decimal-representable points where it evaluates
        # the true bound; the table interpolates the same unrounded p.
        probabilities = np.unique(
            np.round(np.geomspace(1e-8, 0.5, 400), 9)
        )
        probabilities = probabilities[probabilities > 0]
        for mcs in MCS_TABLE:
            exact = np.array(
                [
                    coded_bit_error_rate(mcs.coding_rate, float(p))
                    for p in probabilities
                ]
            )
            table = coded_bit_error_rate_batch(
                mcs.coding_rate, probabilities
            )
            np.testing.assert_allclose(table, exact, rtol=2e-3)

    def test_tiny_probabilities_map_to_zero(self):
        out = coded_bit_error_rate_batch(
            MCS_TABLE[0].coding_rate, np.array([0.0, 1e-13])
        )
        assert out.tolist() == [0.0, 0.0]

    def test_packet_error_rate_batch_matches_scalar(self):
        bers = np.array([0.0, 1e-9, 1e-6, 1e-3, 0.2, 0.5])
        bits = 8 * 150
        expected = [packet_error_rate(float(b), bits) for b in bers]
        got = packet_error_rate_batch(bers, bits)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_fast_success_probabilities_close_to_exact(self):
        mcs = MCS_TABLE[3]
        sinrs = np.geomspace(0.5, 200.0, 60)
        exact = mpdu_success_probabilities(mcs, 1200, sinrs, exact=True)
        fast = mpdu_success_probabilities(mcs, 1200, sinrs)
        # The table's ~1e-3 relative coded-BER error translates to a few
        # 1e-6 absolute on success probabilities (observed max ~3.4e-6).
        np.testing.assert_allclose(fast, exact, atol=1e-4)


class TestChannelVectorCache:
    def test_static_vector_cached_and_read_only(self):
        channel = BackscatterChannel(
            ChannelGeometry.on_line(8.0, 2.0),
            rng=np.random.default_rng(5),
        )
        first = channel.channel_vector(TagState.REFLECT_0)
        second = channel.channel_vector(TagState.REFLECT_0)
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 0.0

    def test_cached_value_matches_uncached_formula(self):
        channel = BackscatterChannel(
            ChannelGeometry.on_line(8.0, 2.0),
            rng=np.random.default_rng(5),
        )
        cached = channel.channel_vector(TagState.REFLECT_180)
        explicit = channel.channel_vector(
            TagState.REFLECT_180, channel.direct_gain
        )
        np.testing.assert_allclose(cached, explicit, rtol=1e-15)

    def test_faded_calls_bypass_cache(self):
        channel = BackscatterChannel(
            ChannelGeometry.on_line(8.0, 2.0),
            rng=np.random.default_rng(5),
        )
        faded = channel.channel_vector(
            TagState.REFLECT_0, 1e-4 + 1e-4j, 0.8 + 0.1j
        )
        assert faded.flags.writeable  # fresh array, not the cache
        again = channel.channel_vector(
            TagState.REFLECT_0, 1e-4 + 1e-4j, 0.8 + 0.1j
        )
        assert faded is not again

    def test_invalidate_caches(self):
        channel = BackscatterChannel(
            ChannelGeometry.on_line(8.0, 2.0),
            rng=np.random.default_rng(5),
        )
        first = channel.channel_vector(TagState.ABSORB)
        channel.invalidate_caches()
        second = channel.channel_vector(TagState.ABSORB)
        assert first is not second
        np.testing.assert_array_equal(first, second)


class TestSystemFastPath:
    def test_session_stats_match_scalar_path(self):
        fast_system, _ = los_scenario(4.0, seed=42)
        slow_system, _ = los_scenario(4.0, seed=42, phy_fast_path=False)
        assert fast_system.phy_fast_path
        assert not slow_system.phy_fast_path
        fast = MeasurementSession(
            fast_system, rng=np.random.default_rng(43)
        ).run_queries(40)
        slow = MeasurementSession(
            slow_system, rng=np.random.default_rng(43)
        ).run_queries(40)
        assert fast.queries == slow.queries == 40
        assert fast.bits_sent == slow.bits_sent
        assert fast.elapsed_s == slow.elapsed_s
        # Outcomes may differ only via the coded-BER table (~1e-6 flip
        # probability per subframe); at this sample size they never
        # diverge measurably.
        assert abs(fast.ber - slow.ber) < 5e-3

    def test_counters_populated(self):
        system, _ = los_scenario(4.0, seed=11)
        session = MeasurementSession(
            system, rng=np.random.default_rng(12)
        )
        session.run_queries(2)
        timings = session.stage_timings()
        assert set(timings) == {"system", "error_model"}
        assert timings["system"]["phy-decode"]["calls"] == 2
        assert timings["system"]["query-build"]["calls"] == 2
        for stage in ("channel", "csi", "eesm", "coding"):
            assert timings["error_model"][stage]["seconds"] >= 0.0
            assert timings["error_model"][stage]["calls"] > 0


class TestPinnedBaselines:
    """Headline numbers recorded before the fast path landed.

    Query/bit counts are timing-driven and must reproduce exactly; BER
    is pinned to the recorded value with a band wide enough for the
    coded-BER table's ~1e-6 per-subframe outcome-flip probability yet
    far tighter than any physical effect in the figures.
    """

    # (distance_m, queries, bits_sent, ber) with scenario seed
    # 100 + distance and session rng seed 200 + distance, run_for(0.4).
    FIG5_BASELINE = [
        (1.0, 275, 17050, 0.003988269794721408),
        (4.0, 275, 17050, 0.03741935483870968),
        (7.0, 275, 17050, 0.004398826979472141),
    ]

    @pytest.mark.parametrize(
        "distance_m,queries,bits_sent,ber", FIG5_BASELINE
    )
    def test_fig5_points_reproduce(
        self, distance_m, queries, bits_sent, ber
    ):
        system, _ = los_scenario(distance_m, seed=100 + int(distance_m))
        session = MeasurementSession(
            system, rng=np.random.default_rng(200 + int(distance_m))
        )
        stats = session.run_for(0.4)
        assert stats.queries == queries
        assert stats.bits_sent == bits_sent
        assert stats.ber == pytest.approx(ber, abs=2e-3)

    def test_fig3_channel_change_magnitudes(self):
        system, _ = los_scenario(4.0, seed=104)
        channel = system.error_model.channel
        assert channel.mean_change_magnitude(
            TagState.ABSORB, TagState.REFLECT_0
        ) == pytest.approx(7.876669245162025e-06, rel=1e-9)
        assert channel.mean_change_magnitude(
            TagState.REFLECT_0, TagState.REFLECT_180
        ) == pytest.approx(1.7503709433693393e-05, rel=1e-9)
