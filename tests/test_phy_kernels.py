"""Decode kernel tiers: selection, twins, and bitwise equivalence.

:mod:`repro.phy.kernels` packages the session-batch decode hot stages
(EESM reduction, fused MPDU success probability, outcome sampling) as
swappable kernels behind the ``kernel_tier`` knob.  The numpy tier must
be operation-for-operation the existing reference code; the numba tier
(exercised only where numba is installed — the CI matrix leg) must be
bitwise identical or fall back per-kernel via the probe gate.  This
suite pins the selection rules, the numpy twins against the originals,
the pairwise-summation spec the jitted EESM mean relies on, and the
end-to-end ``kernel_tier`` threading through scenarios and sessions.
"""

import numpy as np
import pytest

from repro.phy.coding import (
    coded_bit_error_rate_batch,
    packet_error_rate_batch,
)
from repro.phy.csi import EESM_BETA, eesm_effective_sinr_batch
from repro.phy.kernels import (
    HAVE_NUMBA,
    KERNEL_TIERS,
    KernelSet,
    _pairwise_sum_spec,
    _probe_sinr_matrix,
    get_kernels,
)
from repro.phy.mcs import vht_mcs


def bitwise(a, b):
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


class TestSelection:
    def test_tiers_tuple(self):
        assert KERNEL_TIERS == ("auto", "numpy", "numba")

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="kernel_tier"):
            get_kernels("fortran")

    def test_numpy_tier(self):
        kernels = get_kernels("numpy")
        assert isinstance(kernels, KernelSet)
        assert kernels.tier == "numpy"
        assert kernels.fallbacks == ()

    def test_auto_resolves(self):
        kernels = get_kernels("auto")
        assert kernels.tier == ("numba" if HAVE_NUMBA else "numpy")

    def test_default_is_auto(self):
        assert get_kernels().tier == get_kernels("auto").tier

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_numba_tier_raises_cleanly_without_numba(self):
        with pytest.raises(RuntimeError, match="numba"):
            get_kernels("numba")


class TestNumpyTwins:
    """The numpy tier must equal the reference code bitwise."""

    def test_eesm_matches_reference(self):
        kernels = get_kernels("numpy")
        probe = _probe_sinr_matrix()
        for modulation in EESM_BETA:
            assert bitwise(
                kernels.eesm(probe, modulation),
                eesm_effective_sinr_batch(probe, modulation),
            )

    def test_mpdu_success_matches_composed_reference(self):
        kernels = get_kernels("numpy")
        probe = _probe_sinr_matrix()
        bits = np.full(probe.shape, 12000.0)
        bits[::2] = 288.0
        for index in range(10):
            mcs = vht_mcs(index)
            uncoded = mcs.modulation.bit_error_rate_array(
                np.maximum(probe, 0.0)
            )
            coded = coded_bit_error_rate_batch(mcs.coding_rate, uncoded)
            expected = 1.0 - packet_error_rate_batch(coded, bits)
            assert bitwise(
                kernels.mpdu_success(mcs, bits, probe), expected
            )

    def test_mpdu_success_broadcasts_scalar_bits(self):
        kernels = get_kernels("numpy")
        row = _probe_sinr_matrix()[0]
        out = kernels.mpdu_success(vht_mcs(4), 8000, row)
        assert out.shape == row.shape
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_sample_outcomes_is_strict_comparison(self):
        kernels = get_kernels("numpy")
        uniforms = np.array([0.1, 0.5, 0.9])
        probabilities = np.array([0.5, 0.5, 0.5])
        out = kernels.sample_outcomes(uniforms, probabilities)
        assert out.dtype == bool
        assert out.tolist() == [True, False, False]

    def test_error_model_dispatch_matches_direct_call(self):
        from repro.phy.error_model import mpdu_success_probabilities

        probe = _probe_sinr_matrix()[1]
        mcs = vht_mcs(7)
        direct = mpdu_success_probabilities(mcs, 5000, probe)
        via_kernels = get_kernels("numpy").mpdu_success(mcs, 5000, probe)
        assert bitwise(direct, via_kernels)


class TestPairwiseSumSpec:
    """The jitted EESM mean replicates numpy's pairwise summation."""

    @pytest.mark.parametrize(
        "n",
        [1, 5, 8, 9, 12, 17, 56, 127, 128, 129, 200, 500, 1024, 4097],
    )
    def test_matches_np_sum_bitwise(self, n):
        pairwise = _pairwise_sum_spec()
        rng = np.random.default_rng(n)
        values = rng.uniform(0.0, 1.0, size=n) * rng.choice(
            [1e-9, 1.0, 1e6], size=n
        )
        ours = pairwise(values, 0, n)
        theirs = float(np.sum(values))
        assert np.float64(ours).tobytes() == np.float64(theirs).tobytes()

    def test_nonzero_offset_window(self):
        pairwise = _pairwise_sum_spec()
        values = np.random.default_rng(3).random(300)
        window = values[40:260]
        assert (
            np.float64(pairwise(values, 40, 260)).tobytes()
            == np.float64(np.sum(window)).tobytes()
        )


class TestTierThreading:
    """kernel_tier flows scenario -> LinkErrorModel -> session."""

    def test_scenario_threads_kernel_tier(self):
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(3.0, seed=0, kernel_tier="numpy")
        assert system.error_model.kernel_tier == "numpy"
        assert system.error_model.kernels.tier == "numpy"

    def test_bad_tier_surfaces_at_first_use(self):
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(3.0, seed=0, kernel_tier="quantum")
        with pytest.raises(ValueError, match="kernel_tier"):
            system.error_model.kernels

    def test_sessions_bitwise_identical_across_tiers(self):
        # "auto" and "numpy" must agree bitwise regardless of whether
        # numba is installed — that is the whole point of the probe
        # gate.  (Without numba this degenerates to numpy == numpy,
        # which still pins the threading.)
        from repro.core.session import MeasurementSession
        from repro.sim.scenario import los_scenario

        def run(tier):
            system, _ = los_scenario(2.0, seed=5, kernel_tier=tier)
            session = MeasurementSession(
                system, rng=np.random.default_rng(42)
            )
            session.run_queries(10)
            return session.per_query_ber()

        tiers = ["auto", "numpy"] + (["numba"] if HAVE_NUMBA else [])
        series = [run(tier) for tier in tiers]
        assert all(s == series[0] for s in series[1:])


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaTier:
    """CI matrix leg: the compiled tier against the numpy reference."""

    def test_numba_kernels_bitwise_equal_numpy(self):
        numba_kernels = get_kernels("numba")
        numpy_kernels = get_kernels("numpy")
        assert numba_kernels.tier == "numba"
        probe = _probe_sinr_matrix()
        for modulation in EESM_BETA:
            assert bitwise(
                numba_kernels.eesm(probe, modulation),
                numpy_kernels.eesm(probe, modulation),
            )
        bits = np.full(probe.shape, 12000.0)
        bits[1::2] = 144.0
        for index in range(10):
            mcs = vht_mcs(index)
            assert bitwise(
                numba_kernels.mpdu_success(mcs, bits, probe),
                numpy_kernels.mpdu_success(mcs, bits, probe),
            )

    def test_fallbacks_are_reported_not_silent(self):
        kernels = get_kernels("numba")
        # Either the compiled kernels passed the probe gate (no
        # fallbacks) or the mismatching ones were replaced by twins and
        # listed; both are valid resolutions, silence plus divergence
        # is not.
        assert set(kernels.fallbacks) <= {"eesm", "mpdu_success"}

    def test_validation_errors_match_reference(self):
        kernels = get_kernels("numba")
        with pytest.raises(ValueError):
            kernels.eesm(np.array([1.0, 2.0]), list(EESM_BETA)[0])
        with pytest.raises(ValueError):
            kernels.eesm(
                -np.ones((2, 4)), list(EESM_BETA)[0]
            )
