"""Unit tests for PPDU airtime and subframe scheduling."""

import pytest

from repro.phy.airtime import ppdu_airtime, subframe_schedule
from repro.phy.constants import SYMBOL_LONG_GI_S, SYMBOL_SHORT_GI_S
from repro.phy.mcs import ht_mcs
from repro.phy.preamble import PhyFormat


class TestPpduAirtime:
    def test_minimal_psdu_one_symbol_floor(self):
        timing = ppdu_airtime(0, ht_mcs(7))
        assert timing.n_symbols == 1

    def test_symbol_count_mcs0(self):
        # 100 bytes at MCS0 (26 bits/symbol... actually 26 dbps = 6.5Mb/s
        # * 4us): bits = 16 + 800 + 6 = 822; 822 / 26 -> 32 symbols.
        timing = ppdu_airtime(100, ht_mcs(0))
        assert timing.n_symbols == 32

    def test_preamble_included(self):
        timing = ppdu_airtime(100, ht_mcs(7))
        assert timing.total_s == pytest.approx(
            timing.preamble.total_s + timing.n_symbols * SYMBOL_LONG_GI_S
        )

    def test_short_gi_is_faster(self):
        long_gi = ppdu_airtime(1000, ht_mcs(7), short_gi=False)
        short_gi = ppdu_airtime(1000, ht_mcs(7), short_gi=True)
        assert short_gi.total_s < long_gi.total_s
        assert short_gi.symbol_s == SYMBOL_SHORT_GI_S

    def test_higher_mcs_is_faster(self):
        slow = ppdu_airtime(1500, ht_mcs(0))
        fast = ppdu_airtime(1500, ht_mcs(7))
        assert fast.total_s < slow.total_s

    def test_more_streams_longer_preamble(self):
        one = ppdu_airtime(1500, ht_mcs(7))
        three = ppdu_airtime(1500, ht_mcs(23))  # 3 streams
        assert (
            three.preamble.training_s > one.preamble.training_s
        )

    def test_vht_format(self):
        timing = ppdu_airtime(1500, ht_mcs(7), phy_format=PhyFormat.VHT)
        assert timing.preamble.phy_format is PhyFormat.VHT

    def test_negative_psdu_rejected(self):
        with pytest.raises(ValueError):
            ppdu_airtime(-1, ht_mcs(0))


class TestSymbolWindow:
    def test_full_psdu_window(self):
        timing = ppdu_airtime(100, ht_mcs(0))
        dbps = ht_mcs(0).data_bits_per_symbol()
        start, end = timing.symbol_window(0, 799, dbps)
        assert start == pytest.approx(timing.preamble.total_s)
        assert end <= timing.total_s + 1e-12

    def test_invalid_range_rejected(self):
        timing = ppdu_airtime(100, ht_mcs(0))
        with pytest.raises(ValueError):
            timing.symbol_window(10, 5, 26.0)
        with pytest.raises(ValueError):
            timing.symbol_window(-1, 5, 26.0)


class TestSubframeSchedule:
    def test_windows_cover_in_order(self):
        sched = subframe_schedule([100, 100, 100, 100], ht_mcs(3))
        assert sched.n_subframes == 4
        starts = [w[0] for w in sched.windows]
        assert starts == sorted(starts)
        for start, end in sched.windows:
            assert end > start

    def test_first_window_starts_after_preamble(self):
        sched = subframe_schedule([64], ht_mcs(7))
        assert sched.windows[0][0] == pytest.approx(
            sched.timing.preamble.total_s
        )

    def test_total_bytes_consistency(self):
        sizes = [60, 120, 90]
        sched = subframe_schedule(sizes, ht_mcs(5))
        assert sched.timing.psdu_bytes == sum(sizes)

    def test_equal_sizes_equal_spacing(self):
        # 130-byte subframes at MCS5 are exactly 5 symbols; spacing between
        # window starts must be constant.
        sched = subframe_schedule([128] * 8, ht_mcs(5))
        starts = [w[0] for w in sched.windows]
        gaps = {round(b - a, 9) for a, b in zip(starts, starts[1:])}
        assert len(gaps) <= 2  # symbol quantisation allows two gap values

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            subframe_schedule([100, 0], ht_mcs(0))
