"""Unit tests for AES-128, CCMP and WEP against published vectors."""

import pytest

from repro.mac.security.aes import Aes128, SBOX, expand_key
from repro.mac.security.ccmp import (
    CcmpContext,
    MicError,
    build_nonce,
    ccmp_header,
)
from repro.mac.security.wep import IcvError, WepContext, rc4, rc4_keystream

TA = b"\x02\x00\x00\x00\x00\x01"


class TestAes:
    def test_fips197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_encrypt(self):
        cipher = Aes128(b"sixteen byte key")
        for block in (bytes(16), bytes(range(16)), b"\xff" * 16):
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_sbox_known_values(self):
        # S-box spot checks from FIPS-197 Figure 7.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_key_schedule_length(self):
        keys = expand_key(bytes(16))
        assert len(keys) == 11
        assert all(len(k) == 16 for k in keys)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            Aes128(bytes(16)).encrypt_block(b"short")


class TestCcmp:
    def test_roundtrip(self):
        tx = CcmpContext(b"0123456789abcdef")
        rx = CcmpContext(b"0123456789abcdef")
        protected, pn = tx.encrypt(b"temperature=23.5C", TA)
        assert pn == 1
        assert rx.decrypt(protected, TA) == b"temperature=23.5C"

    def test_packet_numbers_increment(self):
        tx = CcmpContext(b"0123456789abcdef")
        _, pn1 = tx.encrypt(b"a", TA)
        _, pn2 = tx.encrypt(b"b", TA)
        assert pn2 == pn1 + 1

    def test_ciphertext_differs_from_plaintext(self):
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(b"A" * 64, TA)
        assert b"A" * 16 not in protected

    def test_tampered_ciphertext_detected(self):
        """The HitchHike failure mode: modified symbols break the MIC."""
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(b"secret", TA)
        tampered = bytearray(protected)
        tampered[9] ^= 0x55
        with pytest.raises(MicError):
            CcmpContext(b"0123456789abcdef").decrypt(bytes(tampered), TA)

    def test_wrong_key_detected(self):
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(b"secret", TA)
        with pytest.raises(MicError):
            CcmpContext(b"fedcba9876543210").decrypt(protected, TA)

    def test_aad_binding(self):
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(b"payload", TA, aad=b"header-bytes")
        with pytest.raises(MicError):
            CcmpContext(b"0123456789abcdef").decrypt(
                protected, TA, aad=b"other-header"
            )

    def test_empty_payload(self):
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(b"", TA)
        assert CcmpContext(b"0123456789abcdef").decrypt(protected, TA) == b""

    def test_header_format(self):
        header = ccmp_header(0x010203040506, key_id=1)
        assert len(header) == 8
        assert header[3] == 0x20 | (1 << 6)  # ext IV + key id

    def test_nonce_validation(self):
        with pytest.raises(ValueError):
            build_nonce(2**48, TA)
        with pytest.raises(ValueError):
            build_nonce(1, b"short")

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            CcmpContext(b"0123456789abcdef").decrypt(b"\x00" * 10, TA)


class TestRc4:
    def test_known_keystream(self):
        # Classic RC4 test vector: key "Key" -> keystream EB9F7781B734...
        assert rc4_keystream(b"Key", 6).hex() == "eb9f7781b734"

    def test_known_ciphertext(self):
        # "Plaintext" under key "Key" -> BBF316E8D940AF0AD3.
        assert rc4(b"Key", b"Plaintext").hex() == "bbf316e8d940af0ad3"

    def test_symmetric(self):
        assert rc4(b"k1", rc4(b"k1", b"data")) == b"data"

    def test_validation(self):
        with pytest.raises(ValueError):
            rc4_keystream(b"", 4)
        with pytest.raises(ValueError):
            rc4_keystream(b"k", -1)


class TestWep:
    def test_roundtrip(self):
        tx = WepContext(b"12345")
        rx = WepContext(b"12345")
        assert rx.decrypt(tx.encrypt(b"legacy frame")) == b"legacy frame"

    def test_iv_rolls(self):
        tx = WepContext(b"12345")
        first = tx.encrypt(b"x")
        second = tx.encrypt(b"x")
        assert first[:3] != second[:3]
        assert first[4:] != second[4:]  # different keystream

    def test_tamper_detected(self):
        tx = WepContext(b"1234567890123")
        protected = bytearray(tx.encrypt(b"payload"))
        protected[6] ^= 0x80
        with pytest.raises(IcvError):
            WepContext(b"1234567890123").decrypt(bytes(protected))

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            WepContext(b"abc")

    def test_short_body_rejected(self):
        with pytest.raises(ValueError):
            WepContext(b"12345").decrypt(b"\x00" * 5)
