"""Bench smoke: telemetry overhead on the fleet fast path.

The fleet tier's cost contract mirrors the session-batch one
(``tests/test_obs_overhead.py``): without an attached telemetry the
fleet pays one ``is None`` check per poll (the gated fleet benchmark
runs un-instrumented), and a metrics-instrumented poll round stays
within 15% of the plain wall clock — the per-query accounting happens
once per query on the already-materialized batch results, never inside
the vectorized kernels.  Min-of-N on both sides plus absolute slack
keep the assertion robust on shared machines.
"""

import time

import numpy as np
import pytest

from repro.core.fleet import TagFleet
from repro.obs import Telemetry

N_TAGS = 300
BITS_PER_TAG = 32
REPEATS = 3
MAX_OVERHEAD = 1.15
ABS_SLACK_S = 0.05


def timed_poll(instrument):
    rng = np.random.default_rng(5)
    positions = np.column_stack(
        [rng.uniform(1.0, 9.0, N_TAGS), rng.uniform(-4.0, 4.0, N_TAGS)]
    )
    fleet = TagFleet.build(positions, seed=5)
    telemetry = None
    if instrument:
        telemetry = Telemetry()
        telemetry.attach_fleet(fleet)
    data_rng = np.random.default_rng(3)
    for name in fleet.names:
        fleet.load_bits(
            name, [int(b) for b in data_rng.integers(0, 2, BITS_PER_TAG)]
        )
    start = time.perf_counter()
    fleet.poll_round()
    return time.perf_counter() - start, telemetry


@pytest.mark.bench_smoke
def test_instrumented_fleet_poll_within_overhead_budget():
    plain = min(timed_poll(False)[0] for _ in range(REPEATS))
    instrumented = []
    for _ in range(REPEATS):
        wall, telemetry = timed_poll(True)
        # The capture must actually have instrumented the timed region.
        families = telemetry.metrics_snapshot()["metrics"]
        recorded = sum(
            entry["value"]
            for entry in families["fleet_queries_total"]["series"]
        )
        assert recorded == N_TAGS
        instrumented.append(wall)
    assert min(instrumented) <= plain * MAX_OVERHEAD + ABS_SLACK_S, (
        f"fleet telemetry overhead too high: {min(instrumented):.4f}s "
        f"instrumented vs {plain:.4f}s plain"
    )
