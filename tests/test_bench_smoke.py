"""Bench smoke: one tiny session through each benchmark's machinery.

The real benchmarks under ``benchmarks/`` are wall-clock sensitive and
excluded from the default pytest split, which historically let their
plumbing rot between bench runs.  These smokes run the same code paths
— the shared :mod:`repro.bench` helpers, trajectory recording and
baseline bookkeeping — with one tiny session each, asserting only that
they run and record.  No timing assertions: tier-1 stays
timing-independent.
"""

import json

import pytest

from repro.bench import (
    TIERS,
    bench_payload,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
    timed_session,
    update_baseline,
)


@pytest.mark.bench_smoke
def test_timed_session_runs_and_reports(tmp_path):
    result = timed_session(2, warmup=1)
    assert result["stats"].queries == 2
    assert result["wall_s"] > 0.0
    assert result["queries_per_s"] > 0.0
    assert set(result["stage_timings"]) == {"system", "error_model"}


@pytest.mark.bench_smoke
def test_three_tier_bench_smoke_records_trajectory(tmp_path):
    result = three_tier_bench(2, warmup=1)
    assert set(result["tiers"]) == {label for label, _, _ in TIERS}
    # Tiers 2 and 3 are bitwise identical; tier 1 only differs via the
    # coded-BER table.
    assert (
        result["tiers"]["vectorized"]["stats"]
        == result["tiers"]["session-batch"]["stats"]
    )
    for key in (
        "vectorized_vs_scalar",
        "session_vs_scalar",
        "session_vs_vectorized",
    ):
        assert result["speedups"][key] > 0.0

    trajectory = tmp_path / "BENCH_smoke.json"
    entry = record_bench_trajectory(
        str(trajectory), bench_payload(result)
    )
    assert "recorded_at" in entry
    history = json.loads(trajectory.read_text())
    assert isinstance(history, list) and len(history) == 1
    assert history[0]["queries"] == 2
    # Appending keeps prior entries.
    record_bench_trajectory(str(trajectory), bench_payload(result))
    assert len(json.loads(trajectory.read_text())) == 2


@pytest.mark.bench_smoke
def test_baseline_roundtrip_preserves_other_keys(tmp_path):
    path = str(tmp_path / "baselines.json")
    update_baseline("other", {"speedup": 1.0}, path)
    update_baseline("session_batch", {"speedup": 2.5}, path)
    assert load_baseline("other", path) == {"speedup": 1.0}
    assert load_baseline("session_batch", path) == {"speedup": 2.5}
    assert load_baseline("missing", path, {"d": 1}) == {"d": 1}
    update_baseline("session_batch", {"speedup": 3.0}, path)
    assert load_baseline("other", path) == {"speedup": 1.0}
    assert load_baseline("session_batch", path) == {"speedup": 3.0}


@pytest.mark.bench_smoke
def test_cli_bench_smoke_runs_and_records(tmp_path, capsys):
    from repro.cli import main

    trajectory = tmp_path / "BENCH_session_batch.json"
    baselines = tmp_path / "baselines.json"
    code = main(
        [
            "bench",
            "--queries",
            "2",
            "--trajectory",
            str(trajectory),
            "--update-baseline",
            "--baselines",
            str(baselines),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "session-batch" in out
    assert trajectory.exists()
    entry = load_baseline("session_batch", str(baselines))
    assert entry is not None and entry["queries"] == 2
