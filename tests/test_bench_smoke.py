"""Bench smoke: one tiny session through each benchmark's machinery.

The real benchmarks under ``benchmarks/`` are wall-clock sensitive and
excluded from the default pytest split, which historically let their
plumbing rot between bench runs.  These smokes run the same code paths
— the shared :mod:`repro.bench` helpers, trajectory recording and
baseline bookkeeping — with one tiny session each, asserting only that
they run and record.  No timing assertions: tier-1 stays
timing-independent.
"""

import json

import pytest

from repro.bench import (
    TIERS,
    bench_payload,
    load_baseline,
    record_bench_trajectory,
    three_tier_bench,
    timed_session,
    update_baseline,
)


@pytest.mark.bench_smoke
def test_timed_session_runs_and_reports(tmp_path):
    result = timed_session(2, warmup=1)
    assert result["stats"].queries == 2
    assert result["wall_s"] > 0.0
    assert result["queries_per_s"] > 0.0
    assert set(result["stage_timings"]) == {"system", "error_model"}


@pytest.mark.bench_smoke
def test_three_tier_bench_smoke_records_trajectory(tmp_path):
    result = three_tier_bench(2, warmup=1)
    assert set(result["tiers"]) == {label for label, _, _ in TIERS}
    # Tiers 2 and 3 are bitwise identical; tier 1 only differs via the
    # coded-BER table.
    assert (
        result["tiers"]["vectorized"]["stats"]
        == result["tiers"]["session-batch"]["stats"]
    )
    for key in (
        "vectorized_vs_scalar",
        "session_vs_scalar",
        "session_vs_vectorized",
    ):
        assert result["speedups"][key] > 0.0

    trajectory = tmp_path / "BENCH_smoke.json"
    entry = record_bench_trajectory(
        str(trajectory), bench_payload(result)
    )
    assert "recorded_at" in entry
    history = json.loads(trajectory.read_text())
    assert isinstance(history, list) and len(history) == 1
    assert history[0]["queries"] == 2
    # Appending keeps prior entries.
    record_bench_trajectory(str(trajectory), bench_payload(result))
    assert len(json.loads(trajectory.read_text())) == 2


@pytest.mark.bench_smoke
def test_baseline_roundtrip_preserves_other_keys(tmp_path):
    path = str(tmp_path / "baselines.json")
    update_baseline("other", {"speedup": 1.0}, path)
    update_baseline("session_batch", {"speedup": 2.5}, path)
    assert load_baseline("other", path) == {"speedup": 1.0}
    assert load_baseline("session_batch", path) == {"speedup": 2.5}
    assert load_baseline("missing", path, {"d": 1}) == {"d": 1}
    update_baseline("session_batch", {"speedup": 3.0}, path)
    assert load_baseline("other", path) == {"speedup": 1.0}
    assert load_baseline("session_batch", path) == {"speedup": 3.0}


@pytest.mark.bench_smoke
def test_cli_bench_smoke_runs_and_records(tmp_path, capsys):
    from repro.cli import main

    trajectory = tmp_path / "BENCH_session_batch.json"
    baselines = tmp_path / "baselines.json"
    code = main(
        [
            "bench",
            "--queries",
            "2",
            "--trajectory",
            str(trajectory),
            "--update-baseline",
            "--baselines",
            str(baselines),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "session-batch" in out
    assert trajectory.exists()
    entry = load_baseline("session_batch", str(baselines))
    assert entry is not None and entry["queries"] == 2


@pytest.mark.bench_smoke
def test_tier4_bench_smoke_identical_and_fast_path_shm(tmp_path):
    from repro.bench import BENCH_SCHEMA, tier4_bench, tier4_payload
    from repro.runner.transport import shm_available

    # cold_parent=False keeps this in-process (tier-1 cheap) while
    # exercising the exact legs the gated benchmark times.
    result = tier4_bench(
        2, 2, 3, seed=1, n_workers=1, cold_parent=False
    )
    assert result["identical"] is True
    legs = result["legs"]
    assert legs["session-batch"]["transport"] == "pickle"
    expected = "shm" if shm_available() else "pickle"
    assert legs["tier4"]["transport"] == expected
    assert result["speedup_tier4_vs_session_batch"] > 0.0

    payload = tier4_payload(result)
    assert json.loads(json.dumps(payload)) == payload
    assert "digests" not in str(payload)
    assert BENCH_SCHEMA == 4


@pytest.mark.bench_smoke
def test_trajectory_readers_tolerate_mixed_schemas(tmp_path):
    """Schema-1 entries (no schema field, no tier4 block) and schema-2
    entries (no fleet block) must keep loading next to schema-3 entries
    in the same trajectory file."""
    from repro.bench import BENCH_SCHEMA, fleet_bench, fleet_payload, tier4_bench

    trajectory = tmp_path / "BENCH_mixed.json"
    legacy = {
        # A pre-tier4 entry exactly as PR 5 recorded it: no "schema",
        # no "tier4", no "fleet".
        "queries": 2,
        "distance_m": 4.0,
        "seed": 0,
        "speedups": {"session_vs_vectorized": 2.2},
        "tiers": {},
        "recorded_at": "2026-01-01T00:00:00+00:00",
    }
    trajectory.write_text(json.dumps([legacy]))

    result = three_tier_bench(2, warmup=1)
    t4 = tier4_bench(2, 2, 3, seed=1, n_workers=1, cold_parent=False)
    entry = record_bench_trajectory(
        str(trajectory), bench_payload(result, tier4=t4)
    )
    assert entry["schema"] == BENCH_SCHEMA
    assert "tier4" in entry and "fleet" not in entry

    fl = fleet_bench(n_tags=8, rounds=1, bits_per_tag=8, equivalence_tags=6)
    entry = record_bench_trajectory(
        str(trajectory), bench_payload(result, tier4=t4, fleet=fl)
    )
    assert "fleet" in entry

    history = json.loads(trajectory.read_text())
    assert len(history) == 3
    # Reader tolerance contract: treat a missing schema field as
    # schema 1, and the tier4/fleet blocks as optional.
    schemas = [e.get("schema", 1) for e in history]
    assert schemas == [1, BENCH_SCHEMA, BENCH_SCHEMA]
    assert "tier4" not in history[0] and "fleet" not in history[0]
    assert history[1]["tier4"]["legs"]["tier4"]["wall_s"] > 0.0
    assert "fleet" not in history[1]
    assert history[2]["fleet"]["legs"]["fleet"]["wall_s"] > 0.0
    # Appending again on top of the mixed file still works.
    record_bench_trajectory(str(trajectory), bench_payload(result))
    assert len(json.loads(trajectory.read_text())) == 4


@pytest.mark.bench_smoke
@pytest.mark.fleet
def test_fleet_bench_smoke_gates_and_reports(tmp_path):
    """The fleet bench's machinery at toy scale: the equivalence gate
    (exact coding, digest-compared against the scalar reference cell)
    must pass, both timed legs must report, and the payload must be
    JSON-clean."""
    from repro.bench import fleet_bench, fleet_payload

    result = fleet_bench(
        n_tags=8, rounds=1, bits_per_tag=8, equivalence_tags=6
    )
    assert result["identical"] is True
    assert set(result["legs"]) == {"scalar", "fleet"}
    for leg in result["legs"].values():
        assert leg["wall_s"] > 0.0 and leg["queries_per_s"] > 0.0
    assert result["n_tags"] == 8 and result["rounds"] == 1
    assert result["speedup_fleet_vs_scalar"] > 0.0

    payload = fleet_payload(result)
    assert json.loads(json.dumps(payload)) == payload
    assert payload["identical"] is True
    assert payload["n_tags"] == 8 and payload["equivalence_tags"] == 6


@pytest.mark.bench_smoke
@pytest.mark.fleet
def test_cli_bench_fleet_smoke_records_baseline(tmp_path, capsys):
    from repro.cli import main

    trajectory = tmp_path / "BENCH_session_batch.json"
    baselines = tmp_path / "baselines.json"
    code = main(
        [
            "bench",
            "--queries",
            "2",
            "--repeats",
            "1",
            "--fleet",
            "--fleet-tags",
            "8",
            "--fleet-bits",
            "8",
            "--fleet-aps",
            "2",
            "--trajectory",
            str(trajectory),
            "--update-baseline",
            "--baselines",
            str(baselines),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup fleet/scalar" in out
    assert "warehouse scenario" in out
    entry = load_baseline("fleet", str(baselines))
    assert entry is not None
    assert entry["n_tags"] == 8
    assert entry["speedup_fleet_vs_scalar"] > 0.0
    history = json.loads(trajectory.read_text())
    assert history[-1]["fleet"]["n_tags"] == 8


@pytest.mark.bench_smoke
@pytest.mark.adaptive
def test_adaptive_bench_smoke_gates_and_reports():
    """The adaptive bench's machinery at toy scale: the execution-tier
    equivalence gate must pass, both policy legs must report, and the
    payload must be JSON-clean.  No quality assertion here — at this
    scale the adaptive scheme has no room to win; the pinned ratio is
    gated in ``repro bench check`` and benchmarks/."""
    from repro.bench import adaptive_bench, adaptive_payload

    result = adaptive_bench(
        1, 2, 40, n_workers=1, equivalence_rounds=1, equivalence_windows=25
    )
    assert result["identical"] is True
    assert set(result["gate_digests"]) == {
        "serial-scalar",
        "serial-batch",
        "process-batch",
    }
    assert set(result["legs"]) == {"static", "adaptive"}
    for leg in result["legs"].values():
        assert leg["wall_s"] > 0.0
        assert leg["delivered_bits"] >= 0
        assert leg["mean_goodput_bps"] >= 0.0
    assert result["goodput_ratio_adaptive_vs_static"] >= 0.0

    payload = adaptive_payload(result)
    assert json.loads(json.dumps(payload)) == payload
    assert payload["identical"] is True
    assert "gate_digests" not in payload and "units" not in str(
        payload["legs"]
    )


@pytest.mark.bench_smoke
@pytest.mark.adaptive
def test_cli_bench_adaptive_smoke_records_baseline(tmp_path, capsys):
    from repro.cli import main

    trajectory = tmp_path / "BENCH_session_batch.json"
    baselines = tmp_path / "baselines.json"
    code = main(
        [
            "bench",
            "--queries",
            "2",
            "--repeats",
            "1",
            "--adaptive",
            "--adaptive-units",
            "1",
            "--adaptive-rounds",
            "2",
            "--adaptive-windows",
            "40",
            "--trajectory",
            str(trajectory),
            "--update-baseline",
            "--baselines",
            str(baselines),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "adaptive" in out
    entry = load_baseline("adaptive", str(baselines))
    assert entry is not None
    assert entry["units"] == 1
    assert entry["goodput_ratio_adaptive_vs_static"] > 0.0
    history = json.loads(trajectory.read_text())
    assert history[-1]["adaptive"]["units"] == 1


@pytest.mark.bench_smoke
def test_cli_bench_tier4_smoke_records_baseline(tmp_path, capsys):
    from repro.cli import main

    trajectory = tmp_path / "BENCH_session_batch.json"
    baselines = tmp_path / "baselines.json"
    code = main(
        [
            "bench",
            "--queries",
            "2",
            "--repeats",
            "1",
            "--tier4",
            "--tier4-jobs",
            "2",
            "--tier4-sessions",
            "2",
            "--tier4-queries",
            "3",
            "--trajectory",
            str(trajectory),
            "--update-baseline",
            "--baselines",
            str(baselines),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "tier4/session-batch" in out
    entry = load_baseline("tier4", str(baselines))
    assert entry is not None
    assert entry["speedup_tier4_vs_session_batch"] > 0.0
    history = json.loads(trajectory.read_text())
    assert history[-1]["tier4"]["jobs"] == 2
