"""Persistent warm workers: pool lifecycle, respawn, cache bit-identity.

:class:`repro.runner.warm.WarmPool` keeps worker processes alive
across engine runs, and ``SessionSpec(warm=True)`` lets those workers
transplant memoized pure state (frame templates, tag alignment
vectors, static channel vectors) between session builds.  Both are
pure scheduling/caching concerns: every test here ultimately asserts
the same thing — results bit-identical to the serial reference — under
pool reuse, worker death and respawn, shm transport, and warm cache
adoption across differing seeds and scenarios.
"""

import pytest

from repro.runner import (
    TelemetrySpec,
    UnitContext,
    WarmPool,
    run_sessions,
    run_units,
)
from repro.runner.transport import leaked_segments, shm_available
from repro.runner.workers import (
    SessionSpec,
    reset_warm_caches,
    rng_probe,
)

pytestmark = [pytest.mark.runner]


def units(n, seed=0):
    return [
        UnitContext(index=i, parameters={"x": i}, root_seed=seed)
        for i in range(n)
    ]


class TestPoolLifecycle:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WarmPool(0)

    def test_close_is_idempotent_and_final(self):
        pool = WarmPool(1)
        assert not pool.closed
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.run_round({})

    def test_context_manager_closes(self):
        with WarmPool(1) as pool:
            assert len(pool.worker_pids()) == 1
        assert pool.closed

    def test_pool_survives_across_engine_runs(self):
        serial = run_units(rng_probe, units(6), seed=2)
        with WarmPool(2) as pool:
            first = run_units(
                rng_probe, units(6), seed=2, n_workers=2,
                chunk_size=2, pool=pool,
            )
            pids = pool.worker_pids()
            second = run_units(
                rng_probe, units(6), seed=2, n_workers=2,
                chunk_size=2, pool=pool,
            )
            # Same live workers served both runs: that is the warmth.
            assert pool.worker_pids() == pids
        assert first.executor == "warm"
        assert first.values == serial.values
        assert second.values == serial.values

    def test_executor_warm_without_pool_spins_one_up(self):
        serial = run_units(rng_probe, units(4), seed=0)
        warm = run_units(
            rng_probe, units(4), seed=0, n_workers=2,
            executor="warm", chunk_size=1,
        )
        assert warm.executor == "warm"
        assert warm.values == serial.values


class TestPoolFaults:
    def test_worker_exit_respawns_and_completes(self, chaos):
        with WarmPool(2) as pool:
            baseline, chaotic = chaos.check_bit_identical(
                rng_probe,
                units(8),
                faults=chaos.faults(exit=(3,)),
                n_workers=2,
                chunk_size=2,
                pool=pool,
            )
            assert pool.respawns >= 1
            # The pool is still serviceable after the respawn.
            again = run_units(
                rng_probe, units(8), n_workers=2, chunk_size=2,
                pool=pool,
            )
            assert again.values == baseline.values

    @pytest.mark.skipif(
        not shm_available(), reason="POSIX shared memory unavailable"
    )
    def test_worker_exit_with_shm_leaves_no_segments(self, chaos):
        with WarmPool(2) as pool:
            chaos.check_bit_identical(
                rng_probe,
                units(8),
                faults=chaos.faults(exit=(1,)),
                n_workers=2,
                chunk_size=2,
                pool=pool,
                transport="shm",
            )
        assert leaked_segments() == []


class TestWarmSessions:
    """SessionSpec(warm=True) cache adoption must be invisible."""

    def teardown_method(self):
        reset_warm_caches()

    @staticmethod
    def _stats(result):
        return [
            (
                value.queries,
                value.ber,
                value.throughput_bps,
                value.missed_triggers,
                value.bits_sent,
            )
            for value in result.values
        ]

    @pytest.mark.parametrize("kind", ["los", "nlos"])
    def test_warm_serial_matches_cold(self, kind):
        cold = run_sessions(
            SessionSpec(kind=kind), 4, queries=8, seed=3
        )
        reset_warm_caches()
        warm = run_sessions(
            SessionSpec(kind=kind, warm=True), 4, queries=8, seed=3
        )
        assert self._stats(warm) == self._stats(cold)

    def test_warm_pool_matches_serial(self):
        spec_cold = SessionSpec(distance_m=3.0)
        serial = run_sessions(spec_cold, 4, queries=8, seed=1)
        with WarmPool(2) as pool:
            warm = run_sessions(
                SessionSpec(distance_m=3.0, warm=True),
                4,
                queries=8,
                seed=1,
                n_workers=2,
                chunk_size=1,
                pool=pool,
                transport="auto",
            )
            # Run the same job again on the now-cache-warm workers.
            warm_again = run_sessions(
                SessionSpec(distance_m=3.0, warm=True),
                4,
                queries=8,
                seed=1,
                n_workers=2,
                chunk_size=1,
                pool=pool,
                transport="auto",
            )
        assert self._stats(warm) == self._stats(serial)
        assert self._stats(warm_again) == self._stats(serial)
        assert leaked_segments() == []

    def test_warm_caches_do_not_bleed_across_seeds(self):
        # Channel LOS phases are seed-dependent; a donor channel from
        # seed A must never leak its static vectors into seed B.
        reset_warm_caches()
        cold_a = run_sessions(SessionSpec(), 2, queries=6, seed=11)
        cold_b = run_sessions(SessionSpec(), 2, queries=6, seed=12)
        reset_warm_caches()
        warm_a = run_sessions(
            SessionSpec(warm=True), 2, queries=6, seed=11
        )
        warm_b = run_sessions(
            SessionSpec(warm=True), 2, queries=6, seed=12
        )
        assert self._stats(warm_a) == self._stats(cold_a)
        assert self._stats(warm_b) == self._stats(cold_b)

    def test_warm_caches_do_not_bleed_across_scenarios(self):
        reset_warm_caches()
        cold_near = run_sessions(
            SessionSpec(distance_m=1.0), 2, queries=6, seed=4
        )
        cold_far = run_sessions(
            SessionSpec(distance_m=6.0), 2, queries=6, seed=4
        )
        reset_warm_caches()
        warm_near = run_sessions(
            SessionSpec(distance_m=1.0, warm=True), 2, queries=6, seed=4
        )
        warm_far = run_sessions(
            SessionSpec(distance_m=6.0, warm=True), 2, queries=6, seed=4
        )
        assert self._stats(warm_near) == self._stats(cold_near)
        assert self._stats(warm_far) == self._stats(cold_far)

    def test_per_query_physics_identical_warm_vs_cold(self):
        # Deeper than SessionStats: the full per-query BER series from
        # a directly built warm session must match a cold one.

        def build(warm):
            reset_warm_caches()
            spec = SessionSpec(distance_m=2.5, warm=warm)
            ctx = UnitContext(
                index=0, parameters={}, root_seed=9
            )
            if warm:  # prime the donor registries with a first build
                spec(
                    UnitContext(index=1, parameters={}, root_seed=9)
                )
            session = spec(ctx)
            session.run_queries(12)
            return session.per_query_ber()

        assert build(False) == build(True)

    def test_reset_warm_caches_clears_registries(self):
        from repro.runner import workers

        reset_warm_caches()
        spec = SessionSpec(warm=True)
        spec(UnitContext(index=0, parameters={}, root_seed=0))
        assert workers._WARM_DONORS
        assert workers._WARM_CHANNELS
        reset_warm_caches()
        assert not workers._WARM_DONORS
        assert not workers._WARM_CHANNELS

    def test_channel_registry_is_bounded(self):
        from repro.runner import workers

        reset_warm_caches()
        spec = SessionSpec(warm=True)
        for seed in range(workers._WARM_CHANNELS_MAX + 8):
            spec(
                UnitContext(index=0, parameters={}, root_seed=seed)
            )
        assert (
            len(workers._WARM_CHANNELS) <= workers._WARM_CHANNELS_MAX
        )
        reset_warm_caches()


class TestWarmTelemetry:
    def test_warm_pool_aggregate_matches_serial(self):
        spec = SessionSpec()
        serial = run_sessions(
            spec, 4, queries=6, seed=7, chunk_size=1,
            telemetry=TelemetrySpec(metrics=True),
        )
        with WarmPool(2) as pool:
            warm = run_sessions(
                spec, 4, queries=6, seed=7, chunk_size=1,
                n_workers=2, pool=pool,
                telemetry=TelemetrySpec(metrics=True),
            )
        assert (
            warm.telemetry.metrics_snapshot()
            == serial.telemetry.metrics_snapshot()
        )
