"""Unit tests for ARQ transfers, multi-tag cells, interference, and CLI."""

import numpy as np
import pytest

from repro.baselines.interference import (
    BackscatterEmitter,
    VictimNetwork,
    channel_shift_emitter,
    collision_probability,
    victim_airtime_overhead,
    victim_goodput_fraction,
    witag_emitter,
)
from repro.cli import main
from repro.core.arq import ArqTransfer, TransferReport
from repro.core.config import WiTagConfig
from repro.core.multitag import MultiTagCell, TagEndpoint
from repro.sim.scenario import los_scenario
from repro.tag.state_machine import TagStateMachine


class TestArqTransfer:
    def test_easy_position_first_attempt(self):
        system, _ = los_scenario(1.0, seed=70)
        report = ArqTransfer(system).send(b"easy")
        assert report.delivered
        assert report.attempts == 1
        assert report.effective_rate_bps > 1e3

    def test_midspan_eventually_delivers(self):
        delivered = 0
        for seed in range(6):
            system, _ = los_scenario(4.0, seed=80 + seed)
            report = ArqTransfer(system, max_attempts=6).send(b"mid-span")
            delivered += report.delivered
        assert delivered >= 5

    def test_report_accounting(self):
        system, _ = los_scenario(2.0, seed=71)
        report = ArqTransfer(system).send(b"x" * 30)
        assert report.queries >= report.attempts
        assert report.airtime_s > 0
        assert report.message_bits == 8 * (2 + 30 + 2)

    def test_lost_transfer_reports_zero_rate(self):
        report = TransferReport(
            delivered=False, attempts=4, queries=8, airtime_s=0.01,
            message_bits=100,
        )
        assert report.effective_rate_bps == 0.0

    def test_send_all(self):
        system, _ = los_scenario(1.5, seed=72)
        reports = ArqTransfer(system).send_all([b"a", b"b", b"c"])
        assert len(reports) == 3
        assert all(r.delivered for r in reports)

    def test_validation(self):
        system, _ = los_scenario(1.0, seed=73)
        with pytest.raises(ValueError):
            ArqTransfer(system, max_attempts=0)


def make_cell(names_distances, seed=90):
    endpoints = {}
    for i, (name, d) in enumerate(names_distances):
        system, _ = los_scenario(d, seed=seed + i)
        endpoints[name] = TagEndpoint(
            name=name,
            tag=TagStateMachine(rng=np.random.default_rng(seed + 10 + i)),
            error_model=system.error_model,
            rx_power_dbm=system.rx_power_at_tag_dbm,
        )
    return MultiTagCell(
        config=WiTagConfig(),
        endpoints=endpoints,
        rng=np.random.default_rng(seed + 20),
    )


class TestMultiTagCell:
    def test_addressed_query_selects_one_tag(self):
        cell = make_cell([("door", 1.5), ("window", 6.0)])
        cell.load_bits("door", [1, 0] * 31)
        cell.load_bits("window", [0, 1] * 31)
        result = cell.run_query(address="door")
        assert result.responded == ("door",)
        errors = sum(
            a != b for a, b in zip(result.per_tag_sent["door"], result.raw_bits)
        )
        assert errors <= 3
        # The window tag kept its bits queued.
        assert cell.endpoints["window"].tag.pending_bits == 62

    def test_broadcast_collides(self):
        cell = make_cell([("door", 1.5), ("window", 6.0)])
        cell.load_bits("door", [1, 0] * 31)
        cell.load_bits("window", [0, 1] * 31)
        result = cell.run_query()
        assert set(result.responded) == {"door", "window"}
        # With complementary patterns, the union of corruption wipes out
        # roughly every subframe one of them wanted intact.
        errors = sum(
            a != b for a, b in zip(result.per_tag_sent["door"], result.raw_bits)
        )
        assert errors > 20

    def test_poll_round_covers_all(self):
        cell = make_cell([("a", 1.0), ("b", 3.0), ("c", 7.0)])
        for name in ("a", "b", "c"):
            cell.load_bits(name, [1, 1, 0, 0] * 15 + [1, 0])
        results = cell.poll_round()
        assert sorted(results) == ["a", "b", "c"]
        for name, result in results.items():
            assert result.responded == (name,)

    def test_idle_cell_all_ones(self):
        cell = make_cell([("solo", 2.0)])
        result = cell.run_query(address="solo")
        assert result.responded == ()
        assert all(bit == 1 for bit in result.raw_bits)

    def test_unknown_address(self):
        cell = make_cell([("solo", 2.0)])
        with pytest.raises(KeyError, match="unknown tag"):
            cell.run_query(address="ghost")
        with pytest.raises(KeyError):
            cell.load_bits("ghost", [1])

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            MultiTagCell(config=WiTagConfig(), endpoints={})


class TestInterference:
    def test_witag_emits_nothing(self):
        victim = VictimNetwork()
        assert collision_probability(victim, witag_emitter()) == 0.0
        assert victim_goodput_fraction(victim, witag_emitter()) == 1.0
        assert victim_airtime_overhead(victim, witag_emitter()) == 1.0

    def test_channel_shift_collides(self):
        victim = VictimNetwork()
        emitter = channel_shift_emitter(queries_per_second=600)
        p = collision_probability(victim, emitter)
        assert p > 0.5

    def test_collision_grows_with_rate(self):
        victim = VictimNetwork()
        probs = [
            collision_probability(victim, channel_shift_emitter(r))
            for r in (10, 100, 1000)
        ]
        assert probs == sorted(probs)

    def test_retries_buy_goodput(self):
        emitter = channel_shift_emitter(queries_per_second=200)
        tolerant = VictimNetwork(retry_limit=6)
        fragile = VictimNetwork(retry_limit=0)
        assert victim_goodput_fraction(
            tolerant, emitter
        ) > victim_goodput_fraction(fragile, emitter)

    def test_overhead_at_least_one(self):
        victim = VictimNetwork()
        for rate in (0.0, 50.0, 500.0):
            emitter = channel_shift_emitter(queries_per_second=rate)
            assert victim_airtime_overhead(victim, emitter) >= 1.0

    def test_duty_cycle(self):
        emitter = BackscatterEmitter(
            burst_airtime_s=1e-3, bursts_per_second=100
        )
        assert emitter.duty_cycle == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimNetwork(frame_airtime_s=0)
        with pytest.raises(ValueError):
            VictimNetwork(retry_limit=-1)
        with pytest.raises(ValueError):
            BackscatterEmitter(burst_airtime_s=-1)


class TestCli:
    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "WiTAG" in out and "uW" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        assert "HitchHike" in capsys.readouterr().out

    def test_throughput(self, capsys):
        assert main(["throughput", "--subframes", "32"]) == 0
        out = capsys.readouterr().out
        assert "Kbps" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart", "--message", "cli", "--seed", "7"]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_fig5_short(self, capsys):
        assert main(["fig5", "--seconds", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_fig6_short(self, capsys):
        assert main(["fig6", "--runs", "1", "--seconds", "0.05"]) == 0
        assert "p90" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestCliExtras:
    def test_interference_command(self, capsys):
        assert main(["interference", "--rate", "100"]) == 0
        out = capsys.readouterr().out
        assert "WiTAG" in out and "channel-shift" in out

    def test_pcap_command(self, tmp_path, capsys):
        output = str(tmp_path / "cap.pcap")
        assert main(["pcap", output, "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "wrote 65 frames" in out
        from repro.sim.pcap import read_pcap

        assert len(read_pcap(output)) == 65
