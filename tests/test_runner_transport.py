"""Zero-copy chunk transport: codec roundtrips, leaks, determinism.

The ``shm`` codec moves chunk payloads through named POSIX
shared-memory segments instead of the executor's pickle pipe; the
engine's determinism contract requires every codec choice to be
invisible in the results (bit-identical values for any worker count,
chunk size, and transport) and invisible in ``/dev/shm`` afterwards
(no leaked segments — even when workers crash, exit, or the run is
killed and resumed).  This suite pins both halves, plus the codec
layer's own invariants: cross-codec equivalence, digest stability
between the inline and segment forms of a stream, and cleanup
idempotence.
"""

import numpy as np
import pytest

from repro.runner import (
    FaultSpec,
    RetryPolicy,
    SweepSpec,
    UnitContext,
    run_sweep,
    run_units,
)
from repro.runner.transport import (
    SEGMENT_PREFIX,
    TRANSPORT_CODECS,
    TransportError,
    cleanup_segment,
    decode_payload,
    encode_chunk,
    fetch_payload,
    leaked_segments,
    payload_digest,
    resolve_transport,
    segment_name,
    shm_available,
)
from repro.runner.workers import rng_probe

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.runner

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def units(n, seed=0):
    return [
        UnitContext(index=i, parameters={"x": i}, root_seed=seed)
        for i in range(n)
    ]


def canon(obj):
    """Canonical form for bitwise value comparison.

    ``pickle.dumps(a) == pickle.dumps(b)`` is too strict across a
    process boundary: the pickler memoizes *object identity*, so two
    structurally identical payloads serialize differently when one
    shares interned key strings and the other was rebuilt by a worker.
    Arrays compare by dtype/shape/raw bytes; floats by exact equality.
    """
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.dtype.str, obj.shape, obj.tobytes())
    if isinstance(obj, dict):
        return {key: canon(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canon(value) for value in obj]
    return obj


def array_probe(ctx: UnitContext):
    """A unit whose payload is numpy-heavy (exercises oob buffers)."""
    rng = ctx.rng(0)
    return {
        "index": ctx.index,
        "draws": rng.random(64),
        "counts": rng.integers(0, 255, size=33, dtype=np.uint8),
        "scalar": float(rng.random()),
    }


def payload_values():
    rng = np.random.default_rng(7)
    return [
        {"a": rng.random(17), "b": [1, 2, 3], "c": None},
        {"a": rng.integers(0, 9, size=5), "empty": np.empty(0)},
        "plain string",
        42,
    ]


class TestCodecLayer:
    def test_pickle_roundtrip(self):
        values = payload_values()
        encoded = encode_chunk(values, {"k": 1}, "pickle")
        assert encoded.codec == "pickle"
        assert encoded.segment is None
        raw = fetch_payload(encoded)
        decoded, telemetry = decode_payload(raw, "pickle")
        assert telemetry == {"k": 1}
        assert canon(decoded) == canon(values)

    def test_shm_inline_roundtrip(self):
        # codec="shm" without a segment name: the checkpoint re-encode
        # path — same stream layout, carried inline.
        values = payload_values()
        encoded = encode_chunk(values, None, "shm")
        assert encoded.codec == "shm"
        assert encoded.payload is not None
        decoded, telemetry = decode_payload(
            fetch_payload(encoded), "shm"
        )
        assert telemetry is None
        assert canon(decoded) == canon(values)

    @needs_shm
    def test_shm_segment_roundtrip_and_unlink(self):
        values = payload_values()
        name = segment_name("t0ken", 3, 1)
        encoded = encode_chunk(values, {"m": 2}, "shm", segment=name)
        assert encoded.payload is None
        assert encoded.segment == name
        assert leaked_segments("t0ken") == [name]
        raw = fetch_payload(encoded)
        # fetch_payload copies then unlinks: nothing left in /dev/shm.
        assert leaked_segments("t0ken") == []
        decoded, telemetry = decode_payload(raw, "shm")
        assert telemetry == {"m": 2}
        assert canon(decoded) == canon(values)

    @needs_shm
    def test_segment_and_inline_streams_share_digest(self):
        # The two forms of the shm codec must be interchangeable: a
        # checkpoint records the digest of whichever stream carried the
        # chunk and must verify against a re-encode.
        values = payload_values()
        inline = encode_chunk(values, {"t": 1}, "shm")
        name = segment_name("d1gest", 0, 0)
        via_segment = encode_chunk(values, {"t": 1}, "shm", segment=name)
        raw = fetch_payload(via_segment)
        assert via_segment.digest == inline.digest
        assert payload_digest(raw) == inline.digest
        assert via_segment.nbytes == inline.nbytes

    def test_cross_codec_equivalence(self):
        values = payload_values()
        for telemetry in (None, {"chunk": 4}):
            a = decode_payload(
                fetch_payload(encode_chunk(values, telemetry, "pickle")),
                "pickle",
            )
            b = decode_payload(
                fetch_payload(encode_chunk(values, telemetry, "shm")),
                "shm",
            )
            assert canon(a) == canon(b)

    def test_decoded_arrays_are_usable_after_fetch(self):
        # Decoded arrays alias the coordinator-owned copy, never the
        # (unlinked) segment; summing must not fault and values match.
        values = [np.arange(1000, dtype=np.float64)]
        name = segment_name("al1as", 1, 0) if shm_available() else None
        encoded = encode_chunk(values, None, "shm", segment=name)
        decoded, _ = decode_payload(fetch_payload(encoded), "shm")
        assert float(decoded[0].sum()) == float(values[0].sum())

    def test_resolve_transport(self):
        assert resolve_transport("pickle") == "pickle"
        expected = "shm" if shm_available() else "pickle"
        assert resolve_transport("auto") == expected
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_segment_names_are_deterministic_and_prefixed(self):
        name = segment_name("abcd", 7, 2)
        assert name == segment_name("abcd", 7, 2)
        assert name.startswith(SEGMENT_PREFIX)
        assert name != segment_name("abcd", 7, 3)
        assert name != segment_name("abcd", 8, 2)

    @needs_shm
    def test_cleanup_segment_is_idempotent(self):
        name = segment_name("cl3an", 0, 0)
        assert cleanup_segment(name) is False  # never created
        encode_chunk([1, 2], None, "shm", segment=name)
        assert cleanup_segment(name) is True
        assert cleanup_segment(name) is False  # already gone
        assert leaked_segments("cl3an") == []

    def test_truncated_stream_raises(self):
        encoded = encode_chunk(payload_values(), None, "shm")
        raw = fetch_payload(encoded)
        with pytest.raises(TransportError):
            decode_payload(raw[: len(raw) // 2], "shm")
        with pytest.raises(TransportError):
            decode_payload(b"XXXX" + bytes(raw[4:]), "shm")

    def test_unknown_codec_raises(self):
        with pytest.raises(ValueError):
            encode_chunk([1], None, "gzip")
        with pytest.raises(ValueError):
            decode_payload(b"", "gzip")


if HAVE_HYPOTHESIS:

    json_scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False),
        st.text(max_size=20),
    )

    arrays = st.builds(
        lambda seed, n: np.random.default_rng(seed).random(n),
        st.integers(0, 2**16),
        st.integers(0, 64),
    )

    payloads = st.lists(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(json_scalars, arrays),
            max_size=4,
        ),
        max_size=4,
    )

    @settings(max_examples=40, deadline=None)
    @given(values=payloads, codec=st.sampled_from(TRANSPORT_CODECS))
    def test_property_roundtrip_any_codec(values, codec):
        encoded = encode_chunk(values, None, codec)
        decoded, telemetry = decode_payload(
            fetch_payload(encoded), codec
        )
        assert telemetry is None
        assert canon(decoded) == canon(values)

    @settings(max_examples=25, deadline=None)
    @given(values=payloads)
    def test_property_cross_codec_bitwise_equal(values):
        legs = [
            decode_payload(
                fetch_payload(encode_chunk(values, None, codec)), codec
            )
            for codec in TRANSPORT_CODECS
        ]
        assert canon(legs[0]) == canon(legs[1])


@needs_shm
class TestEngineTransport:
    def test_values_identical_across_codecs(self):
        serial = run_units(array_probe, units(6), seed=1)
        assert serial.transport == "none"  # serial runs never encode
        for codec in ("pickle", "shm"):
            pooled = run_units(
                array_probe,
                units(6),
                seed=1,
                n_workers=2,
                executor="process",
                chunk_size=2,
                transport=codec,
            )
            assert pooled.transport == codec
            assert canon(pooled.values) == canon(serial.values)
        assert leaked_segments() == []

    def test_shm_run_with_telemetry_and_arrays(self):
        from repro.runner import TelemetrySpec

        result = run_units(
            rng_probe,
            units(8),
            seed=3,
            n_workers=2,
            executor="process",
            chunk_size=2,
            transport="shm",
            telemetry=TelemetrySpec(metrics=True),
        )
        assert result.transport == "shm"
        assert len(result.values) == 8
        assert leaked_segments() == []


@needs_shm
class TestChaosNoLeaks:
    """Worker faults must not leave segments in /dev/shm."""

    def test_crash_faults_leave_no_segments(self, chaos):
        baseline, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(8),
            faults=chaos.faults(crash=(1, 5)),
            n_workers=2,
            executor="process",
            chunk_size=2,
            transport="shm",
        )
        assert chaotic.retries
        assert leaked_segments() == []

    def test_worker_exit_faults_leave_no_segments(self, chaos):
        # os._exit kills the worker after it may have created its
        # segment; the coordinator must clean the assigned name up.
        baseline, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(8),
            faults=chaos.faults(exit=(2,)),
            n_workers=2,
            executor="process",
            chunk_size=2,
            transport="shm",
        )
        assert leaked_segments() == []

    def test_permanent_failure_leaves_no_segments(self):
        from repro.runner import WorkUnitError

        with pytest.raises(WorkUnitError):
            run_units(
                rng_probe,
                units(6),
                faults=FaultSpec(crash=(3,), failures=10**6),
                retry=RetryPolicy(max_attempts=2),
                n_workers=2,
                executor="process",
                chunk_size=2,
                transport="shm",
            )
        assert leaked_segments() == []


@needs_shm
class TestResumeWithShm:
    def test_kill_and_resume_bit_identical(self, tmp_path, chaos):
        """Killed-run checkpoints written via shm resume bit-identical."""
        spec = SweepSpec(
            axes={"x": list(range(8))}, seed=5, chunk_size=2
        )
        clean = run_sweep(rng_probe, spec, transport="shm")
        path = tmp_path / "ckpt.jsonl"
        chaos.partial_checkpoint(
            rng_probe, spec, str(path), crash_unit=5
        )
        resumed = run_sweep(
            rng_probe,
            spec,
            checkpoint=str(path),
            resume=True,
            n_workers=2,
            executor="process",
            transport="shm",
        )
        assert resumed.resumed_chunks > 0
        assert canon(resumed.values) == canon(clean.values)
        assert leaked_segments() == []

    def test_checkpoint_records_decode_regardless_of_codec(
        self, tmp_path
    ):
        """A chunk spilled from an shm run reloads via the same codec."""
        from repro.runner import load_checkpoint

        spec = SweepSpec(
            axes={"x": list(range(4))}, seed=2, chunk_size=2
        )
        path = tmp_path / "ckpt.jsonl"
        first = run_sweep(
            rng_probe,
            spec,
            checkpoint=str(path),
            n_workers=2,
            executor="process",
            transport="shm",
        )
        loaded = load_checkpoint(str(path))
        assert all(
            chunk.codec == "shm" and chunk.payload_bytes > 0
            for chunk in loaded.chunks.values()
        )
        values = [
            v
            for _, chunk in sorted(loaded.chunks.items())
            for v in chunk.values
        ]
        assert canon(values) == canon(first.values)
        assert leaked_segments() == []
