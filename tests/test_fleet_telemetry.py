"""Fleet-scale telemetry: the execution-tier invariance contract.

The tentpole claim: attaching a :class:`repro.obs.Telemetry` to a
:class:`repro.core.fleet.TagFleet` produces *exactly* the metric
snapshot and trace records the scalar
:class:`repro.core.multitag.MultiTagCell` reference produces for the
same physics — for any ``batch_tags`` chunking, and through the
parallel engine for any worker count (chunk-ordered
``TelemetryAggregate`` merge).  Everything both paths record is
computed from the bitwise-identical query results the equivalence
suite (``tests/test_fleet.py``) already guarantees, so these tests
pin the instrumentation itself: same counters, same histogram sums
(SINR to the ULP), same digests.

Also covered here: the :class:`repro.sim.network.FleetNetwork` hooks
(per-AP rounds, handoffs, mobility invalidations, CSMA contention
stalls) and their zero-perturbation contract — attaching telemetry
must not change a single simulated value.
"""

import functools

import numpy as np
import pytest

from repro.core.fleet import TagFleet
from repro.obs import Telemetry, TraceSampler, TraceWriter, read_trace
from repro.runner import UnitContext, run_units
from repro.runner.workers import FleetSpec, fleet_poll_stats
from repro.sim.network import (
    FleetNetwork,
    RandomWalkMobility,
    ReaderCell,
    StrongestRxPolicy,
    TrafficStation,
)

pytestmark = pytest.mark.fleet


def make_fleet(n=6, seed=11, **kwargs) -> TagFleet:
    rng = np.random.default_rng(seed)
    positions = np.column_stack(
        [rng.uniform(1.0, 9.0, n), rng.uniform(-4.0, 4.0, n)]
    )
    kwargs.setdefault("phy_exact_coding", True)
    return TagFleet.build(positions, seed=seed, **kwargs)


def load_some(target, names, seed=3, bits_per_tag=24):
    # Loads every tag but the last, and gives the first a short queue
    # that drains mid-run: exercises answered, idle and drained paths.
    rng = np.random.default_rng(seed)
    for i, name in enumerate(names[:-1]):
        n_bits = 5 if i == 0 else bits_per_tag
        target.load_bits(name, [int(b) for b in rng.integers(0, 2, n_bits)])


def drive(target):
    """The same mixed query script against a fleet or its reference."""
    for _ in range(2):
        target.poll_round()
    target.run_query(address=None)  # broadcast


def query_records(path):
    return [
        record
        for record in read_trace(str(path))
        if record.get("kind") == "query"
    ]


class TestFleetInvariance:
    """TagFleet and MultiTagCell produce identical telemetry."""

    @pytest.mark.parametrize("batch_tags", [1, 2, 7, 64])
    def test_snapshot_and_trace_match_reference(self, batch_tags, tmp_path):
        fleet = make_fleet(batch_tags=batch_tags)
        cell = fleet.reference_cell()
        captures = {}
        for label, target, attach in (
            ("fleet", fleet, "attach_fleet"),
            ("cell", cell, "attach_cell"),
        ):
            telemetry = Telemetry(
                writer=TraceWriter(str(tmp_path / f"{label}.jsonl")),
                sampler=TraceSampler(every_n=1),
            )
            getattr(telemetry, attach)(target)
            load_some(target, fleet.names)
            drive(target)
            telemetry.close()
            captures[label] = telemetry.metrics_snapshot()
        assert captures["fleet"] == captures["cell"]
        fleet_trace = query_records(tmp_path / "fleet.jsonl")
        cell_trace = query_records(tmp_path / "cell.jsonl")
        assert len(fleet_trace) == 13  # 2 rounds x 6 tags + broadcast
        assert fleet_trace == cell_trace

    def test_fully_idle_round_matches_reference(self):
        # No bits queued anywhere: every query takes the no-responder
        # branch, whose single fading draw must digest identically.
        fleet = make_fleet(n=3, seed=2)
        cell = fleet.reference_cell()
        snapshots = []
        for target, attach in (
            (fleet, "attach_fleet"),
            (cell, "attach_cell"),
        ):
            telemetry = Telemetry()
            getattr(telemetry, attach)(target)
            target.poll_round()
            snapshots.append(telemetry.metrics_snapshot())
        assert snapshots[0] == snapshots[1]
        families = snapshots[0]["metrics"]
        idle = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in families["fleet_queries_total"]["series"]
        }
        assert idle == {"answered": 0.0, "idle": 3.0}

    def test_attaching_telemetry_does_not_perturb_results(self):
        plain = make_fleet(seed=23)
        watched = make_fleet(seed=23)
        Telemetry().attach_fleet(watched)
        load_some(plain, plain.names)
        load_some(watched, watched.names)
        for _ in range(2):
            got = {
                name: (r.block_ack.bitmap, r.raw_bits)
                for name, r in watched.poll_round().items()
            }
            want = {
                name: (r.block_ack.bitmap, r.raw_bits)
                for name, r in plain.poll_round().items()
            }
            assert got == want

    def test_per_tag_series_account_for_every_bit(self):
        fleet = make_fleet()
        telemetry = Telemetry()
        telemetry.attach_fleet(fleet)
        load_some(fleet, fleet.names)
        want_bits: dict[str, int] = {}
        want_errors: dict[str, int] = {}
        results = []
        for _ in range(2):
            results.extend(fleet.poll_round().values())
        results.append(fleet.run_query(address=None))
        for result in results:
            for name in result.responded:
                sent = result.per_tag_sent[name]
                received = result.raw_bits[: len(sent)]
                want_bits[name] = want_bits.get(name, 0) + len(sent)
                want_errors[name] = want_errors.get(name, 0) + sum(
                    1 for s, r in zip(sent, received) if s != r
                )
        families = telemetry.metrics_snapshot()["metrics"]

        def by_tag(name):
            return {
                entry["labels"]["tag"]: entry["value"]
                for entry in families[name]["series"]
            }

        assert by_tag("fleet_tag_bits_total") == want_bits
        assert by_tag("fleet_tag_bit_errors_total") == want_errors
        assert by_tag("fleet_tag_delivered_bits_total") == {
            name: want_bits[name] - want_errors[name] for name in want_bits
        }
        answered = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in families["fleet_queries_total"]["series"]
        }
        assert answered["answered"] + answered["idle"] == len(results)
        assert (
            families["fleet_query_ber"]["series"][0]["count"]
            == sum(1 for r in results if r.responded)
        )


class TestRunnerAggregation:
    """Fleet telemetry rides FleetSpec through the chunked engine."""

    @staticmethod
    def _run(n_workers, executor):
        from repro.obs import TelemetrySpec

        fn = functools.partial(
            fleet_poll_stats,
            spec=FleetSpec(n_tags=5, phy_exact_coding=True),
            rounds=1,
            bits_per_tag=8,
        )
        units = [
            UnitContext(index=i, parameters={"unit": i}, root_seed=21)
            for i in range(4)
        ]
        return run_units(
            fn,
            units,
            seed=21,
            n_workers=n_workers,
            chunk_size=2,
            executor=executor,
            telemetry=TelemetrySpec(metrics=True),
        )

    def test_serial_and_process_pool_aggregate_identically(self):
        serial = self._run(1, "serial")
        parallel = self._run(2, "process")
        assert serial.values == parallel.values
        assert serial.telemetry is not None
        assert parallel.telemetry is not None
        assert (
            serial.telemetry.as_dict()["metrics"]
            == parallel.telemetry.as_dict()["metrics"]
        )
        families = serial.telemetry.as_dict()["metrics"]["metrics"]
        answered = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in families["fleet_queries_total"]["series"]
        }
        assert answered["answered"] + answered["idle"] == 4 * 5
        assert answered["answered"] == sum(
            v["responded"] for v in serial.values
        )


class TestNetworkHooks:
    """FleetNetwork rounds, handoffs, mobility and contention."""

    @staticmethod
    def _network(seed=11):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0.0, 10.0, size=(16, 2)) + [0.0, 1.0]
        cells = [
            ReaderCell(
                "ap0",
                ap_xy=(0.0, 0.0),
                stations=(TrafficStation("bg0"),),
            ),
            ReaderCell("ap1", ap_xy=(10.0, 0.0)),
        ]
        return FleetNetwork(
            cells,
            positions,
            seed=seed,
            policy=StrongestRxPolicy(hysteresis_db=0.5),
            mobility=RandomWalkMobility(
                bounds=(0.0, 1.0, 10.0, 11.0),
                step_m=4.0,
                fraction=0.8,
                seed=4,
            ),
            mobility_dt_s=0.002,
        )

    @staticmethod
    def _load(net, bits_per_tag=100):
        rng = np.random.default_rng(3)
        for name in net.names:
            net.load_bits(
                name, [int(b) for b in rng.integers(0, 2, bits_per_tag)]
            )

    def test_network_counters_mirror_the_simulation(self):
        net = self._network()
        telemetry = Telemetry()
        telemetry.attach_network(net)
        self._load(net)
        stats = net.run_rounds(4)
        families = telemetry.metrics_snapshot()["metrics"]

        def by_ap(name):
            return {
                entry["labels"]["ap"]: entry["value"]
                for entry in families[name]["series"]
            }

        assert by_ap("fleet_rounds_total") == {"ap0": 4.0, "ap1": 4.0}
        for field, family in (
            ("n_queries", "fleet_round_queries_total"),
            ("n_responded", "fleet_round_responses_total"),
            ("bits_sent", "fleet_round_bits_total"),
            ("bit_errors", "fleet_round_bit_errors_total"),
        ):
            want = {"ap0": 0.0, "ap1": 0.0}
            for s in stats:
                want[s.ap] += getattr(s, field)
            assert by_ap(family) == want, family
        durations = {
            entry["labels"]["ap"]: entry["sum"]
            for entry in families["fleet_round_duration_seconds"]["series"]
        }
        for ap in ("ap0", "ap1"):
            want = sum(s.duration_s for s in stats if s.ap == ap)
            assert durations[ap] == pytest.approx(want, rel=1e-12)
        assert net.mobility_ticks > 0 and net.handoffs > 0
        ticks = families["fleet_mobility_ticks_total"]["series"][0]["value"]
        assert ticks == net.mobility_ticks
        invalidations = families["fleet_mobility_invalidations_total"][
            "series"
        ][0]["value"]
        assert invalidations == net.invalidated_rows
        handoffs = sum(
            entry["value"]
            for entry in families["fleet_handoffs_total"]["series"]
        )
        assert handoffs == net.handoffs
        for entry in families["fleet_handoffs_total"]["series"]:
            assert entry["labels"]["from_ap"] != entry["labels"]["to_ap"]
        # Every executed query sampled exactly one access delay.
        access = {
            entry["labels"]["ap"]: entry["count"]
            for entry in families["fleet_access_delay_seconds"]["series"]
        }
        queries = {"ap0": 0, "ap1": 0}
        for s in stats:
            queries[s.ap] += s.n_queries
        assert access == queries

    def test_attaching_telemetry_does_not_perturb_rounds(self):
        plain = self._network()
        watched = self._network()
        Telemetry().attach_network(watched)
        self._load(plain)
        self._load(watched)
        assert watched.run_rounds(3) == plain.run_rounds(3)
        assert watched.handoffs == plain.handoffs
        assert watched.invalidated_rows == plain.invalidated_rows

    def test_contention_stalls_only_on_contended_cells(self):
        # ap0 carries a background station (CSMA contention); ap1 has
        # none, so its fallback access delays never count as stalls.
        net = self._network()
        telemetry = Telemetry()
        telemetry.attach_network(net)
        self._load(net, bits_per_tag=20)
        net.run_rounds(2)
        families = telemetry.metrics_snapshot()["metrics"]
        stalls = {
            entry["labels"]["ap"]: entry["value"]
            for entry in families["fleet_contention_stalls_total"]["series"]
        }
        assert "ap1" not in stalls or stalls["ap1"] == 0.0
