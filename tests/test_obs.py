"""Tests for the repro.obs telemetry layer.

Covers the metrics registry (determinism, merging, Prometheus
exposition), the JSONL trace pipeline (schema validation, sampling,
aggregation back to SessionStats), cross-process aggregation through
the parallel engine, the stage-counter table helpers, and the
``repro metrics`` / ``repro trace`` CLI surface.
"""

import json
import re

import numpy as np
import pytest

from repro import __version__
from repro.cli import main
from repro.core.session import MeasurementSession
from repro.obs import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    Telemetry,
    TelemetrySpec,
    TraceSampler,
    TraceWriter,
    linear_buckets,
    log_buckets,
    merge_metric_snapshots,
    read_trace,
    render_prometheus,
    summarize_trace,
    validate_trace_record,
)
from repro.perf import StageCounters
from repro.runner import SessionSpec, run_sessions
from repro.sim.scenario import los_scenario


def _traced_session(path, *, queries=25, seed=5, metrics=True,
                    sampler=None):
    """One LOS session with live telemetry; returns (telemetry, stats)."""
    telemetry = Telemetry(
        metrics=metrics,
        writer=TraceWriter(str(path)) if path else None,
        sampler=sampler,
    )
    system, _ = los_scenario(4.0, seed=seed)
    telemetry.attach(system)
    session = MeasurementSession(system, rng=np.random.default_rng(seed + 1))
    stats = session.run_queries(queries)
    telemetry.close()
    return telemetry, stats


class TestBuckets:
    def test_linear_buckets(self):
        assert linear_buckets(0.0, 2.5, 4) == (2.5, 5.0, 7.5, 10.0)
        with pytest.raises(ValueError):
            linear_buckets(0.0, 0.0, 4)
        with pytest.raises(ValueError):
            linear_buckets(0.0, 1.0, 0)

    def test_log_buckets(self):
        edges = log_buckets(1e-3, 1.0, 13)
        assert edges[0] == pytest.approx(1e-3)
        assert edges[-1] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(edges, edges[1:]))
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0, 5)


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        queries = registry.counter("q_total", "queries")
        queries.inc()
        queries.inc(3)
        assert registry.snapshot()["metrics"]["q_total"]["series"][0][
            "value"
        ] == 4
        with pytest.raises(ValueError):
            queries.inc(-1)

    def test_family_declarations_are_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x")
        assert registry.counter("x_total", "x") is first
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "y", labels=("outcome",))
        family.labels(outcome="hit").inc()
        with pytest.raises(ValueError):
            family.labels(other="hit")

    def test_observe_many_matches_sequential_observes(self):
        values = np.random.default_rng(3).uniform(0.0, 2.0, size=257)
        edges = linear_buckets(0, 0.25, 8)
        one = MetricsRegistry().histogram("h", edges)._default_child()
        many = MetricsRegistry().histogram("h", edges)._default_child()
        for v in values:
            one.observe(float(v))
        many.observe_many(values)
        assert one.counts == many.counts
        # Bitwise sum equality is the tier-invariance contract: the
        # batch path accumulates in scalar order.
        assert one.sum == many.sum

    def test_snapshot_roundtrip_merges_additively(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("c_total", "c").inc(5)
            registry.histogram("h", (1.0, 2.0)).observe(1.5)
            registry.gauge("g_max", "g").set(7.0)
            registry.gauge("g_sum", "g", aggregation="sum").set(2.0)
            return registry

        a, b = build(), build()
        merged = MetricsRegistry()
        merged.load_snapshot(a.snapshot())
        merged.load_snapshot(b.snapshot())
        snap = merged.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        metrics = snap["metrics"]
        assert metrics["c_total"]["series"][0]["value"] == 10
        assert metrics["h"]["series"][0]["count"] == 2
        assert metrics["g_max"]["series"][0]["value"] == 7.0
        assert metrics["g_sum"]["series"][0]["value"] == 4.0

    def test_merge_metric_snapshots_helper(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc(2)
        snap = registry.snapshot()
        merged = merge_metric_snapshots([snap, snap, snap])
        assert merged["metrics"]["c_total"]["series"][0]["value"] == 6


class TestPrometheusRendering:
    # A sample line is `name{label="v",...} value` or `name value`.
    _LINE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*='
        r'"[^"]*")*\})?'
        r" -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf)$"
    )

    def test_every_line_is_well_formed(self, tmp_path):
        telemetry, _ = _traced_session(None, queries=10)
        text = render_prometheus(telemetry.metrics_snapshot())
        lines = [line for line in text.splitlines() if line]
        assert lines, "exposition must not be empty"
        for line in lines:
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:]", line), line
            else:
                assert self._LINE.match(line), line

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, 2.0), "h")
        for v in (0.5, 1.5, 3.0, 3.0):
            hist.observe(v)
        text = render_prometheus(registry.snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_bucket")
        ]
        assert counts == [1, 2, 4]  # le=1, le=2, le=+Inf
        assert "h_count 4" in text
        assert counts == sorted(counts)

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            render_prometheus({"schema": 99, "metrics": {}})


class TestTraceRoundtrip:
    def test_trace_validates_and_header_stamps_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_session(path, queries=12)
        records = list(read_trace(str(path), validate=True))
        header = records[0]
        assert header["kind"] == "header"
        assert header["producer"] == "repro"
        assert header["version"] == __version__
        kinds = [r["kind"] for r in records]
        assert kinds.count("query") == 12
        assert kinds.count("session") == 1

    def test_summary_reproduces_session_stats_exactly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _, stats = _traced_session(path, queries=30, seed=5)
        summary = summarize_trace(str(path))
        queries = summary["queries"]
        assert queries["count"] == stats.queries == 30
        assert queries["bits_sent"] == stats.bits_sent
        assert queries["bit_errors"] == stats.bit_errors
        assert queries["missed_triggers"] == stats.missed_triggers
        assert queries["ber"] == stats.ber
        session = summary["sessions"][0]
        assert session["queries"] == stats.queries
        assert session["elapsed_s"] == stats.elapsed_s

    def test_validate_rejects_malformed_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_session(path, queries=2)
        good = next(
            r for r in read_trace(str(path)) if r["kind"] == "query"
        )
        with pytest.raises(ValueError, match="schema"):
            validate_trace_record({**good, "schema": 99})
        with pytest.raises(ValueError, match="missing field"):
            bad = dict(good)
            del bad["bitmap"]
            validate_trace_record(bad)
        with pytest.raises(ValueError, match="16 hex"):
            validate_trace_record({**good, "bitmap": "ff"})
        with pytest.raises(ValueError, match="kind"):
            validate_trace_record({**good, "kind": "mystery"})

    def test_read_trace_reports_bad_lines_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"schema": 1, "kind": "header"}\nnot json\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            list(read_trace(str(path)))


class TestTraceSampling:
    def test_keep_logic(self):
        sampler = TraceSampler(every_n=10, head=3)
        kept = [i for i in range(25) if sampler.keep(i)]
        assert kept == [0, 1, 2, 10, 20]
        assert not TraceSampler(every_n=0).keep(5)
        with pytest.raises(ValueError):
            TraceSampler(every_n=-1)

    def test_sampled_trace_keeps_head_and_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_session(
            path,
            queries=30,
            sampler=TraceSampler(every_n=10, head=2, tail=3),
        )
        queries = [
            r for r in read_trace(str(path), validate=True)
            if r["kind"] == "query"
        ]
        indices = sorted(r["index"] for r in queries)
        # head 0-1, every 10th (0, 10, 20), and the last 3 dropped
        # records flushed at session end.
        assert indices == [0, 1, 10, 20, 27, 28, 29]


@pytest.mark.runner
class TestCrossProcessAggregation:
    def _run(self, n_workers):
        return run_sessions(
            SessionSpec(distance_m=3.0),
            4,
            queries=15,
            seed=11,
            n_workers=n_workers,
            chunk_size=1,  # pinned: chunk layout must match across runs
            telemetry=TelemetrySpec(metrics=True),
        )

    def test_serial_and_parallel_aggregate_identically(self):
        serial = self._run(1).telemetry
        parallel = self._run(2).telemetry
        assert serial.metrics_snapshot() == parallel.metrics_snapshot()
        assert serial.chunks == parallel.chunks == 4

    def test_default_run_surfaces_stage_counters(self):
        # Satellite: even without metrics, per-worker stage counters are
        # merged and surfaced on the result.
        result = run_sessions(
            SessionSpec(), 2, queries=5, seed=3, n_workers=1
        )
        aggregate = result.telemetry
        assert aggregate is not None
        assert aggregate.metrics_snapshot() is None
        timings = aggregate.stage_timings()
        assert set(timings) == {"error_model", "system"}
        assert timings["system"]["phy-decode"]["calls"] > 0

    def test_aggregate_as_dict_is_stamped(self):
        payload = self._run(1).telemetry.as_dict()
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["version"] == __version__
        assert payload["chunks"] == 4
        assert payload["metrics"]["metrics"]["witag_sessions_total"][
            "series"
        ][0]["value"] == 4


class TestStageCounterRows:
    def test_as_rows_with_rate_sorts_and_guards(self):
        counters = StageCounters()
        counters.add("cheap", 0.5, 5)
        counters.add("hot", 2.0, 4)
        counters.add("unsampled", 0.25, 0)
        rows = counters.as_rows_with_rate()
        assert [row[0] for row in rows] == ["hot", "cheap", "unsampled"]
        assert rows[0] == ["hot", 2.0, 4, pytest.approx(5e5)]
        # calls == 0 must not divide by zero; the rate column reads 0.
        assert rows[2] == ["unsampled", 0.25, 0, 0.0]
        assert counters.rows() == [row[:3] for row in rows]


class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_metrics_json_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main([
            "metrics", "--sessions", "1", "--queries", "10",
            "--format", "json", "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        families = payload["metrics"]["metrics"]
        assert families["witag_queries_total"]["series"][0]["value"] == 10
        # Re-render the saved payload without running anything.
        capsys.readouterr()
        assert main([
            "metrics", "--input", str(out), "--format", "prometheus",
        ]) == 0
        text = capsys.readouterr().out
        assert "witag_queries_total 10" in text

    def test_metrics_table_output(self, capsys):
        assert main(["metrics", "--sessions", "1", "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "witag_queries_total" in out
        assert "phy_effective_sinr" in out

    def test_trace_run_summary_tail(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert main([
            "trace", "run", str(trace), "--queries", "20",
            "--metrics-out", str(metrics),
        ]) == 0
        assert json.loads(metrics.read_text())["chunks"] == 1
        capsys.readouterr()
        assert main(["trace", "summary", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["queries"]["count"] == 20
        assert summary["records"]["session"] == 1
        assert main([
            "trace", "tail", str(trace), "--records", "3",
            "--kind", "query",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(
            json.loads(line)["kind"] == "query" for line in lines
        )

    def test_trace_summary_rejects_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summary", str(bad)]) == 2
        assert "bad trace" in capsys.readouterr().err

    def test_sweep_metrics_out(self, tmp_path):
        out = tmp_path / "sweep-metrics.json"
        assert main([
            "sweep", "--distances", "3", "--seconds", "0.05",
            "--metrics-out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        families = payload["metrics"]["metrics"]
        assert families["witag_queries_total"]["series"][0]["value"] > 0
