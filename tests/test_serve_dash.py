"""The live dashboard surface of the sweep service.

Three endpoints/clients, one contract: ``GET /dash`` serves a single
self-contained HTML document (no third-party assets — the page must
work from an air-gapped box), ``GET /metrics?format=json`` serves the
same registry snapshot the Prometheus exposition renders, and
``repro top`` renders that snapshot over plain HTTP.  All tests boot
the service in-process on port 0, like the rest of the serve suite.
"""

import asyncio
import json
import re

import pytest

from repro.obs.top import fetch_status, render_status, run_top
from repro.serve import ServeConfig, SweepService

from .test_serve_service import http, http_json

pytestmark = pytest.mark.serve


def with_service(coro):
    """Boot a fresh in-process service, run ``coro(service)``, stop."""

    async def main():
        service = SweepService(ServeConfig(port=0, slots=1))
        await service.start()
        try:
            return await coro(service)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestDashEndpoint:
    def test_serves_self_contained_html(self):
        async def scenario(service):
            status, head, body = await http(
                service.port, "GET", "/dash"
            )
            return status, head, body.decode("utf-8")

        status, head, html = with_service(scenario)
        assert status == 200
        assert "text/html" in head
        assert html.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, styles or fonts.
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html
        assert '<link rel="stylesheet"' not in html
        # Drives itself off the service's own endpoints.
        for endpoint in ("/healthz", "/metrics?format=json", "/jobs"):
            assert endpoint in html, endpoint
        assert "EventSource" in html  # SSE job progress

    def test_trailing_slash_and_method(self):
        async def scenario(service):
            ok, _, _ = await http(service.port, "GET", "/dash/")
            bad, _, _ = await http(service.port, "POST", "/dash")
            return ok, bad

        ok, bad = with_service(scenario)
        assert ok == 200
        assert bad == 404


class TestMetricsJson:
    def test_json_format_matches_prometheus_exposition(self):
        async def scenario(service):
            # Touch a counter so the comparison is not all-zeros.
            service.metrics.job_submitted("sweep")
            status, snapshot = await http_json(
                service.port, "GET", "/metrics?format=json"
            )
            text_status, _, text = await http(
                service.port, "GET", "/metrics"
            )
            return status, snapshot, text_status, text.decode("utf-8")

        status, snapshot, text_status, text = with_service(scenario)
        assert status == 200 and text_status == 200
        assert snapshot["schema"] == 1
        submitted = snapshot["metrics"]["serve_jobs_submitted_total"]
        assert submitted["series"] == [
            {"labels": {"kind": "sweep"}, "value": 1.0}
        ]
        assert 'serve_jobs_submitted_total{kind="sweep"} 1' in text

    def test_unknown_format_is_rejected(self):
        async def scenario(service):
            return await http_json(
                service.port, "GET", "/metrics?format=xml"
            )

        status, body = with_service(scenario)
        assert status == 400
        assert "unknown metrics format" in body["error"]


class TestTopAgainstLiveServer:
    def test_fetch_and_render(self):
        async def scenario(service):
            service.metrics.set_queue_depth(3)
            url = f"http://127.0.0.1:{service.port}"
            # urllib is synchronous; run it off the event loop thread.
            return await asyncio.to_thread(fetch_status, url)

        status = with_service(scenario)
        assert status["health"]["ok"] is True
        assert status["jobs"] == []
        text = render_status(status)
        assert "repro serve v" in text
        assert re.search(r"serve_queue_depth\s+3", text)

    def test_run_top_once(self, capsys):
        async def scenario(service):
            url = f"http://127.0.0.1:{service.port}"
            return await asyncio.to_thread(
                run_top, url=url, once=True
            )

        assert with_service(scenario) == 0
        out = capsys.readouterr().out
        assert "repro serve v" in out
        assert "serve_queue_depth" in out
