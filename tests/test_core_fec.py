"""Unit tests for forward error correction codes."""

import pytest

from repro.core.errors import FecError
from repro.core.fec import (
    BlockInterleaver,
    HammingCode,
    InterleavedCode,
    NoCode,
    RepetitionCode,
)


class TestNoCode:
    def test_identity(self):
        bits = [1, 0, 1, 1]
        code = NoCode()
        assert code.encode(bits) == bits
        assert code.decode(bits) == bits

    def test_rate(self):
        assert NoCode().rate == 1.0

    def test_bad_bits(self):
        with pytest.raises(FecError):
            NoCode().encode([2])


class TestRepetition:
    def test_encode(self):
        assert RepetitionCode(3).encode([1, 0]) == [1, 1, 1, 0, 0, 0]

    def test_decode_clean(self):
        code = RepetitionCode(3)
        assert code.decode(code.encode([1, 0, 1])) == [1, 0, 1]

    def test_corrects_single_error_per_group(self):
        code = RepetitionCode(3)
        coded = code.encode([1, 0])
        coded[1] ^= 1  # damage one copy of the first bit
        coded[5] ^= 1  # and one copy of the second
        assert code.decode(coded) == [1, 0]

    def test_two_errors_in_group_fail(self):
        code = RepetitionCode(3)
        coded = code.encode([1])
        coded[0] ^= 1
        coded[1] ^= 1
        assert code.decode(coded) == [0]

    def test_rate(self):
        assert RepetitionCode(5).rate == pytest.approx(0.2)

    def test_even_factor_rejected(self):
        with pytest.raises(FecError):
            RepetitionCode(2)

    def test_length_mismatch(self):
        with pytest.raises(FecError):
            RepetitionCode(3).decode([1, 0])


class TestHamming:
    def test_encode_length(self):
        assert len(HammingCode().encode([1, 0, 1, 1])) == 7

    def test_roundtrip_all_nibbles(self):
        code = HammingCode()
        for value in range(16):
            data = [(value >> i) & 1 for i in range(4)]
            assert code.decode(code.encode(data)) == data

    def test_corrects_any_single_error(self):
        code = HammingCode()
        data = [1, 0, 1, 1]
        for position in range(7):
            coded = code.encode(data)
            coded[position] ^= 1
            assert code.decode(coded) == data, f"position {position}"

    def test_multiple_codewords(self):
        code = HammingCode()
        data = [1, 0, 0, 1, 0, 1, 1, 0]
        coded = code.encode(data)
        assert len(coded) == 14
        coded[2] ^= 1
        coded[9] ^= 1  # one error in each codeword
        assert code.decode(coded) == data

    def test_length_validation(self):
        with pytest.raises(FecError):
            HammingCode().encode([1, 0, 1])
        with pytest.raises(FecError):
            HammingCode().decode([1] * 6)


class TestInterleaver:
    def test_roundtrip(self):
        interleaver = BlockInterleaver(depth=4)
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert interleaver.deinterleave(interleaver.interleave(bits)) == bits

    def test_spreads_bursts(self):
        """A burst of depth consecutive errors lands in distinct rows."""
        depth = 4
        interleaver = BlockInterleaver(depth=depth)
        bits = [0] * 16
        coded = interleaver.interleave(bits)
        # Burst of 4 errors on the wire.
        for i in range(4, 8):
            coded[i] ^= 1
        received = interleaver.deinterleave(coded)
        # After deinterleaving the errors occupy different 4-bit rows.
        rows_hit = {i // depth for i, b in enumerate(received) if b}
        assert len(rows_hit) == 4

    def test_length_validation(self):
        with pytest.raises(FecError):
            BlockInterleaver(depth=4).interleave([1, 0, 1])

    def test_depth_validation(self):
        with pytest.raises(FecError):
            BlockInterleaver(depth=0)


class TestInterleavedCode:
    def test_roundtrip_with_hamming(self):
        code = InterleavedCode(HammingCode(), BlockInterleaver(depth=7))
        data = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0]
        assert code.decode(code.encode(data)) == data

    def test_burst_tolerance_beats_plain_hamming(self):
        """Interleaving turns a burst into single errors Hamming can fix."""
        plain = HammingCode()
        fancy = InterleavedCode(HammingCode(), BlockInterleaver(depth=7))
        data = [1, 0, 1, 1] * 7  # 28 bits -> 49 coded bits
        burst = range(3, 3 + 5)

        coded_plain = plain.encode(data)
        for i in burst:
            coded_plain[i] ^= 1
        plain_errors = sum(
            a != b for a, b in zip(plain.decode(coded_plain), data)
        )

        coded_fancy = fancy.encode(data)
        for i in burst:
            coded_fancy[i] ^= 1
        fancy_errors = sum(
            a != b for a, b in zip(fancy.decode(coded_fancy)[: len(data)], data)
        )
        assert fancy_errors < plain_errors

    def test_rate_passthrough(self):
        code = InterleavedCode(RepetitionCode(3), BlockInterleaver(depth=3))
        assert code.rate == pytest.approx(1 / 3)
