"""Integration tests: WiTAG on encrypted networks (the paper's key claim).

Paper Section 1: "because tags communicate by corrupting encrypted or
unencrypted MAC-layer subframes WiTAG works with networks that use
encryption" — while symbol-rewriting systems (HitchHike et al.) break the
decryption of any frame they touch.
"""

import numpy as np
import pytest

from repro.core.config import EncryptionMode
from repro.core.session import MeasurementSession
from repro.mac.frames import QosDataFrame
from repro.mac.security.ccmp import CcmpContext, MicError
from repro.mac.security.wep import IcvError, WepContext
from repro.phy.channel import ChannelGeometry
from repro.sim.scenario import build_system

CCMP_KEY = b"0123456789abcdef"
WEP_KEY = b"12345"


def encrypted_system(mode, key, seed=60):
    system, info = build_system(
        ChannelGeometry.on_line(8.0, 2.0),
        encryption=mode,
        encryption_key=key,
        seed=seed,
    )
    return system


def run_short_session(system, seconds=1.0, seed=4):
    return MeasurementSession(
        system, rng=np.random.default_rng(seed)
    ).run_for(seconds)


class TestWiTagUnderEncryption:
    def test_ber_unaffected_by_ccmp(self):
        """Tag BER on a WPA2 network matches the open-network BER."""
        open_stats = run_short_session(
            encrypted_system(EncryptionMode.OPEN, None)
        )
        ccmp_stats = run_short_session(
            encrypted_system(EncryptionMode.WPA2_CCMP, CCMP_KEY)
        )
        assert ccmp_stats.ber == pytest.approx(open_stats.ber, abs=0.01)
        assert ccmp_stats.throughput_bps == pytest.approx(
            open_stats.throughput_bps, rel=0.05
        )

    def test_ber_unaffected_by_wep(self):
        wep_stats = run_short_session(
            encrypted_system(EncryptionMode.WEP, WEP_KEY)
        )
        assert wep_stats.ber < 0.03

    def test_surviving_subframes_still_decrypt(self):
        """Subframes the tag leaves alone remain valid ciphertext."""
        system = encrypted_system(EncryptionMode.WPA2_CCMP, CCMP_KEY)
        system.load_tag_bits([1] * 62)  # tag corrupts nothing
        result = system.run_query()
        rx = CcmpContext(CCMP_KEY)
        decrypted = 0
        for index, mpdu in enumerate(result.query.mpdus):
            if not result.block_ack.bit(index):
                continue
            frame = QosDataFrame.parse(mpdu)
            rx.decrypt(frame.payload, bytes(system.client))
            decrypted += 1
        assert decrypted >= 60


class TestSymbolRewritingBreaksEncryption:
    """Why HitchHike-class designs fail here (paper Section 2)."""

    def test_ccmp_rejects_symbol_rewrite(self):
        tx = CcmpContext(CCMP_KEY)
        protected, _ = tx.encrypt(b"a perfectly normal frame", b"\x02" * 6)
        # A codeword-translating tag flips bits *within* the payload while
        # keeping it a 'valid' PHY frame.
        rewritten = bytearray(protected)
        rewritten[10] ^= 0x0F
        with pytest.raises(MicError):
            CcmpContext(CCMP_KEY).decrypt(bytes(rewritten), b"\x02" * 6)

    def test_wep_rejects_symbol_rewrite(self):
        tx = WepContext(WEP_KEY)
        protected = bytearray(tx.encrypt(b"legacy data"))
        protected[7] ^= 0x3C
        with pytest.raises(IcvError):
            WepContext(WEP_KEY).decrypt(bytes(protected))

    def test_witag_never_touches_payload_bytes(self):
        """WiTAG's query MPDUs reach the AP bit-exact or not at all."""
        system = encrypted_system(EncryptionMode.WPA2_CCMP, CCMP_KEY)
        system.load_tag_bits([0, 1] * 31)
        result = system.run_query()
        # The system models corruption as FCS failure, never as delivered-
        # but-modified bytes: every acknowledged subframe equals what the
        # client transmitted.
        for index, mpdu in enumerate(result.query.mpdus):
            if result.block_ack.bit(index):
                assert QosDataFrame.parse(mpdu)  # parses + FCS verifies
