"""Property-based hardening of ``repro.core.fec`` (hypothesis).

ISSUE 10 satellite 1: encode -> corrupt -> decode round-trips under
each code's guaranteed correction budget, interleaver permutation
invariants, and the rateless sufficiency property (any rank-``k``
symbol subset decodes the exact message).  Randomised by hypothesis,
shrunk on failure — these pin the *contracts* the adaptive FEC layer
builds on, not specific vectors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FecError
from repro.core.fec import (
    BlockInterleaver,
    HammingCode,
    InterleavedCode,
    LtCode,
    NoCode,
    ReedSolomonCode,
    RepetitionCode,
    make_code,
)

pytestmark = pytest.mark.adaptive

bits_of = lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)  # noqa: E731


class TestCleanRoundTrips:
    """decode(encode(x)) == x for every code on an undamaged channel."""

    @given(st.lists(st.integers(0, 1), max_size=96))
    def test_nocode(self, bits):
        assert NoCode().decode(NoCode().encode(bits)) == bits

    @given(
        st.lists(st.integers(0, 1), max_size=64),
        st.sampled_from([1, 3, 5, 7]),
    )
    def test_repetition(self, bits, n):
        code = RepetitionCode(n)
        assert code.decode(code.encode(bits)) == bits

    @given(st.integers(0, 16).flatmap(lambda k: bits_of(4 * k)))
    def test_hamming(self, bits):
        code = HammingCode()
        assert code.decode(code.encode(bits)) == bits

    @given(st.integers(1, 12).flatmap(lambda k: bits_of(4 * k)))
    def test_interleaved_hamming(self, bits):
        code = InterleavedCode(HammingCode(), BlockInterleaver(depth=4))
        assert code.decode(code.encode(bits)) == bits

    @settings(deadline=None)
    @given(
        st.integers(1, 3),
        st.integers(2, 10),
        st.integers(2, 8),
        st.data(),
    )
    def test_reed_solomon(self, blocks, k, nsym, data):
        code = ReedSolomonCode(k=k, nsym=nsym)
        bits = data.draw(bits_of(blocks * 8 * k))
        decoded, flags = code.decode_blocks(code.encode(bits))
        assert decoded == bits
        assert flags == [True] * blocks

    @settings(deadline=None)
    @given(st.integers(2, 16), st.integers(1, 8), st.data())
    def test_lt_full_reception(self, k, symbol_bits, data):
        code = LtCode(k=k, symbol_bits=symbol_bits, seed=5)
        bits = data.draw(bits_of(k * symbol_bits))
        decoded, flags = code.decode_blocks(code.encode(bits))
        # Ratelessness means a pathological seed/k pair may leave the
        # full generation short of rank k; correctness then demands the
        # flag says so.  When the flag is True the message is exact.
        if flags == [True]:
            assert decoded == bits


class TestCorrectionBudgets:
    """Damage within each code's guarantee still decodes exactly."""

    @given(
        st.integers(1, 16).flatmap(lambda m: bits_of(m)),
        st.data(),
    )
    def test_repetition3_one_error_per_group(self, bits, data):
        code = RepetitionCode(3)
        coded = list(code.encode(bits))
        for group in range(len(bits)):
            if data.draw(st.booleans(), label=f"damage group {group}"):
                offset = data.draw(
                    st.integers(0, 2), label=f"copy in group {group}"
                )
                coded[group * 3 + offset] ^= 1
        assert code.decode(coded) == bits

    @given(
        st.integers(1, 16).flatmap(lambda m: bits_of(4 * m)),
        st.data(),
    )
    def test_hamming_one_error_per_codeword(self, bits, data):
        code = HammingCode()
        coded = list(code.encode(bits))
        for word in range(len(bits) // 4):
            if data.draw(st.booleans(), label=f"damage word {word}"):
                position = data.draw(
                    st.integers(0, 6), label=f"bit in word {word}"
                )
                coded[word * 7 + position] ^= 1
        assert code.decode(coded) == bits

    @settings(deadline=None)
    @given(st.integers(2, 12), st.integers(2, 8), st.data())
    def test_rs_within_symbol_budget(self, k, nsym, data):
        code = ReedSolomonCode(k=k, nsym=nsym)
        bits = data.draw(bits_of(8 * k))
        coded = list(code.encode(bits))
        n_bytes = k + nsym
        n_errors = data.draw(
            st.integers(0, code.correctable_symbols), label="byte errors"
        )
        positions = data.draw(
            st.lists(
                st.integers(0, n_bytes - 1),
                min_size=n_errors,
                max_size=n_errors,
                unique=True,
            ),
            label="error positions",
        )
        for position in positions:
            pattern = data.draw(
                st.integers(1, 255), label=f"pattern at {position}"
            )
            for bit in range(8):
                if (pattern >> bit) & 1:
                    coded[position * 8 + (7 - bit)] ^= 1
        decoded, flags = code.decode_blocks(coded)
        assert decoded == bits
        assert flags == [True]

    @settings(deadline=None)
    @given(st.integers(4, 16), st.data())
    def test_lt_parity_turns_bit_flips_into_erasures(self, k, data):
        """A bit flip in one symbol never silently corrupts the message.

        The flipped symbol fails its parity check and is dropped as an
        erasure; when the survivors still reach rank ``k`` the message
        decodes exactly.
        """
        code = LtCode(k=k, symbol_bits=8, seed=9, overhead=0.75)
        bits = data.draw(bits_of(k * 8))
        coded = list(code.encode(bits))
        victim = data.draw(
            st.integers(0, code.n_symbols - 1), label="victim symbol"
        )
        position = data.draw(st.integers(0, 7), label="bit in symbol")
        coded[victim * code._unit_bits + position] ^= 1
        decoded, flags = code.decode_blocks(coded)
        if flags == [True]:
            assert decoded == bits


class TestRatelessSufficiency:
    """Any symbol subset whose combination matrix has rank k decodes."""

    @settings(deadline=None)
    @given(
        st.integers(4, 20),
        st.integers(0, 2**31 - 1),
        st.data(),
    )
    def test_any_sufficient_subset_decodes_exactly(self, k, seed, data):
        code = LtCode(k=k, symbol_bits=8, seed=seed, overhead=1.0)
        bits = data.draw(bits_of(k * 8))
        keep = data.draw(
            st.lists(
                st.integers(0, code.n_symbols - 1),
                min_size=k,
                max_size=code.n_symbols,
                unique=True,
            ),
            label="kept symbol indices",
        )
        values = code.encode_symbols(bits, indices=sorted(keep))
        received = dict(zip(sorted(keep), values))
        decoded, ok = code.decode_symbols(received)
        if ok:
            assert decoded == bits
        else:
            # Insufficient subset: the rank really is short of k.
            rank = _gf2_rank(
                [code.neighbours(index) for index in received], k
            )
            assert rank < k

    @settings(deadline=None)
    @given(st.integers(4, 16), st.integers(0, 2**31 - 1))
    def test_supersets_preserve_sufficiency(self, k, seed):
        """If the first k+m symbols decode, adding more still decodes."""
        code = LtCode(k=k, symbol_bits=8, seed=seed, overhead=1.0)
        rng = np.random.default_rng(k * 1000003 + seed % 65536)
        bits = [int(b) for b in rng.integers(0, 2, size=k * 8)]
        all_values = code.encode_symbols(bits)
        sufficient_at = None
        for count in range(k, code.n_symbols + 1):
            received = dict(enumerate(all_values[:count]))
            decoded, ok = code.decode_symbols(received)
            if sufficient_at is not None:
                assert ok, (
                    f"rank-k subset of {sufficient_at} symbols decoded "
                    f"but superset of {count} did not"
                )
            if ok:
                sufficient_at = sufficient_at or count
                assert decoded == bits

    def test_neighbours_deterministic_and_in_range(self):
        code = LtCode(k=12, seed=77)
        for index in range(code.n_symbols * 2):
            first = code.neighbours(index)
            assert first == code.neighbours(index)
            assert len(set(first)) == len(first) >= 1
            assert all(0 <= n < code.k for n in first)


def _gf2_rank(neighbour_sets, k: int) -> int:
    """Rank of the GF(2) combination matrix of the given rows."""
    pivots: dict[int, int] = {}
    for neighbours in neighbour_sets:
        mask = 0
        for n in neighbours:
            mask |= 1 << n
        while mask:
            col = mask.bit_length() - 1
            if col not in pivots:
                pivots[col] = mask
                break
            mask ^= pivots[col]
    return len(pivots)


class TestInterleaverProperties:
    @given(
        st.integers(1, 16),
        st.integers(1, 12).flatmap(
            lambda rows: st.integers(1, 16).map(lambda d: (rows, d))
        ),
    )
    def test_interleave_is_a_permutation(self, _unused, shape):
        rows, depth = shape
        interleaver = BlockInterleaver(depth=depth)
        # Interleaving a distinct-valued sequence must reorder it
        # without loss or duplication; 0/1 "bits" can't show that, so
        # feed indices through the same code path via positions.
        length = rows * depth
        sequence = list(range(length))
        permuted = [
            sequence[r * depth + c]
            for c in range(depth)
            for r in range(rows)
        ]
        assert sorted(permuted) == sequence
        bits = [value & 1 for value in sequence]
        assert sorted(interleaver.interleave(bits)) == sorted(bits)

    @given(st.integers(1, 16), st.integers(1, 12), st.data())
    def test_deinterleave_inverts_interleave(self, depth, rows, data):
        interleaver = BlockInterleaver(depth=depth)
        bits = data.draw(bits_of(depth * rows))
        assert interleaver.deinterleave(interleaver.interleave(bits)) == bits


class TestRegistry:
    def test_make_code_knows_new_codes(self):
        assert isinstance(make_code("rs", k=4, nsym=4), ReedSolomonCode)
        assert isinstance(make_code("lt", k=8), LtCode)

    def test_make_code_unknown_name(self):
        with pytest.raises(FecError):
            make_code("turbo")

    def test_rs_parameter_validation(self):
        with pytest.raises(FecError):
            ReedSolomonCode(k=0)
        with pytest.raises(FecError):
            ReedSolomonCode(k=4, nsym=1)
        with pytest.raises(FecError):
            ReedSolomonCode(k=250, nsym=10)

    def test_lt_parameter_validation(self):
        with pytest.raises(FecError):
            LtCode(k=1)
        with pytest.raises(FecError):
            LtCode(k=8, overhead=-0.1)
        with pytest.raises(FecError):
            LtCode(k=8, soliton_delta=1.5)
