"""Unit tests for management frames (beacons, association)."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.management import (
    AssociationRequest,
    AssociationResponse,
    Beacon,
    ElementId,
    InformationElement,
    associate,
    ht_capabilities_element,
    ssid_element,
    supported_rates_element,
)

AP = MacAddress.parse("02:41:50:00:00:01")
CLIENT = MacAddress.parse("02:57:49:54:41:47")


class TestInformationElements:
    def test_roundtrip(self):
        elements = [
            ssid_element("witag-lab"),
            supported_rates_element(),
            ht_capabilities_element(),
        ]
        blob = b"".join(e.serialize() for e in elements)
        parsed = InformationElement.parse_all(blob)
        assert [e.element_id for e in parsed] == [
            ElementId.SSID,
            ElementId.SUPPORTED_RATES,
            ElementId.HT_CAPABILITIES,
        ]
        assert parsed[0].body == b"witag-lab"

    def test_truncation_detected(self):
        blob = ssid_element("net").serialize()
        with pytest.raises(ValueError):
            InformationElement.parse_all(blob[:-1])

    def test_ssid_length_limit(self):
        with pytest.raises(ValueError):
            ssid_element("x" * 33)

    def test_element_validation(self):
        with pytest.raises(ValueError):
            InformationElement(300, b"")
        with pytest.raises(ValueError):
            InformationElement(0, bytes(256))


class TestBeacon:
    def test_serialize_parse_roundtrip(self):
        beacon = Beacon(
            bssid=AP,
            ssid="witag-lab",
            beacon_interval_tu=100,
            capabilities=0x0011,  # ESS + privacy
            sequence=42,
            timestamp_us=123456789,
        )
        parsed = Beacon.parse(beacon.serialize())
        assert parsed.bssid == AP
        assert parsed.ssid == "witag-lab"
        assert parsed.beacon_interval_tu == 100
        assert parsed.privacy
        assert parsed.sequence == 42
        assert parsed.timestamp_us == 123456789

    def test_open_network_no_privacy(self):
        beacon = Beacon(bssid=AP, ssid="open-net")
        assert not beacon.privacy

    def test_advertises_ampdu(self):
        """WiTAG's one requirement on the network: HT frame aggregation."""
        beacon = Beacon(bssid=AP, ssid="lab")
        data = beacon.serialize()
        # The HT Capabilities element must appear on the air.
        assert bytes([int(ElementId.HT_CAPABILITIES)]) in data
        assert Beacon.parse(data).supports_ampdu

    def test_corrupted_rejected(self):
        data = bytearray(Beacon(bssid=AP, ssid="x").serialize())
        data[30] ^= 0xFF
        with pytest.raises(ValueError, match="FCS"):
            Beacon.parse(bytes(data))

    def test_not_a_beacon_rejected(self):
        request = AssociationRequest(client=CLIENT, bssid=AP, ssid="x")
        with pytest.raises(ValueError):
            Beacon.parse(request.serialize())

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Beacon.parse(b"\x80\x00" + bytes(10))


class TestAssociation:
    def test_request_serializes_with_fcs(self):
        from repro.mac.crc import verify_fcs

        request = AssociationRequest(client=CLIENT, bssid=AP, ssid="lab")
        assert verify_fcs(request.serialize())

    def test_response_success(self):
        response = AssociationResponse(bssid=AP, client=CLIENT)
        assert response.success
        assert not AssociationResponse(
            bssid=AP, client=CLIENT, status=17
        ).success

    def test_handshake(self):
        beacon = Beacon(bssid=AP, ssid="witag-lab")
        request, response = associate(CLIENT, beacon)
        assert request.bssid == AP
        assert request.ssid == "witag-lab"
        assert response.client == CLIENT
        assert response.success

    def test_witag_needs_nothing_special(self):
        """End-to-end: discover, associate, then run WiTAG unchanged."""
        from repro.sim.scenario import los_scenario

        beacon = Beacon(bssid=AP, ssid="existing-network")
        _request, response = associate(CLIENT, beacon)
        assert response.success
        system, _ = los_scenario(2.0, seed=91)
        system.load_tag_bits([1, 0] * 31)
        result = system.run_query()
        assert result.detected
        assert result.bit_errors <= 5
