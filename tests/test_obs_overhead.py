"""Bench smoke: telemetry overhead on the session-batch fast path.

The telemetry layer's cost contract: a simulator without an attached
:class:`repro.obs.Telemetry` pays one ``is None`` check per hook site
(the disabled case is covered by the asserted benchmarks under
``benchmarks/``, which run without telemetry against
``benchmarks/baselines.json``), and a fully instrumented run — metrics
plus a sampled trace at ``every_n=100`` — stays within 15% of the
uninstrumented wall clock.  Min-of-N wall clocks on both sides plus an
absolute slack keep the assertion robust on shared machines.
"""

import pytest

from repro.bench import timed_session
from repro.obs import Telemetry, TraceSampler, TraceWriter

QUERIES = 150
REPEATS = 3
#: Relative regression budget for metrics + every_n=100 tracing.
MAX_OVERHEAD = 1.15
#: Absolute slack (s) so scheduler noise on a ~0.1 s run can't flake.
ABS_SLACK_S = 0.05


@pytest.mark.bench_smoke
def test_instrumented_session_within_overhead_budget(tmp_path):
    plain = min(
        timed_session(QUERIES)["wall_s"] for _ in range(REPEATS)
    )
    instrumented = []
    for i in range(REPEATS):
        telemetry = Telemetry(
            writer=TraceWriter(str(tmp_path / f"trace{i}.jsonl")),
            sampler=TraceSampler(every_n=100),
        )
        run = timed_session(QUERIES, telemetry=telemetry)
        telemetry.close()
        # The capture must actually have instrumented the timed region.
        snap = telemetry.metrics_snapshot()["metrics"]
        assert (
            snap["witag_queries_total"]["series"][0]["value"] == QUERIES
        )
        instrumented.append(run["wall_s"])
    assert min(instrumented) <= plain * MAX_OVERHEAD + ABS_SLACK_S, (
        f"telemetry overhead too high: {min(instrumented):.4f}s "
        f"instrumented vs {plain:.4f}s plain"
    )
