"""Property-based tests on PHY-layer invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WiTagConfig
from repro.core.throughput import analytic_throughput_bps
from repro.mac.duration import duration_field_us
from repro.phy.airtime import ppdu_airtime
from repro.phy.channel import ChannelGeometry, PathLossModel
from repro.phy.coding import coded_bit_error_rate, packet_error_rate
from repro.phy.csi import eesm_effective_sinr
from repro.phy.mcs import ht_mcs, vht_mcs
from repro.phy.modulation import (
    Modulation,
    RATE_1_2,
    snr_db_to_linear,
    snr_linear_to_db,
)
from repro.tag.timing import TimingModel
from repro.tag.oscillator import witag_crystal_50khz

snr_db = st.floats(min_value=-20.0, max_value=60.0)
distances = st.floats(min_value=0.1, max_value=100.0)


class TestModulationProperties:
    @settings(max_examples=50)
    @given(snr_db, st.sampled_from(list(Modulation)))
    def test_ber_in_range(self, db, modulation):
        ber = modulation.bit_error_rate(snr_db_to_linear(db))
        assert 0.0 <= ber <= 0.5

    @settings(max_examples=50)
    @given(
        st.floats(min_value=-10, max_value=40),
        st.floats(min_value=0.1, max_value=10),
        st.sampled_from(list(Modulation)),
    )
    def test_ber_monotone(self, db, delta, modulation):
        low = modulation.bit_error_rate(snr_db_to_linear(db))
        high = modulation.bit_error_rate(snr_db_to_linear(db + delta))
        assert high <= low + 1e-12

    @settings(max_examples=30)
    @given(st.floats(min_value=-30, max_value=30))
    def test_snr_conversion_roundtrip(self, db):
        assert snr_linear_to_db(snr_db_to_linear(db)) == pytest.approx(db)


class TestCodingProperties:
    @settings(max_examples=50)
    @given(st.floats(min_value=0.0, max_value=0.5))
    def test_coded_ber_bounded(self, p):
        coded = coded_bit_error_rate(RATE_1_2, p)
        assert 0.0 <= coded <= 0.5

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_per_is_probability(self, ber, bits):
        per = packet_error_rate(ber, bits)
        assert 0.0 <= per <= 1.0

    @settings(max_examples=50)
    @given(
        st.floats(min_value=1e-6, max_value=0.4),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=10),
    )
    def test_per_monotone_in_length(self, ber, bits, extra):
        assert packet_error_rate(ber, bits) <= packet_error_rate(
            ber, bits + extra
        ) + 1e-15


class TestAirtimeProperties:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=60_000),
        st.integers(min_value=0, max_value=7),
    )
    def test_airtime_positive_and_monotone(self, psdu, mcs_index):
        mcs = ht_mcs(mcs_index)
        t1 = ppdu_airtime(psdu, mcs).total_s
        t2 = ppdu_airtime(psdu + 100, mcs).total_s
        assert t1 > 0
        assert t2 >= t1

    @settings(max_examples=50)
    @given(
        st.integers(min_value=100, max_value=60_000),
        st.integers(min_value=0, max_value=6),
    )
    def test_faster_mcs_never_slower(self, psdu, mcs_index):
        slow = ppdu_airtime(psdu, ht_mcs(mcs_index)).total_s
        fast = ppdu_airtime(psdu, ht_mcs(mcs_index + 1)).total_s
        assert fast <= slow


class TestChannelProperties:
    @settings(max_examples=50)
    @given(distances, st.floats(min_value=1.5, max_value=4.0))
    def test_path_loss_monotone_in_distance(self, d, exponent):
        model = PathLossModel(exponent=exponent)
        wl = 0.125
        assert model.path_loss_db(d + 1.0, wl) > model.path_loss_db(d, wl)

    @settings(max_examples=50)
    @given(st.floats(min_value=0.2, max_value=7.8))
    def test_on_line_geometry_consistent(self, tag_pos):
        geometry = ChannelGeometry.on_line(8.0, tag_pos)
        assert geometry.tx_tag_m + geometry.tag_rx_m == pytest.approx(8.0)
        assert geometry.excess_delay_s == pytest.approx(0.0, abs=1e-15)

    @settings(max_examples=50)
    @given(st.floats(min_value=0.2, max_value=7.8))
    def test_reversed_preserves_endpoints(self, tag_pos):
        geometry = ChannelGeometry.on_line(8.0, tag_pos)
        back = geometry.reversed()
        assert back.tx_tag_m == geometry.tag_rx_m
        assert back.tag_rx_m == geometry.tx_tag_m
        assert back.reversed() == geometry


class TestEesmProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e6),
            min_size=1,
            max_size=64,
        ),
        st.sampled_from(list(Modulation)),
    )
    def test_effective_bounded_by_min_and_max(self, sinrs, modulation):
        arr = np.asarray(sinrs)
        eff = eesm_effective_sinr(arr, modulation)
        assert eff <= arr.max() + 1e-6
        assert eff >= arr.min() - max(1e-9, arr.min() * 1e-6)


class TestThroughputProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=4, max_value=64))
    def test_rate_monotone_in_subframes(self, n):
        low = analytic_throughput_bps(WiTagConfig(n_subframes=n))
        if n < 64:
            high = analytic_throughput_bps(WiTagConfig(n_subframes=n + 1))
            assert high >= low
        assert low > 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=4))
    def test_vht_rates_positive(self, index, streams):
        rate = vht_mcs(index, streams).data_rate_bps(80, short_gi=True)
        assert rate > vht_mcs(0, 1).data_rate_bps()


class TestTimingProperties:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=63),
        st.floats(min_value=0.1e-6, max_value=3e-6),
    )
    def test_misalignment_probability_valid(self, k, jitter):
        model = TimingModel(
            witag_crystal_50khz(), subframe_s=20e-6, sync_jitter_s=jitter
        )
        p = model.misalignment_probability(k)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=40)
    @given(st.floats(min_value=16e-6, max_value=24e-6))
    def test_grid_snap_bounds_target(self, estimate):
        model = TimingModel(
            witag_crystal_50khz(),
            subframe_s=20e-6,
            period_estimate_s=estimate,
        )
        # Snapped target is a whole number of 4 us symbols.
        ratio = model.target_period_s / 4e-6
        assert ratio == pytest.approx(round(ratio))


class TestDurationProperties:
    @settings(max_examples=50)
    @given(st.floats(min_value=0.0, max_value=0.1))
    def test_duration_covers_time(self, t):
        value = duration_field_us(t)
        assert 0 <= value <= 0x7FFF
        if t <= 0x7FFF * 1e-6:
            assert value * 1e-6 >= t - 1e-12
