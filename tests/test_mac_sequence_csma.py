"""Unit tests for sequence management and the DCF contention model."""

import numpy as np
import pytest

from repro.mac.csma import ContentionModel, DcfParameters, DcfStation
from repro.mac.sequence import SequenceCounter, TransmitWindow


class TestSequenceCounter:
    def test_monotone_allocation(self):
        counter = SequenceCounter()
        assert [counter.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_wraparound(self):
        counter = SequenceCounter(_next=4094)
        assert counter.allocate_block(4) == [4094, 4095, 0, 1]

    def test_next_value_peek(self):
        counter = SequenceCounter()
        assert counter.next_value == 0
        counter.allocate()
        assert counter.next_value == 1

    def test_block_bounds(self):
        counter = SequenceCounter()
        with pytest.raises(ValueError):
            counter.allocate_block(0)
        with pytest.raises(ValueError):
            counter.allocate_block(65)

    def test_block_of_64_allowed(self):
        assert len(SequenceCounter().allocate_block(64)) == 64


class TestTransmitWindow:
    def test_apply_bitmap(self):
        window = TransmitWindow(ssn=0)
        newly = window.apply_bitmap(0, 0b1011)
        assert newly == [0, 1, 3]

    def test_reapply_is_incremental(self):
        window = TransmitWindow(ssn=0)
        window.apply_bitmap(0, 0b0001)
        newly = window.apply_bitmap(0, 0b0011)
        assert newly == [1]

    def test_advance_drops_stale(self):
        window = TransmitWindow(ssn=0)
        window.apply_bitmap(0, 0b1)
        window.advance_to(2000)
        assert window.acked == set()

    def test_advance_keeps_in_window(self):
        window = TransmitWindow(ssn=0)
        window.apply_bitmap(0, 0b11)
        window.advance_to(1)
        assert window.acked == {1}

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmitWindow().advance_to(4096)


class TestDcfStation:
    def test_window_doubling(self):
        station = DcfStation()
        assert station.contention_window() == 15
        station.on_failure()
        assert station.contention_window() == 31
        station.on_failure()
        assert station.contention_window() == 63

    def test_window_cap(self):
        station = DcfStation()
        for _ in range(12):
            station.on_failure()
        assert station.contention_window() == 1023

    def test_reset_on_success(self):
        station = DcfStation()
        station.on_failure()
        station.on_success()
        assert station.contention_window() == 15

    def test_backoff_in_range(self):
        station = DcfStation()
        rng = np.random.default_rng(0)
        draws = [station.draw_backoff_slots(rng) for _ in range(200)]
        assert min(draws) >= 0
        assert max(draws) <= 15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DcfParameters(cw_min=0)
        with pytest.raises(ValueError):
            DcfParameters(cw_min=31, cw_max=15)


class TestContentionModel:
    def test_idle_channel_mean(self):
        model = ContentionModel()
        # DIFS (34 us) + 7.5 slots * 9 us = ~101.5 us.
        assert model.mean_access_delay_s() == pytest.approx(101.5e-6, rel=0.01)

    def test_contenders_increase_delay(self):
        idle = ContentionModel(n_contenders=0)
        busy = ContentionModel(n_contenders=10, contender_activity=0.3)
        assert busy.mean_access_delay_s() > idle.mean_access_delay_s()

    def test_samples_positive_and_plausible(self):
        model = ContentionModel(
            n_contenders=3, rng=np.random.default_rng(1)
        )
        samples = [model.sample_access_delay_s() for _ in range(300)]
        assert all(s >= model.params.difs_s for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.mean_access_delay_s(), rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionModel(n_contenders=-1)
        with pytest.raises(ValueError):
            ContentionModel(contender_activity=1.5)
