"""Unit tests for configuration and query A-MPDU construction."""

import pytest

from repro.core.config import EncryptionMode, WiTagConfig
from repro.core.errors import ConfigurationError
from repro.core.query import QueryBuilder, TRIGGER_PATTERN
from repro.core.system import DEFAULT_AP, DEFAULT_CLIENT
from repro.mac.ampdu import deaggregate
from repro.mac.frames import QosDataFrame
from repro.mac.security.ccmp import CcmpContext
from repro.phy.mcs import ht_mcs


def make_builder(**config_kwargs):
    config = WiTagConfig(**config_kwargs)
    return QueryBuilder(config, client=DEFAULT_CLIENT, ap=DEFAULT_AP)


class TestConfig:
    def test_defaults(self):
        config = WiTagConfig()
        assert config.n_subframes == 64
        assert config.bits_per_query == 62
        assert config.tag_clock_period_s == pytest.approx(20e-6)

    def test_subframe_bounds(self):
        with pytest.raises(ConfigurationError):
            WiTagConfig(n_subframes=0)
        with pytest.raises(ConfigurationError):
            WiTagConfig(n_subframes=65)

    def test_trigger_bounds(self):
        with pytest.raises(ConfigurationError):
            WiTagConfig(n_subframes=4, n_trigger_subframes=4)

    def test_wep_key_length(self):
        with pytest.raises(ConfigurationError):
            WiTagConfig(encryption=EncryptionMode.WEP, encryption_key=b"xx")
        WiTagConfig(encryption=EncryptionMode.WEP, encryption_key=b"12345")

    def test_ccmp_key_length(self):
        with pytest.raises(ConfigurationError):
            WiTagConfig(
                encryption=EncryptionMode.WPA2_CCMP, encryption_key=b"short"
            )

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            WiTagConfig(channel_width_mhz=30)


class TestQueryBuilder:
    def test_builds_configured_subframes(self):
        query = make_builder().build()
        assert query.n_subframes == 64
        assert query.n_payload_subframes == 62

    def test_all_mpdus_valid(self):
        query = make_builder().build()
        subframes = deaggregate(query.psdu)
        assert len(subframes) == 64
        assert all(s.fcs_ok for s in subframes)

    def test_sequence_numbers_consecutive(self):
        query = make_builder().build()
        sequences = [
            QosDataFrame.parse(m).seq.sequence for m in query.mpdus
        ]
        assert sequences == list(range(query.ssn, query.ssn + 64))

    def test_successive_queries_advance_ssn(self):
        builder = make_builder()
        first = builder.build()
        second = builder.build()
        assert second.ssn == (first.ssn + 64) % 4096

    def test_trigger_subframes_carry_pattern(self):
        query = make_builder().build()
        trigger_payload = QosDataFrame.parse(query.mpdus[0]).payload
        assert trigger_payload[: len(TRIGGER_PATTERN)] == TRIGGER_PATTERN

    def test_payload_subframes_zero_filled(self):
        query = make_builder().build()
        payload = QosDataFrame.parse(query.mpdus[5]).payload
        assert set(payload) <= {0}

    def test_boundaries_track_clock_grid(self):
        """Cumulative boundary error must stay within a fraction of a symbol."""
        query = make_builder().build()
        starts = [w[0] for w in query.schedule.windows]
        period = query.mean_subframe_s
        for k, start in enumerate(starts):
            deviation = abs(start - (starts[0] + k * period))
            assert deviation < 4e-6, f"subframe {k} off grid by {deviation}"

    def test_mean_subframe_matches_clock(self):
        query = make_builder().build()
        assert query.mean_subframe_s == pytest.approx(20e-6, rel=0.01)

    def test_airtime_plausible(self):
        # 64 x ~20 us subframes + 36 us preamble ~= 1.3 ms.
        query = make_builder().build()
        assert query.airtime_s == pytest.approx(1.32e-3, rel=0.03)

    def test_clock_too_fast_rejected(self):
        with pytest.raises(ConfigurationError):
            make_builder(mcs=ht_mcs(0), tag_clock_hz=500e3).build()


class TestBuildTemplateCache:
    """The cached unencrypted build must be indistinguishable from the
    uncached reference serialization (only sequence numbers differ
    between consecutive builds)."""

    def test_cached_build_matches_reference(self):
        cached = make_builder()
        reference = make_builder()
        for _ in range(3):
            a = cached.build()
            b = reference._build_reference()
            assert a.psdu == b.psdu
            assert a.mpdus == b.mpdus
            assert a.ssn == b.ssn
            assert a.schedule == b.schedule

    def test_consecutive_builds_advance_sequence_numbers(self):
        builder = make_builder()
        first = builder.build()
        second = builder.build()
        assert second.ssn == (
            first.ssn + first.n_subframes
        ) % 4096
        assert first.mpdus != second.mpdus
        # Schedule is geometry-only and shared between builds.
        assert first.schedule is second.schedule

    def test_encrypted_builds_bypass_cache(self):
        builder = make_builder(
            encryption=EncryptionMode.WPA2_CCMP,
            encryption_key=bytes(range(16)),
        )
        q1 = builder.build()
        q2 = builder.build()
        assert builder._templates is None
        # CCMP packet numbers advance: same positions, different bytes.
        assert q1.mpdus != q2.mpdus


class TestEncryptedQueries:
    def test_ccmp_queries_decryptable(self):
        key = b"0123456789abcdef"
        builder = make_builder(
            encryption=EncryptionMode.WPA2_CCMP, encryption_key=key
        )
        query = builder.build()
        receiver_ctx = CcmpContext(key)
        frame = QosDataFrame.parse(query.mpdus[0])
        plaintext = receiver_ctx.decrypt(
            frame.payload, bytes(DEFAULT_CLIENT)
        )
        assert plaintext[: len(TRIGGER_PATTERN)] == TRIGGER_PATTERN

    def test_ccmp_payload_is_ciphertext(self):
        builder = make_builder(
            encryption=EncryptionMode.WPA2_CCMP,
            encryption_key=b"0123456789abcdef",
        )
        query = builder.build()
        frame = QosDataFrame.parse(query.mpdus[0])
        assert TRIGGER_PATTERN not in frame.payload

    def test_wep_queries_build(self):
        builder = make_builder(
            encryption=EncryptionMode.WEP, encryption_key=b"12345"
        )
        query = builder.build()
        assert len(deaggregate(query.psdu)) == 64

    def test_encrypted_airtime_unchanged(self):
        """Encryption must not change the on-air shape of queries."""
        open_q = make_builder().build()
        enc_q = make_builder(
            encryption=EncryptionMode.WPA2_CCMP,
            encryption_key=b"0123456789abcdef",
        ).build()
        assert enc_q.airtime_s == pytest.approx(open_q.airtime_s, rel=1e-6)
        assert enc_q.mean_subframe_s == pytest.approx(
            open_q.mean_subframe_s, rel=1e-6
        )
