"""Shared fixtures for the test suite.

The ``chaos`` fixture is the reusable fault-injection harness: any
suite can run an engine call under deterministic injected
crash/hang/corruption/worker-exit faults and assert the determinism
contract survived (see ``docs/fault_tolerance.md``).
"""

import pytest

from repro.runner import (
    FaultSpec,
    RetryPolicy,
    WorkUnitError,
    run_sweep,
    run_units,
)


class ChaosHarness:
    """Run engine calls under deterministic injected faults.

    Thin convenience wrapper over :class:`repro.runner.FaultSpec` and
    :class:`repro.runner.RetryPolicy`: build fault plans, run
    ``run_units`` with them, and assert that a faulty-but-tolerated run
    reproduces the fault-free result bit-for-bit.
    """

    #: Default tolerance for injected single-failure faults.
    default_retry = RetryPolicy(max_attempts=3)

    def faults(self, **kwargs) -> FaultSpec:
        """A :class:`FaultSpec` (keyword passthrough)."""
        return FaultSpec(**kwargs)

    def seeded(self, seed: int, n_units: int, **rates) -> FaultSpec:
        """A reproducible random fault plan (``FaultSpec.seeded``)."""
        return FaultSpec.seeded(seed, n_units, **rates)

    def run(self, fn, units, *, faults=None, retry=default_retry, **kwargs):
        """``run_units`` with faults injected and (by default) tolerated."""
        return run_units(fn, units, faults=faults, retry=retry, **kwargs)

    def check_bit_identical(
        self, fn, units, *, faults, retry=default_retry, **kwargs
    ):
        """Assert a tolerated chaotic run matches the fault-free run.

        Returns ``(baseline, chaotic)`` for further assertions (retry
        events, executor used, telemetry...).
        """
        baseline = run_units(fn, list(units), **kwargs)
        chaotic = self.run(
            fn, list(units), faults=faults, retry=retry, **kwargs
        )
        assert chaotic.values == baseline.values, (
            "injected faults changed sweep values despite retries"
        )
        assert [p.seed for p in chaotic.points] == [
            p.seed for p in baseline.points
        ]
        return baseline, chaotic

    def partial_checkpoint(self, fn, spec, checkpoint, *, crash_unit):
        """Leave a partial checkpoint behind, as a killed run would.

        Runs ``run_sweep(fn, spec)`` against ``checkpoint`` with a
        *permanent* crash injected at ``crash_unit`` and no retry
        budget, so the run dies mid-sweep with every chunk completed
        before the crash already spilled.  Restart/resume tests (the
        job service's kill-and-restart scenario included) then resume
        from exactly this state.  Pick ``crash_unit`` at least one
        chunk into the sweep or there is nothing to resume.
        """
        faults = FaultSpec(crash=(crash_unit,), failures=10**6)
        try:
            run_sweep(
                fn,
                spec,
                faults=faults,
                retry=RetryPolicy(max_attempts=1),
                checkpoint=checkpoint,
                resume=True,
            )
        except WorkUnitError:
            return
        raise AssertionError(
            "injected permanent crash did not abort the run"
        )


@pytest.fixture
def chaos() -> ChaosHarness:
    """Deterministic fault-injection harness for engine calls."""
    return ChaosHarness()
