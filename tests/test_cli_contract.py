"""CLI contract: every subcommand's exit codes, JSON shapes, streams.

The contract under test, for the whole ``repro`` surface:

* exit code 0 on success, 1 on a runtime failure, 2 on bad arguments;
* machine output (``--json`` / ``--format json`` / ``--print-config``)
  is valid JSON with a stable top-level shape;
* stderr hygiene — success writes nothing to stderr (diagnostics
  excepted where documented), failures explain themselves on stderr
  and keep stdout empty so pipelines never ingest half a table.

Everything runs ``repro.cli.main`` in-process: exit codes are the
function's return value, streams come from capsys, and no subprocess
startup cost lands on tier-1.
"""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.serve


def run(capsys, argv):
    """Invoke the CLI; returns (exit_code, stdout, stderr)."""
    try:
        code = main(argv)
    except SystemExit as exit_:  # argparse paths (--version, errors)
        code = exit_.code if exit_.code is not None else 0
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def assert_success(code, err):
    assert code == 0
    assert err == ""


class TestGlobalContract:
    def test_version(self, capsys):
        code, out, err = run(capsys, ["--version"])
        assert code == 0
        assert out.startswith("repro ")
        assert err == ""

    def test_unknown_subcommand_exits_2_via_stderr(self, capsys):
        code, out, err = run(capsys, ["frobnicate"])
        assert code == 2
        assert out == ""
        assert "invalid choice" in err

    def test_no_subcommand_exits_2(self, capsys):
        code, out, err = run(capsys, [])
        assert code == 2
        assert out == ""
        assert err != ""


class TestSweep:
    def test_success_prints_table_only_to_stdout(self, capsys):
        code, out, err = run(
            capsys,
            ["sweep", "--distances", "2,4", "--seconds", "0.02"],
        )
        assert_success(code, err)
        assert "LOS sweep" in out
        assert "wall" in out

    def test_bad_distances_exit_2(self, capsys):
        code, out, err = run(capsys, ["sweep", "--distances", "x"])
        assert code == 2
        assert out == ""
        assert "--distances" in err

    def test_bad_retry_options_exit_2(self, capsys):
        code, out, err = run(
            capsys,
            ["sweep", "--distances", "2", "--retries", "0"],
        )
        assert code == 2
        assert out == ""

    def test_permanent_fault_exit_1_with_diagnosis(self, capsys):
        code, out, err = run(
            capsys,
            [
                "sweep",
                "--distances",
                "2,4",
                "--seconds",
                "0.02",
                "--inject-faults",
                "crash:0",
                "--retries",
                "1",
            ],
        )
        assert code == 1
        assert "sweep failed" in err


class TestBench:
    def test_json_artifact_schema(self, capsys, tmp_path):
        artifact = tmp_path / "bench.json"
        trajectory = tmp_path / "trajectory.json"
        code, out, err = run(
            capsys,
            [
                "bench",
                "--queries", "5",
                "--json", str(artifact),
                # Redirect the trajectory append away from the repo's
                # checked-in benchmarks/BENCH_session_batch.json.
                "--trajectory", str(trajectory),
            ],
        )
        assert code == 0
        assert trajectory.exists()
        payload = json.loads(artifact.read_text())
        assert payload["queries"] == 5
        assert set(payload) >= {
            "queries",
            "distance_m",
            "seed",
            "speedups",
            "tiers",
        }


class TestMetrics:
    def test_json_format_schema(self, capsys):
        code, out, err = run(
            capsys,
            [
                "metrics",
                "--sessions",
                "1",
                "--queries",
                "3",
                "--format",
                "json",
            ],
        )
        assert_success(code, err)
        payload = json.loads(out)
        assert payload["schema"] == 1
        assert set(payload) >= {"schema", "version", "metrics", "stage"}

    def test_prometheus_format(self, capsys):
        code, out, err = run(
            capsys,
            [
                "metrics",
                "--sessions",
                "1",
                "--queries",
                "3",
                "--format",
                "prometheus",
            ],
        )
        assert_success(code, err)
        assert "# TYPE" in out

    def test_bad_format_exit_2(self, capsys):
        code, out, err = run(
            capsys, ["metrics", "--format", "yaml"]
        )
        assert code == 2
        assert out == ""


class TestTrace:
    def test_run_summary_tail_pipeline(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, out, err = run(
            capsys,
            ["trace", "run", str(trace), "--queries", "5"],
        )
        assert_success(code, err)
        assert trace.exists()

        code, out, err = run(
            capsys, ["trace", "summary", str(trace), "--json"]
        )
        assert_success(code, err)
        payload = json.loads(out)
        assert "records" in payload
        assert payload["records"]["query"] == 5

        code, out, err = run(
            capsys, ["trace", "tail", str(trace), "--records", "2"]
        )
        assert_success(code, err)
        assert out.strip()

    def test_missing_trace_exit_2(self, capsys):
        code, out, err = run(
            capsys, ["trace", "summary", "/nonexistent.jsonl"]
        )
        assert code == 2
        assert out == ""
        assert "bad trace" in err


class TestServe:
    def test_print_config_json(self, capsys):
        code, out, err = run(capsys, ["serve", "--print-config"])
        assert_success(code, err)
        payload = json.loads(out)
        assert set(payload) == {
            "host",
            "port",
            "slots",
            "spill_dir",
            "max_jobs",
            "transport",
            "warm_workers",
        }
        assert payload["slots"] == 2
        assert payload["transport"] == "auto"
        assert payload["warm_workers"] == 0

    def test_print_config_honors_flags(self, capsys, tmp_path):
        code, out, err = run(
            capsys,
            [
                "serve",
                "--port",
                "0",
                "--slots",
                "4",
                "--spill-dir",
                str(tmp_path),
                "--transport",
                "shm",
                "--warm-workers",
                "2",
                "--print-config",
            ],
        )
        assert_success(code, err)
        payload = json.loads(out)
        assert payload["slots"] == 4
        assert payload["spill_dir"] == str(tmp_path)
        assert payload["transport"] == "shm"
        assert payload["warm_workers"] == 2

    def test_invalid_slots_exit_2(self, capsys):
        code, out, err = run(capsys, ["serve", "--slots", "0"])
        assert code == 2
        assert out == ""
        assert "slots" in err

    def test_invalid_warm_workers_exit_2(self, capsys):
        code, out, err = run(
            capsys, ["serve", "--warm-workers", "-1"]
        )
        assert code == 2
        assert out == ""
        assert "warm_workers" in err

    def test_invalid_port_exit_2(self, capsys):
        code, out, err = run(capsys, ["serve", "--port", "70000"])
        assert code == 2
        assert out == ""
        assert "port" in err


class TestReportingCommands:
    """The table-printing commands: success, stdout only."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["power"],
            ["compare"],
            ["throughput"],
            ["interference"],
            ["quickstart", "--message", "hi"],
            ["fig5", "--seconds", "0.02"],
            ["fig6", "--runs", "1", "--seconds", "0.05"],
        ],
        ids=lambda argv: argv[0],
    )
    def test_success_and_stderr_silence(self, capsys, argv):
        code, out, err = run(capsys, argv)
        assert_success(code, err)
        assert out.strip()

    def test_pcap_writes_capture(self, capsys, tmp_path):
        target = tmp_path / "x.pcap"
        code, out, err = run(
            capsys, ["pcap", str(target), "--queries", "1"]
        )
        assert_success(code, err)
        assert target.exists()
        assert "frames" in out
