"""Unit and integration tests for the end-to-end system and sessions."""

import numpy as np
import pytest

from repro.core.session import MeasurementSession, run_parallel_sessions
from repro.core.system import WiTagSystem
from repro.mac.block_ack import BlockAck
from repro.sim.scenario import los_scenario


@pytest.fixture(scope="module")
def endpoint_system():
    system, _ = los_scenario(1.0, seed=42)
    return system


def fresh_system(d=1.0, seed=42):
    system, _ = los_scenario(d, seed=seed)
    return system


class TestRunQuery:
    def test_transfers_bits(self):
        system = fresh_system()
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 7 + [1, 0, 1, 0, 1, 0]
        system.load_tag_bits(bits)
        result = system.run_query()
        assert result.detected
        assert result.n_bits == 62
        assert result.bit_errors <= 5  # near-endpoint: very low error

    def test_mostly_correct_bits(self):
        system = fresh_system()
        rng = np.random.default_rng(0)
        errors = bits = 0
        for _ in range(20):
            data = rng.integers(0, 2, 62).tolist()
            system.load_tag_bits([int(b) for b in data])
            result = system.run_query()
            errors += result.bit_errors
            bits += result.n_bits
        assert errors / bits < 0.03

    def test_block_ack_is_parseable_frame(self):
        system = fresh_system()
        system.load_tag_bits([1, 0] * 31)
        result = system.run_query()
        parsed = BlockAck.parse(result.block_ack.serialize())
        assert parsed.bitmap == result.block_ack.bitmap

    def test_trigger_subframes_always_decodable(self):
        """Trigger subframes are never corrupted by the tag."""
        system = fresh_system()
        system.load_tag_bits([0] * 62)  # corrupt everything else
        result = system.run_query()
        assert result.block_ack.bit(0)
        assert result.block_ack.bit(1)

    def test_empty_queue_sends_idle(self):
        system = fresh_system()
        result = system.run_query()
        assert result.n_bits == 0
        # With no tag activity every subframe should decode.
        assert all(result.block_ack.bits(64))

    def test_cycle_time_plausible(self):
        system = fresh_system()
        system.load_tag_bits([1] * 62)
        result = system.run_query()
        assert 1.3e-3 < result.cycle_s < 1.7e-3

    def test_rx_power_at_tag(self):
        system = fresh_system(d=1.0)
        # 15 dBm - FSPL(1 m) ~= -25 dBm.
        assert system.rx_power_at_tag_dbm == pytest.approx(-25.2, abs=1.0)

    def test_run_queries_count(self):
        system = fresh_system()
        system.load_tag_bits([1, 0] * 31 * 3)
        results = system.run_queries(3)
        assert len(results) == 3
        with pytest.raises(ValueError):
            system.run_queries(-1)


class TestMeasurementSession:
    def test_run_for_duration(self):
        session = MeasurementSession(
            fresh_system(), rng=np.random.default_rng(1)
        )
        stats = session.run_for(0.5)
        assert stats.elapsed_s >= 0.5
        assert stats.queries >= 300  # ~1.46 ms per cycle
        assert stats.bits_sent == stats.queries * 62

    def test_ber_low_at_endpoint(self):
        session = MeasurementSession(
            fresh_system(), rng=np.random.default_rng(2)
        )
        stats = session.run_for(1.0)
        assert stats.ber < 0.02

    def test_throughput_near_headline(self):
        """Paper: ~40 Kbps end to end."""
        session = MeasurementSession(
            fresh_system(), rng=np.random.default_rng(3)
        )
        stats = session.run_for(1.0)
        assert 38e3 < stats.throughput_bps < 45e3

    def test_run_queries_mode(self):
        session = MeasurementSession(
            fresh_system(), rng=np.random.default_rng(4)
        )
        stats = session.run_queries(10)
        assert stats.queries == 10

    def test_per_query_ber_shape(self):
        session = MeasurementSession(
            fresh_system(), rng=np.random.default_rng(5)
        )
        session.run_queries(20)
        per_query = session.per_query_ber()
        assert len(per_query) == 20
        assert all(0.0 <= b <= 1.0 for b in per_query)

    def test_validation(self):
        session = MeasurementSession(fresh_system())
        with pytest.raises(ValueError):
            session.run_for(0.0)
        with pytest.raises(ValueError):
            session.run_queries(0)

    def test_deterministic_given_seeds(self):
        a = MeasurementSession(
            fresh_system(seed=9), rng=np.random.default_rng(7)
        ).run_queries(5)
        b = MeasurementSession(
            fresh_system(seed=9), rng=np.random.default_rng(7)
        ).run_queries(5)
        assert a.bit_errors == b.bit_errors
        assert a.elapsed_s == b.elapsed_s


def _fixed_seed_session(ctx):
    """Engine session builder replaying the serial loop's exact seeding."""
    return MeasurementSession(
        fresh_system(seed=9), rng=np.random.default_rng(7)
    )


def _substream_session(ctx):
    """Engine session builder drawing from the unit's substreams."""
    return MeasurementSession(fresh_system(seed=ctx.seed), rng=ctx.rng(1))


class TestSessionViaEngine:
    """run_queries through the parallel engine == the serial loop."""

    QUERIES = 25

    def serial_stats(self):
        return MeasurementSession(
            fresh_system(seed=9), rng=np.random.default_rng(7)
        ).run_queries(self.QUERIES)

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_engine_matches_serial_loop_exactly(self, n_workers):
        """SessionStats equality is field-exact, not approximate."""
        expected = self.serial_stats()
        result = run_parallel_sessions(
            _fixed_seed_session,
            1,
            queries=self.QUERIES,
            n_workers=n_workers,
            executor="process" if n_workers > 1 else "auto",
        )
        (stats,) = result.values
        assert stats == expected  # frozen dataclass: all fields compared
        assert stats.ber == expected.ber
        assert stats.throughput_bps == expected.throughput_bps

    def test_many_sessions_each_match_their_serial_run(self):
        result = run_parallel_sessions(
            _substream_session, 3, queries=5, seed=17, n_workers=2,
            executor="process",
        )
        for point, stats in zip(result.points, result.values):
            serial = MeasurementSession(
                fresh_system(seed=point.seed),
                rng=np.random.default_rng(
                    np.random.SeedSequence(
                        17,
                        spawn_key=(point.parameters["session"], 1),
                    )
                ),
            ).run_queries(5)
            assert stats == serial
