"""Unit tests for sim package: rng, geometry, floor plans, events, traces."""

import numpy as np
import pytest

from repro.sim.events import EventLoop
from repro.sim.floorplan import los_testbed, paper_testbed
from repro.sim.geometry import Material, Point, Wall, path_profile
from repro.sim.rng import named_rngs, spawn_rngs
from repro.sim.trace import TraceRecord, TraceWriter


class TestRng:
    def test_streams_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_reproducible(self):
        x = spawn_rngs(5, 3)[1].random()
        y = spawn_rngs(5, 3)[1].random()
        assert x == y

    def test_named(self):
        rngs = named_rngs(1, "a", "b")
        assert set(rngs) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)
        with pytest.raises(ValueError):
            named_rngs(0)
        with pytest.raises(ValueError):
            named_rngs(0, "x", "x")


class TestGeometry:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_wall_intersection(self):
        wall = Wall(Point(5, 0), Point(5, 10))
        assert wall.intersects(Point(0, 5), Point(10, 5))
        assert not wall.intersects(Point(0, 5), Point(4, 5))

    def test_parallel_no_intersection(self):
        wall = Wall(Point(5, 0), Point(5, 10))
        assert not wall.intersects(Point(6, 0), Point(6, 10))

    def test_collinear_touching(self):
        wall = Wall(Point(0, 0), Point(10, 0))
        assert wall.intersects(Point(5, 0), Point(5, 5))

    def test_path_profile_los(self):
        profile = path_profile(Point(0, 0), Point(8, 0), ())
        assert profile.line_of_sight
        assert profile.obstruction_db == 0.0
        assert profile.distance_m == pytest.approx(8.0)

    def test_path_profile_walls_sum(self):
        walls = (
            Wall(Point(2, -1), Point(2, 1), Material.CONCRETE),
            Wall(Point(4, -1), Point(4, 1), Material.WOOD),
        )
        profile = path_profile(Point(0, 0), Point(8, 0), walls)
        assert profile.walls_crossed == 2
        assert profile.obstruction_db == pytest.approx(16.0)
        assert not profile.line_of_sight


class TestFloorPlans:
    def test_los_testbed_is_clear_8m(self):
        plan = los_testbed()
        link = plan.link("client_los", "ap")
        assert link.line_of_sight
        assert link.distance_m == pytest.approx(8.0)

    def test_paper_testbed_distances(self):
        """Paper Figure 6 caption: A ~7 m, B ~17 m from the AP."""
        plan = paper_testbed()
        assert plan.link("client_A", "ap").distance_m == pytest.approx(
            7.0, abs=0.5
        )
        assert plan.link("client_B", "ap").distance_m == pytest.approx(
            17.0, abs=0.5
        )

    def test_nlos_paths_obstructed(self):
        plan = paper_testbed()
        assert not plan.link("client_A", "ap").line_of_sight
        assert not plan.link("client_B", "ap").line_of_sight

    def test_b_more_attenuated_than_a_in_total(self):
        """B = farther + walls: total budget must exceed A's."""
        plan = paper_testbed()
        a = plan.link("client_A", "ap")
        b = plan.link("client_B", "ap")
        a_total = a.obstruction_db + 20 * np.log10(a.distance_m)
        b_total = b.obstruction_db + 20 * np.log10(b.distance_m)
        assert b_total > a_total

    def test_unknown_anchor(self):
        with pytest.raises(KeyError, match="available"):
            paper_testbed().anchor("nowhere")


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.run_all()
        assert fired == ["early", "late"]

    def test_fifo_ties(self):
        loop = EventLoop()
        fired = []
        for name in "abc":
            loop.schedule(1.0, lambda n=name: fired.append(n))
        loop.run_all()
        assert fired == ["a", "b", "c"]

    def test_run_until_stops(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(3.0, lambda: fired.append(3))
        loop.run_until(2.0)
        assert fired == [1]
        assert loop.now_s == 2.0

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append(1))
        loop.cancel(handle)
        loop.run_all()
        assert fired == []

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []

        def recurse():
            fired.append(loop.now_s)
            if len(fired) < 3:
                loop.schedule(1.0, recurse)

        loop.schedule(0.0, recurse)
        loop.run_all()
        assert fired == [0.0, 1.0, 2.0]

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.run_until(-1.0)

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)


class TestTrace:
    def test_csv_jsonl_roundtrip(self, tmp_path):
        from repro.core.session import MeasurementSession
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(1.0, seed=3)
        session = MeasurementSession(system, rng=np.random.default_rng(0))
        session.run_queries(3)
        writer = TraceWriter()
        for result in session.results:
            writer.record(result)

        csv_path = tmp_path / "trace.csv"
        jsonl_path = tmp_path / "trace.jsonl"
        assert writer.write_csv(csv_path) == 3
        assert writer.write_jsonl(jsonl_path) == 3

        loaded = TraceWriter.read_jsonl(jsonl_path)
        assert loaded == writer.records
        assert all(isinstance(r, TraceRecord) for r in loaded)
        assert csv_path.read_text().count("\n") == 4  # header + 3 rows
