"""Unit tests for scenario builders and multi-tag/traffic models."""

import numpy as np
import pytest

from repro.core.config import EncryptionMode
from repro.phy.mcs import ht_mcs
from repro.sim.network import TagPoller, TrafficStation
from repro.sim.scenario import build_system, los_scenario, nlos_scenario
from repro.phy.channel import ChannelGeometry


class TestLosScenario:
    def test_geometry(self):
        _, info = los_scenario(3.0)
        assert info.geometry.tx_tag_m == 3.0
        assert info.geometry.tag_rx_m == 5.0
        assert info.direct_obstruction_db == 0.0

    def test_picks_top_mcs_at_8m(self):
        """Paper Section 4.1: highest near-zero-loss rate; 8 m LOS -> MCS7."""
        _, info = los_scenario(4.0)
        assert info.mcs_index == 7
        assert info.tag_clock_hz == 50e3

    def test_tag_position_validated(self):
        with pytest.raises(ValueError):
            los_scenario(9.0)

    def test_seed_isolation(self):
        sys_a, _ = los_scenario(2.0, seed=1)
        sys_b, _ = los_scenario(2.0, seed=1)
        sys_a.load_tag_bits([1, 0] * 31)
        sys_b.load_tag_bits([1, 0] * 31)
        ra = sys_a.run_query()
        rb = sys_b.run_query()
        assert ra.block_ack.bitmap == rb.block_ack.bitmap


class TestNlosScenario:
    def test_locations(self):
        _, info_a = nlos_scenario("A")
        _, info_b = nlos_scenario("B")
        assert info_a.geometry.tx_rx_m == pytest.approx(7.0, abs=0.5)
        assert info_b.geometry.tx_rx_m == pytest.approx(17.0, abs=0.5)
        assert info_b.link_snr_db < info_a.link_snr_db

    def test_rate_adapts_down(self):
        _, info_a = nlos_scenario("A")
        _, info_b = nlos_scenario("B")
        assert info_b.mcs_index <= info_a.mcs_index

    def test_invalid_location(self):
        with pytest.raises(ValueError):
            nlos_scenario("C")


class TestBuildSystem:
    def test_encryption_passthrough(self):
        system, _ = build_system(
            ChannelGeometry.on_line(8.0, 2.0),
            encryption=EncryptionMode.WPA2_CCMP,
        )
        assert system.config.encryption is EncryptionMode.WPA2_CCMP

    def test_explicit_mcs_respected(self):
        _, info = build_system(
            ChannelGeometry.on_line(8.0, 2.0), mcs=ht_mcs(3)
        )
        assert info.mcs_index == 3

    def test_contenders_wire_contention_model(self):
        system, _ = build_system(
            ChannelGeometry.on_line(8.0, 2.0), n_contenders=5
        )
        assert system.contention is not None
        assert system.contention.n_contenders == 5

    def test_low_mcs_gets_slower_tag_clock(self):
        _, info = build_system(
            ChannelGeometry.on_line(8.0, 2.0), mcs=ht_mcs(0)
        )
        assert info.tag_clock_hz < 50e3


class TestTrafficStation:
    def test_activity(self):
        station = TrafficStation("s1", offered_load_fps=100, frame_airtime_s=1e-3)
        assert station.channel_activity == pytest.approx(0.1)

    def test_activity_capped(self):
        station = TrafficStation("s1", offered_load_fps=5000, frame_airtime_s=1e-3)
        assert station.channel_activity == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficStation("x", offered_load_fps=-1)
        with pytest.raises(ValueError):
            TrafficStation("x", frame_airtime_s=0)


class TestTagPoller:
    def test_polls_all_tags(self):
        systems = {
            "door": los_scenario(1.0, seed=1)[0],
            "window": los_scenario(6.0, seed=2)[0],
        }
        poller = TagPoller(systems, dwell_s=0.05, rng=np.random.default_rng(0))
        results = poller.run_rounds(2)
        assert {r.tag_name for r in results} == {"door", "window"}
        for result in results:
            assert result.stats.bits_sent > 0
            assert result.stats.ber < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            TagPoller({})
        with pytest.raises(ValueError):
            TagPoller({"a": los_scenario(1.0)[0]}, dwell_s=0.0)
        poller = TagPoller({"a": los_scenario(1.0)[0]}, dwell_s=0.05)
        with pytest.raises(ValueError):
            poller.run_rounds(0)


class TestApInitiated:
    """Paper Section 4: either device can initiate; both get the data."""

    def test_roles_swap_geometry(self):
        _, client_info = los_scenario(2.0, seed=5)
        _, ap_info = los_scenario(2.0, initiator="ap", seed=5)
        assert client_info.geometry.tx_tag_m == pytest.approx(2.0)
        assert ap_info.geometry.tx_tag_m == pytest.approx(6.0)
        assert ap_info.geometry.tag_rx_m == pytest.approx(2.0)

    def test_ber_comparable_either_direction(self):
        import numpy as np
        from repro.core.session import MeasurementSession

        bers = {}
        for initiator in ("client", "ap"):
            system, _ = los_scenario(3.0, initiator=initiator, seed=6)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(3)
            ).run_for(0.5)
            bers[initiator] = stats.ber
        assert bers["ap"] == pytest.approx(bers["client"], abs=0.03)

    def test_invalid_initiator(self):
        with pytest.raises(ValueError):
            los_scenario(2.0, initiator="tag")
