"""Unit tests for block-ACK decoding and the throughput model."""

import pytest

from repro.core.config import WiTagConfig
from repro.core.decoder import TagReader, bit_errors, raw_bits_from_block_ack
from repro.core.encoder import TagEncoder
from repro.core.errors import DecodeError
from repro.core.framing import TagMessage
from repro.core.query import QueryBuilder
from repro.core.system import DEFAULT_AP, DEFAULT_CLIENT
from repro.core.throughput import (
    analytic_throughput_bps,
    block_ack_airtime_s,
    query_cycle,
    subframe_airtime_s,
)
from repro.mac.block_ack import BlockAck
from repro.phy.mcs import ht_mcs


def make_query():
    return QueryBuilder(
        WiTagConfig(), client=DEFAULT_CLIENT, ap=DEFAULT_AP
    ).build()


def block_ack_for(query, payload_bits):
    """Build the block ACK an AP would send for given payload-bit fates."""
    bitmap = 0
    for i in range(query.n_trigger_subframes):
        bitmap |= 1 << i  # trigger subframes always decode
    for j, bit in enumerate(payload_bits):
        if bit:
            bitmap |= 1 << (query.n_trigger_subframes + j)
    return BlockAck(
        receiver=DEFAULT_CLIENT,
        transmitter=DEFAULT_AP,
        ssn=query.ssn,
        bitmap=bitmap,
    )


class TestRawBits:
    def test_extracts_payload_positions(self):
        query = make_query()
        bits = [1, 0] * 31
        ba = block_ack_for(query, bits)
        assert raw_bits_from_block_ack(ba, query) == bits

    def test_window_mismatch_rejected(self):
        query = make_query()
        ba = BlockAck(
            receiver=DEFAULT_CLIENT,
            transmitter=DEFAULT_AP,
            ssn=(query.ssn - 10) % 4096,
            bitmap=0,
        )
        with pytest.raises(DecodeError):
            raw_bits_from_block_ack(ba, query)


class TestTagReader:
    def test_recovers_framed_message(self):
        query = make_query()
        message = TagMessage(payload=b"hi")
        bits = message.to_bits()
        padded = bits + [1] * (62 - len(bits) % 62 if len(bits) % 62 else 0)
        reader = TagReader()
        for i in range(0, len(padded), 62):
            chunk = padded[i : i + 62]
            chunk = chunk + [1] * (62 - len(chunk))
            builder_query = make_query()
            reader.ingest(block_ack_for(builder_query, chunk), builder_query)
        messages = reader.messages()
        assert [m.payload for m in messages] == [b"hi"]

    def test_trim_bounds_buffer(self):
        reader = TagReader()
        query = make_query()
        for _ in range(5):
            reader.ingest(block_ack_for(query, [1] * 62), query)
        reader.trim(keep_bits=100)
        assert reader.stream_bits == 100

    def test_trim_validation(self):
        with pytest.raises(ValueError):
            TagReader().trim(-1)


class TestBitErrors:
    def test_count(self):
        assert bit_errors([1, 0, 1], [1, 1, 1]) == 1

    def test_mismatched_length(self):
        with pytest.raises(ValueError):
            bit_errors([1], [1, 0])


class TestThroughputModel:
    def test_block_ack_airtime(self):
        # 20 us preamble + 3 symbols at 24 Mb/s for 32 bytes = 32 us.
        assert block_ack_airtime_s() == pytest.approx(32e-6)

    def test_subframe_airtime_matches_clock(self):
        assert subframe_airtime_s(WiTagConfig()) == pytest.approx(20e-6)

    def test_headline_operating_point(self):
        """Paper Section 6.2: ~40 Kbps with 64-subframe queries."""
        rate = analytic_throughput_bps(WiTagConfig())
        assert 38e3 < rate < 45e3

    def test_cycle_breakdown_sums(self):
        cycle = query_cycle(WiTagConfig())
        assert cycle.total_s == pytest.approx(
            cycle.access_s + cycle.query_s + cycle.sifs_s + cycle.block_ack_s
        )
        assert cycle.payload_bits == 62

    def test_more_subframes_higher_rate(self):
        small = analytic_throughput_bps(WiTagConfig(n_subframes=16))
        large = analytic_throughput_bps(WiTagConfig(n_subframes=64))
        assert large > small

    def test_rate_insensitive_to_mcs_at_fixed_clock(self):
        """With subframes pinned to the tag clock, MCS mostly cancels out."""
        slow = analytic_throughput_bps(WiTagConfig(mcs=ht_mcs(3)))
        fast = analytic_throughput_bps(WiTagConfig(mcs=ht_mcs(7)))
        assert slow == pytest.approx(fast, rel=0.05)

    def test_slower_tag_clock_lower_rate(self):
        fast = analytic_throughput_bps(WiTagConfig(tag_clock_hz=50e3))
        slow = analytic_throughput_bps(WiTagConfig(tag_clock_hz=25e3))
        assert fast > 1.5 * slow

    def test_custom_access_time(self):
        contended = query_cycle(WiTagConfig(), access_s=2e-3)
        idle = query_cycle(WiTagConfig())
        assert contended.throughput_bps < idle.throughput_bps

    def test_block_ack_validation(self):
        with pytest.raises(ValueError):
            block_ack_airtime_s(0)
