"""End-to-end tests for the HTTP job service (in-process, port 0).

The acceptance path from the ISSUE: boot the server in-process, submit
the reference sweep over real HTTP, consume the SSE stream to
completion, and assert the served result is bit-identical to a direct
``run_sweep`` with the same spec and seed — plus the kill-and-restart
variant, which must resume from the engine checkpoint bit-identically.
"""

import asyncio
import json

import pytest

from repro.runner import SweepSpec
from repro.runner.workers import rng_probe
from repro.serve import (
    JobRequest,
    JobStore,
    ServeConfig,
    SweepService,
    execute_request,
    job_request_to_json,
    parse_events,
    result_to_json,
)

pytestmark = pytest.mark.serve

REFERENCE_REQUEST = JobRequest(
    kind="sweep",
    fn="rng_probe",
    sweep=SweepSpec(
        axes={"i": list(range(8))}, seed=2018, chunk_size=2
    ),
    n_workers=1,
)


async def http(port, method, path, body=None, headers=None):
    """Minimal one-shot HTTP client over asyncio streams."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = (
        json.dumps(body).encode("utf-8") if body is not None else b""
    )
    lines = [f"{method} {path} HTTP/1.1", "Host: test"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append(f"Content-Length: {len(payload)}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_blob, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(head_blob.split(b" ", 2)[1])
    return status, head_blob.decode("latin-1"), body_bytes


async def http_json(port, method, path, body=None, headers=None):
    status, _, body_bytes = await http(
        port, method, path, body=body, headers=headers
    )
    return status, json.loads(body_bytes)


class TestEndToEnd:
    def test_submit_stream_result_bit_identical(self, tmp_path):
        async def main():
            config = ServeConfig(
                port=0, slots=2, spill_dir=str(tmp_path / "spill")
            )
            service = SweepService(config)
            await service.start()
            try:
                port = service.port
                status, submitted = await http_json(
                    port,
                    "POST",
                    "/jobs",
                    body=job_request_to_json(REFERENCE_REQUEST),
                )
                assert status == 202
                job_id = submitted["id"]
                assert submitted["state"] == "queued"

                # consume the live SSE stream to completion
                status, head, stream = await http(
                    port, "GET", f"/jobs/{job_id}/events"
                )
                assert status == 200
                assert "text/event-stream" in head
                events = parse_events(stream)
                kinds = [e.event for e in events]
                assert kinds[0] == "state"
                assert kinds[-1] == "done"
                chunk_events = [
                    e for e in events if e.event == "chunk"
                ]
                assert len(chunk_events) == 4
                assert [
                    e.data["chunks_done"] for e in chunk_events
                ] == [1, 2, 3, 4]
                states = [
                    e.data["state"]
                    for e in events
                    if e.event == "state"
                ]
                assert states[-1] == "completed"
                # SSE ids are the per-job event ids, monotonically
                # increasing, so Last-Event-ID replay is well-defined.
                ids = [e.id for e in events if e.id is not None]
                assert ids == sorted(ids)

                # the served result is bit-identical to a direct run
                status, served = await http_json(
                    port, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                direct = result_to_json(
                    execute_request(REFERENCE_REQUEST)
                )
                assert served == direct

                # replay from a cursor: everything already seen is
                # skipped, the terminal frame still arrives
                last_seen = max(ids)
                status, _, tail = await http(
                    port,
                    "GET",
                    f"/jobs/{job_id}/events?after={last_seen}",
                )
                assert status == 200
                assert [e.event for e in parse_events(tail)] == [
                    "done"
                ]
                status, _, tail = await http(
                    port,
                    "GET",
                    f"/jobs/{job_id}/events",
                    headers={"Last-Event-ID": str(last_seen - 1)},
                )
                replayed = parse_events(tail)
                assert [e.id for e in replayed[:-1]] == [last_seen]
            finally:
                await service.stop()

        asyncio.run(main())

    def test_kill_and_restart_resumes_bit_identical(
        self, tmp_path, chaos
    ):
        """Server #1 dies mid-job; server #2 serves the exact result.

        The kill is simulated deterministically: the job is persisted
        queued (the same store path a POST takes), then its spec runs
        against the job's checkpoint file with a permanent injected
        crash — precisely the on-disk state a SIGKILLed server leaves.
        Server #2 boots on the spill dir, recovers the job, resumes
        from the checkpoint, and the result served over HTTP matches a
        never-interrupted direct run bit-for-bit.
        """
        spill = str(tmp_path / "spill")

        async def persist_queued_job():
            store = JobStore(spill)
            job = await store.submit(REFERENCE_REQUEST)
            return job.id, store.checkpoint_path(job.id)

        job_id, checkpoint = asyncio.run(persist_queued_job())
        chaos.partial_checkpoint(
            rng_probe,
            REFERENCE_REQUEST.sweep,
            checkpoint,
            crash_unit=5,
        )

        async def restart_and_serve():
            service = SweepService(
                ServeConfig(port=0, slots=1, spill_dir=spill)
            )
            await service.start()
            try:
                port = service.port
                status, summary = await http_json(
                    port, "GET", f"/jobs/{job_id}"
                )
                assert status == 200
                assert summary["recovered"]

                status, _, stream = await http(
                    port, "GET", f"/jobs/{job_id}/events"
                )
                assert status == 200
                events = parse_events(stream)
                resumed = [
                    e
                    for e in events
                    if e.event == "chunk" and e.data["resumed"]
                ]
                assert len(resumed) >= 2

                status, served = await http_json(
                    port, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                return served
            finally:
                await service.stop()

        served = asyncio.run(restart_and_serve())
        direct = result_to_json(execute_request(REFERENCE_REQUEST))
        assert served["points"] == direct["points"]
        assert served["resumed_chunks"] >= 2


class TestHttpContract:
    def test_endpoints_and_error_codes(self, tmp_path):
        async def main():
            service = SweepService(ServeConfig(port=0, slots=1))
            await service.start()
            try:
                port = service.port

                status, health = await http_json(
                    port, "GET", "/healthz"
                )
                assert status == 200
                assert health["ok"] is True
                assert "queue_depth" in health

                status, _, metrics = await http(
                    port, "GET", "/metrics"
                )
                assert status == 200
                text = metrics.decode("utf-8")
                assert "serve_jobs_submitted_total" in text
                assert "serve_queue_depth" in text

                status, listing = await http_json(
                    port, "GET", "/jobs"
                )
                assert status == 200 and listing == []

                status, error = await http_json(
                    port, "GET", "/jobs/job-999999"
                )
                assert status == 404
                status, error = await http_json(
                    port, "POST", "/jobs", body={"kind": "bogus"}
                )
                assert status == 400
                assert "kind" in error["error"]
                status, _, body = await http(
                    port, "DELETE", "/healthz"
                )
                assert status == 404
                status, _, body = await http(port, "PUT", "/jobs")
                assert status == 405

                # submit, then exercise result-not-ready and delete
                status, submitted = await http_json(
                    port,
                    "POST",
                    "/jobs",
                    body=job_request_to_json(REFERENCE_REQUEST),
                )
                assert status == 202
                job_id = submitted["id"]
                # stream to completion, then the lifecycle endpoints
                await http(port, "GET", f"/jobs/{job_id}/events")
                status, served = await http_json(
                    port, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                status, deleted = await http_json(
                    port, "DELETE", f"/jobs/{job_id}"
                )
                assert status == 200 and deleted["deleted"]
                status, _ = await http_json(
                    port, "GET", f"/jobs/{job_id}"
                )
                assert status == 404
            finally:
                await service.stop()

        asyncio.run(main())

    def test_cancel_via_delete_on_queued_job(self, tmp_path):
        async def main():
            # zero free slots is impossible (slots >= 1), so saturate
            # the single slot with one job and cancel the one behind it
            service = SweepService(ServeConfig(port=0, slots=1))
            await service.start()
            try:
                port = service.port
                body = job_request_to_json(REFERENCE_REQUEST)
                _, first = await http_json(
                    port, "POST", "/jobs", body=body
                )
                _, second = await http_json(
                    port, "POST", "/jobs", body=body
                )
                status, cancelled = await http_json(
                    port, "DELETE", f"/jobs/{second['id']}"
                )
                assert status in (200, 202)
                # drain the first job so shutdown is clean
                await http(
                    port, "GET", f"/jobs/{first['id']}/events"
                )
                status, summary = await http_json(
                    port, "GET", f"/jobs/{second['id']}"
                )
                assert summary["state"] == "cancelled"
            finally:
                await service.stop()

        asyncio.run(main())

    def test_result_conflict_while_not_completed(self):
        async def main():
            service = SweepService(ServeConfig(port=0, slots=1))
            await service.start()
            try:
                # into the HTTP layer's own store, but never enqueued:
                # the job deterministically stays queued, so /result
                # must answer 409, not a partial payload
                job = await service.store.submit(REFERENCE_REQUEST)
                status, error = await http_json(
                    service.port, "GET", f"/jobs/{job.id}/result"
                )
                assert status == 409
                assert job.id in error["error"]
            finally:
                await service.stop()

        asyncio.run(main())
