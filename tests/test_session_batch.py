"""Equivalence suite for the cross-query batched session engine.

The batch engine (:meth:`repro.core.system.WiTagSystem.run_queries_batch`
behind ``MeasurementSession(session_fast_path=True)``) runs whole chunks
of query cycles as one ``(n_queries, n_subframes)`` numpy computation.
Its contract is *bitwise* equality with the scalar per-query loop: every
simulation component owns its generator and the batch engine consumes
every stream in exact scalar order, so SessionStats, per-query BER
vectors, block-ACK bitmaps and generator end-states must all be
identical for any chunk size — and, through the parallel engine, for
any worker count.  With ``phy_exact_coding=True`` the equality extends
all the way down to the scalar per-subframe PHY reference.
"""

import functools
import pickle
import warnings

import numpy as np
import pytest

from repro.core.config import EncryptionMode
from repro.core.session import MeasurementSession, run_parallel_sessions
from repro.phy.channel import BackscatterChannel, ChannelGeometry, TagState
from repro.runner import SessionSpec, UnitContext
from repro.sim.scenario import build_system, los_scenario, nlos_scenario

QUERIES = 30


def _session(fast: bool, *, batch: int = 8, data_seed: int = 6,
             system=None, **scenario_kwargs) -> MeasurementSession:
    if system is None:
        system, _ = los_scenario(4.0, seed=5, **scenario_kwargs)
    return MeasurementSession(
        system,
        rng=np.random.default_rng(data_seed),
        session_fast_path=fast,
        batch_queries=batch,
    )


def _bitmaps(session: MeasurementSession) -> list[int]:
    return [r.block_ack.bitmap for r in session.results]


def _rng_states(session: MeasurementSession) -> list[dict]:
    system = session.system
    return [
        g.bit_generator.state
        for g in (
            session.rng,
            system.rng,
            system.tag.rng,
            system.error_model.rng,
            system.error_model.channel.rng,
        )
    ]


def _assert_sessions_identical(slow: MeasurementSession,
                               fast: MeasurementSession) -> None:
    """The full bitwise contract between two finished sessions."""
    assert len(slow.results) == len(fast.results)
    assert _bitmaps(slow) == _bitmaps(fast)
    assert slow.per_query_ber() == fast.per_query_ber()
    assert [r.cycle_s for r in slow.results] == [
        r.cycle_s for r in fast.results
    ]
    assert [r.detected for r in slow.results] == [
        r.detected for r in fast.results
    ]
    assert _rng_states(slow) == _rng_states(fast)


class TestBitwiseEquivalence:
    def test_run_queries_matches_per_query_loop(self):
        slow = _session(False)
        fast = _session(True)
        assert slow.run_queries(QUERIES) == fast.run_queries(QUERIES)
        _assert_sessions_identical(slow, fast)
        assert [r.query.psdu for r in slow.results] == [
            r.query.psdu for r in fast.results
        ]

    def test_exact_coding_matches_scalar_phy_reference(self):
        # With the interpolated coded-BER table bypassed, the batch
        # engine is bitwise equal to the per-subframe scalar reference.
        ref_system, _ = los_scenario(4.0, seed=5, phy_fast_path=False)
        slow = _session(False, system=ref_system)
        fast = _session(True)
        fast.system.phy_exact_coding = True
        assert slow.run_queries(QUERIES) == fast.run_queries(QUERIES)
        assert _bitmaps(slow) == _bitmaps(fast)
        assert slow.per_query_ber() == fast.per_query_ber()

    @pytest.mark.parametrize("batch", [1, 3, 29, 1000])
    def test_chunk_size_invariance(self, batch):
        reference = _session(False)
        chunked = _session(True, batch=batch)
        assert reference.run_queries(QUERIES) == chunked.run_queries(
            QUERIES
        )
        _assert_sessions_identical(reference, chunked)

    def test_run_for_matches_scalar_loop(self):
        # 0.5 s is ~340 cycles: the count both crosses many chunk
        # boundaries (batch_queries=16) and exercises the predicted
        # float-accumulation replay.
        slow = _session(False, batch=16)
        fast = _session(True, batch=16)
        assert slow.run_for(0.5) == fast.run_for(0.5)
        _assert_sessions_identical(slow, fast)

    def test_contention_falls_back_and_matches(self):
        # Random backoffs make cycle durations unpredictable: run_for
        # must take the scalar loop, run_queries still batches.
        slow = _session(False, n_contenders=3)
        fast = _session(True, n_contenders=3)
        assert fast._predicted_cycle_s() is None
        assert slow.run_queries(QUERIES) == fast.run_queries(QUERIES)
        _assert_sessions_identical(slow, fast)
        slow2 = _session(False, n_contenders=3)
        fast2 = _session(True, n_contenders=3)
        assert slow2.run_for(0.3) == fast2.run_for(0.3)

    def test_correlated_fading_matches(self):
        # The AR(1) fading process is sequential inside; the batch
        # engine must advance it by the same per-cycle dts.
        slow = _session(False, coherence_time_s=0.1)
        fast = _session(True, coherence_time_s=0.1)
        assert slow.run_queries(QUERIES) == fast.run_queries(QUERIES)
        _assert_sessions_identical(slow, fast)
        slow2 = _session(False, coherence_time_s=0.1)
        fast2 = _session(True, coherence_time_s=0.1)
        assert slow2.run_for(0.3) == fast2.run_for(0.3)
        _assert_sessions_identical(slow2, fast2)

    def test_encrypted_queries_match(self):
        # CCMP packet numbers must advance one build at a time: the
        # frame memo is bypassed and run_for cannot predict the count.
        kwargs = dict(
            encryption=EncryptionMode.WPA2_CCMP,
            encryption_key=bytes(range(16)),
        )
        slow = _session(False, **kwargs)
        fast = _session(True, **kwargs)
        assert fast._predicted_cycle_s() is None
        assert slow.run_queries(12) == fast.run_queries(12)
        _assert_sessions_identical(slow, fast)

    def test_missed_triggers_match(self):
        # A weak tag link (tag 10 m from the client) misses some
        # queries; detection outcomes and the zero-bit results they
        # produce must agree.
        def build(fast):
            system, _ = build_system(
                ChannelGeometry.on_line(20.0, 10.0), seed=5
            )
            return _session(fast, system=system)

        slow, fast = build(False), build(True)
        slow_stats = slow.run_queries(40)
        assert slow_stats == fast.run_queries(40)
        assert slow_stats.missed_triggers > 0
        _assert_sessions_identical(slow, fast)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rician_k_db": None, "tag_rician_k_db": None},
            {"rician_k_db": None},
            {"tag_rician_k_db": None},
        ],
        ids=["no-fading", "direct-static", "tag-static"],
    )
    def test_disabled_fading_variants_match(self, kwargs):
        slow = _session(False, **kwargs)
        fast = _session(True, **kwargs)
        assert slow.run_queries(15) == fast.run_queries(15)
        _assert_sessions_identical(slow, fast)

    def test_nlos_scenario_matches(self):
        def build(fast):
            system, _ = nlos_scenario("B", seed=5)
            return _session(fast, system=system)

        slow, fast = build(False), build(True)
        assert slow.run_queries(20) == fast.run_queries(20)
        _assert_sessions_identical(slow, fast)


@pytest.mark.adaptive
class TestScheduledSessionEquivalence:
    """Traffic-aware scheduling inherits the bitwise tier contract.

    Ride/skip decisions depend only on the traffic stream and predictor
    state, ridden-window activities drain through the CSMA FIFO in
    identical per-query order, and interference draws happen per ridden
    query in window order — so the scalar and batch session engines
    must agree bit for bit on decisions, results and stats.
    """

    @staticmethod
    def _scheduled(fast: bool):
        from repro.traffic import (
            HoltPredictor,
            OnOffTraffic,
            OpportunityScheduler,
            ScheduledSession,
        )

        system, _ = los_scenario(2.0, seed=5, n_contenders=4)
        session = MeasurementSession(
            system,
            rng=np.random.default_rng(6),
            session_fast_path=fast,
        )
        system.load_tag_bits([1, 0] * 600)
        return ScheduledSession(
            session=session,
            traffic=OnOffTraffic(
                rate_fps=600.0,
                mean_on_s=0.30,
                mean_off_s=0.45,
                rng=np.random.default_rng(11),
            ),
            scheduler=OpportunityScheduler(predictor=HoltPredictor()),
            interference_rng=np.random.default_rng(12),
        )

    def test_decisions_and_stats_match_across_session_tiers(self):
        slow = self._scheduled(False)
        fast = self._scheduled(True)
        assert slow.run_queries(80) == fast.run_queries(80)
        assert slow.decisions == fast.decisions
        assert slow.rides == fast.rides and slow.rides == len(slow.results)
        assert [r.received_bits for r in slow.results] == [
            r.received_bits for r in fast.results
        ]
        assert slow.per_query_ber() == fast.per_query_ber()
        assert slow._elapsed_s == fast._elapsed_s

    def test_adaptive_link_reports_match_across_session_tiers(self):
        # The full closed loop (scheduler + RS codec + redundancy
        # controller) through both session engines: round reports,
        # rung trajectories and energy ledgers must be identical.
        from repro.runner.workers import AdaptiveLinkSpec

        def link(fast):
            spec = AdaptiveLinkSpec(session_fast_path=fast)
            return spec(
                UnitContext(index=0, parameters={}, root_seed=21)
            )

        slow, fast = link(False), link(True)
        assert slow.run(3, 60) == fast.run(3, 60)
        assert slow.scheduled.decisions == fast.scheduled.decisions
        assert slow.controller.index == fast.controller.index

    @pytest.mark.runner
    def test_link_stats_independent_of_workers(self):
        from repro.runner import run_units
        from repro.runner.workers import AdaptiveLinkSpec, adaptive_link_stats

        fn = functools.partial(
            adaptive_link_stats,
            spec=AdaptiveLinkSpec(),
            rounds=2,
            windows_per_round=40,
        )
        units = [
            UnitContext(index=i, parameters={"unit": i}, root_seed=13)
            for i in range(3)
        ]
        serial = run_units(fn, list(units), seed=13, n_workers=1)
        parallel = run_units(
            fn, list(units), seed=13, n_workers=2, executor="process"
        )
        assert serial.values == parallel.values
        assert all(v["windows"] == 80 for v in serial.values)


class TestStageTimingsParity:
    """Satellite: observability must not change under the batch path."""

    def test_stage_structure_and_call_counts_identical(self):
        slow = _session(False)
        fast = _session(True)
        slow.run_queries(QUERIES)
        fast.run_queries(QUERIES)
        slow_t, fast_t = slow.stage_timings(), fast.stage_timings()
        assert set(slow_t) == set(fast_t) == {"system", "error_model"}
        for group in slow_t:
            assert set(slow_t[group]) == set(fast_t[group])
            for stage in slow_t[group]:
                assert (
                    slow_t[group][stage]["calls"]
                    == fast_t[group][stage]["calls"]
                ), (group, stage)
                assert fast_t[group][stage]["seconds"] >= 0.0
        assert slow.per_query_ber() == fast.per_query_ber()

    def test_per_call_us(self):
        fast = _session(True)
        fast.run_queries(5)
        counters = fast.system.counters
        assert counters.per_call_us("phy-decode") >= 0.0
        assert counters.per_call_us("never-recorded") == 0.0


class TestTelemetryEquivalence:
    """Telemetry is execution-tier invariant: all three tiers emit
    identical metric snapshots and identical trace streams for the same
    seed (with ``phy_exact_coding`` pinning the fast tiers to the scalar
    PHY reference)."""

    def _instrumented(self, tmp_path, name, *, fast, phy_fast):
        from repro.obs import Telemetry, TraceWriter

        telemetry = Telemetry(
            writer=TraceWriter(str(tmp_path / f"{name}.jsonl"))
        )
        session = _session(fast, phy_fast_path=phy_fast)
        if phy_fast:
            session.system.phy_exact_coding = True
        telemetry.attach(session.system)
        stats = session.run_queries(QUERIES)
        telemetry.close()
        return telemetry, stats, tmp_path / f"{name}.jsonl"

    @staticmethod
    def _records(path):
        from repro.obs import read_trace

        queries, sessions = [], []
        for record in read_trace(str(path), validate=True):
            if record["kind"] == "query":
                queries.append(record)
            elif record["kind"] == "session":
                # Wall-clock stage timings legitimately differ per run.
                sessions.append(
                    {
                        k: v
                        for k, v in record.items()
                        if k != "stage_timings"
                    }
                )
        return queries, sessions

    def test_all_tiers_emit_identical_telemetry(self, tmp_path):
        scalar = self._instrumented(
            tmp_path, "scalar", fast=False, phy_fast=False
        )
        vector = self._instrumented(
            tmp_path, "vector", fast=False, phy_fast=True
        )
        batch = self._instrumented(
            tmp_path, "batch", fast=True, phy_fast=True
        )
        assert scalar[1] == vector[1] == batch[1]
        scalar_snap = scalar[0].metrics_snapshot()
        assert scalar_snap == vector[0].metrics_snapshot()
        assert scalar_snap == batch[0].metrics_snapshot()
        scalar_trace = self._records(scalar[2])
        assert scalar_trace == self._records(vector[2])
        assert scalar_trace == self._records(batch[2])
        queries, sessions = scalar_trace
        assert len(queries) == QUERIES
        assert len(sessions) == 1

    def test_batch_scoreboard_counters_match_scalar(self, tmp_path):
        # The batch engine replays only each chunk's final query onto
        # the real scoreboard; the bulk hook must account for the rest.
        from repro.obs import Telemetry

        def run(fast):
            telemetry = Telemetry()
            session = _session(fast)
            telemetry.attach(session.system)
            session.run_queries(QUERIES)
            snap = telemetry.metrics_snapshot()["metrics"]
            return {
                name: snap[name]["series"][0]["value"]
                for name in (
                    "mac_scoreboard_records_total",
                    "mac_scoreboard_resets_total",
                )
            }

        assert run(False) == run(True)


@pytest.mark.runner
class TestWorkerInvariance:
    def test_results_independent_of_workers_and_fast_path(self):
        spec = SessionSpec(distance_m=4.0, batch_queries=7)
        outcomes = []
        for n_workers, fast in (
            (1, True),
            (2, True),
            (1, False),
            (2, False),
        ):
            result = run_parallel_sessions(
                spec,
                3,
                queries=20,
                seed=9,
                n_workers=n_workers,
                session_fast_path=fast,
            )
            outcomes.append(result.values)
        first = outcomes[0]
        assert all(values == first for values in outcomes[1:])

    def test_session_spec_is_picklable_and_validates(self):
        spec = SessionSpec(kind="nlos", location="B")
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(ValueError):
            SessionSpec(kind="underwater")

    def test_small_batch_falls_back_to_serial_with_warning(self):
        # Satellite bugfix: queries < chunk_size used to raise inside
        # the engine; now it warns and runs serially, like run_units.
        from repro.core.session import reset_small_query_warnings

        reset_small_query_warnings()
        with pytest.warns(RuntimeWarning, match="chunk_size"):
            result = run_parallel_sessions(
                SessionSpec(),
                2,
                queries=2,
                seed=3,
                n_workers=2,
                chunk_size=5,
            )
        assert result.executor == "serial"
        assert len(result.values) == 2


class TestCacheInvalidationFromSession:
    """Satellite: mutating geometry mid-run must propagate everywhere."""

    def test_mid_run_mutation_keeps_paths_identical(self):
        slow = _session(False)
        fast = _session(True)
        control = _session(True)
        for session in (slow, fast, control):
            session.run_queries(10)

        def mutate(session):
            channel = session.system.error_model.channel
            # Weaken the tag-reflected path in place — the kind of
            # derived-attribute mutation invalidate_caches() exists for.
            # (Corrupted subframes start surviving, so the change is
            # observable in the bitmaps, unlike a strengthening, which
            # only deepens already-certain failures.)
            channel._h_tag_los = channel._h_tag_los * 0.02
            channel.invalidate_caches()

        mutate(slow)
        mutate(fast)
        slow.run_queries(10)
        fast.run_queries(10)
        control.run_queries(10)
        _assert_sessions_identical(slow, fast)
        # The mutation visibly changed the physics of the second half
        # (weaker reflection -> different decode outcomes) — i.e. the
        # batch engine saw the new geometry, not a stale cache.
        assert _bitmaps(fast)[10:] != _bitmaps(control)[10:]
        assert _bitmaps(fast)[:10] == _bitmaps(control)[:10]

    def test_invalidate_refreshes_static_vectors_via_session(self):
        session = _session(True)
        session.run_queries(3)
        channel = session.system.error_model.channel
        before = channel.channel_vector(TagState.ABSORB)
        channel.invalidate_caches()
        after = channel.channel_vector(TagState.ABSORB)
        assert before is not after
        np.testing.assert_array_equal(before, after)


class TestBuilderMemo:
    def test_build_fast_matches_build_across_memo_cycle(self):
        # Unencrypted frames are pure functions of the SSN, which wraps
        # through a 64-value cycle for the default 64-subframe A-MPDU:
        # 130 builds revisit every memo entry at least once.
        ref_system, _ = los_scenario(4.0, seed=5)
        memo_system, _ = los_scenario(4.0, seed=5)
        for _ in range(130):
            expected = ref_system.builder.build()
            got = memo_system.builder.build_fast()
            assert got.psdu == expected.psdu
            assert got.mpdus == expected.mpdus
            assert got.ssn == expected.ssn
            assert got.airtime_s == expected.airtime_s
        assert (
            memo_system.builder.sequence.next_value
            == ref_system.builder.sequence.next_value
        )

    def test_peek_airtime_does_not_consume_sequence(self):
        system, _ = los_scenario(4.0, seed=5)
        before = system.builder.sequence.next_value
        airtime = system.builder.peek_airtime_s()
        assert system.builder.sequence.next_value == before
        assert airtime == system.builder.build().airtime_s


class TestFadingBatch:
    @pytest.mark.parametrize(
        "k_direct,k_tag",
        [(15.0, 5.0), (None, 5.0), (15.0, None), (None, None)],
    )
    def test_sample_fading_batch_matches_scalar_order(
        self, k_direct, k_tag
    ):
        def make():
            return BackscatterChannel(
                ChannelGeometry.on_line(8.0, 3.0),
                rician_k_db=k_direct,
                tag_rician_k_db=k_tag,
                rng=np.random.default_rng(17),
            )

        scalar, batch = make(), make()
        expected = []
        for _ in range(9):
            expected.append(
                (scalar.sample_direct_fading(), scalar.sample_tag_fading())
            )
        direct, tag = batch.sample_fading_batch(9)
        assert direct.tolist() == [d for d, _ in expected]
        assert tag.tolist() == [t for _, t in expected]
        assert (
            scalar.rng.bit_generator.state
            == batch.rng.bit_generator.state
        )


class TestTagFastPath:
    def test_process_query_fast_matches_reference(self):
        def make():
            system, _ = los_scenario(4.0, seed=5)
            system.load_tag_bits([1, 0] * 31)
            return system

        ref, fast = make(), make()
        for _ in range(5):
            frame = ref.builder.build()
            fast.builder.build()
            from repro.core.system import QueryObservation

            observation = QueryObservation(
                n_subframes=frame.n_subframes,
                n_trigger_subframes=frame.n_trigger_subframes,
                subframe_s=frame.mean_subframe_s,
                rx_power_dbm=ref._rx_at_tag_dbm,
                temperature_c=ref.temperature_c,
            )
            expected = ref.tag.process_query(observation)
            got = fast.tag.process_query_fast(observation)
            assert got == expected
        assert (
            ref.tag.rng.bit_generator.state
            == fast.tag.rng.bit_generator.state
        )
