"""Unit tests for the tag FSM, power budgets and RF harvesting."""

import numpy as np
import pytest

from repro.phy.channel import TagState
from repro.tag.harvester import RfHarvester
from repro.tag.power import (
    PowerBudget,
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    witag_budget,
)
from repro.tag.state_machine import (
    QueryObservation,
    TagPhase,
    TagStateMachine,
)


def make_query(rx_dbm=-25.0, n_subframes=10, n_trigger=2):
    return QueryObservation(
        n_subframes=n_subframes,
        n_trigger_subframes=n_trigger,
        subframe_s=20e-6,
        rx_power_dbm=rx_dbm,
    )


class TestQueryObservation:
    def test_payload_count(self):
        assert make_query().n_payload_subframes == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryObservation(0, 0, 20e-6, -25.0)
        with pytest.raises(ValueError):
            QueryObservation(4, 4, 20e-6, -25.0)
        with pytest.raises(ValueError):
            QueryObservation(4, 0, 0.0, -25.0)


class TestTagStateMachine:
    def test_transmits_queued_bits(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1, 0, 1, 0])
        tx = fsm.process_query(make_query())
        assert tx.detected
        assert tx.bits_loaded == (1, 0, 1, 0)
        # Trigger subframes idle; then bit states; trailing idle.
        assert tx.states[0] is TagState.REFLECT_0
        assert tx.states[2] is TagState.REFLECT_0  # bit 1
        assert tx.states[3] is TagState.REFLECT_180  # bit 0

    def test_queue_consumed_fifo(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1, 1, 0])
        fsm.process_query(make_query())
        assert fsm.pending_bits == 0

    def test_partial_consumption(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1] * 20)
        tx = fsm.process_query(make_query())  # 8 payload slots
        assert len(tx.bits_loaded) == 8
        assert fsm.pending_bits == 12

    def test_missed_trigger_keeps_bits(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1, 0, 1])
        tx = fsm.process_query(make_query(rx_dbm=-80.0))
        assert not tx.detected
        assert tx.bits_loaded == ()
        assert fsm.pending_bits == 3
        # An undetected query leaves the tag idle throughout.
        assert all(s is TagState.REFLECT_0 for s in tx.states)

    def test_unused_slots_idle(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([0, 0])
        tx = fsm.process_query(make_query())
        assert all(s is TagState.REFLECT_0 for s in tx.states[4:])

    def test_alignment_flags_per_bit(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1, 0, 1, 0, 1])
        tx = fsm.process_query(make_query())
        assert len(tx.toggles_aligned) == 5

    def test_bad_bits_rejected(self):
        fsm = TagStateMachine()
        with pytest.raises(ValueError):
            fsm.load_bits([2])

    def test_returns_to_idle(self):
        fsm = TagStateMachine(rng=np.random.default_rng(0))
        fsm.load_bits([1])
        fsm.process_query(make_query())
        assert fsm.phase is TagPhase.IDLE


class TestPowerBudgets:
    def test_witag_few_microwatts(self):
        """Paper Section 7: WiTAG's budget is a few microwatts."""
        budget = witag_budget()
        assert budget.total_uw < 10.0
        assert budget.battery_free_feasible

    def test_precision_budget_not_battery_free(self):
        """Paper Section 7: > 1 mW renders battery-free impractical."""
        budget = channel_shift_precision_budget()
        assert budget.total_mw > 1.0
        assert not budget.battery_free_feasible

    def test_witag_much_lower_than_channel_shift(self):
        assert (
            channel_shift_ring_budget().total_uw
            > 5 * witag_budget().total_uw
        )

    def test_components_itemised(self):
        budget = witag_budget()
        assert "oscillator" in budget.components
        assert budget.total_uw == pytest.approx(
            sum(budget.components.values())
        )

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            PowerBudget("bad", {"x": -1.0})


class TestHarvester:
    def test_nothing_below_sensitivity(self):
        assert RfHarvester().harvested_uw(-30.0) == 0.0

    def test_harvest_scales_with_input(self):
        h = RfHarvester()
        assert h.harvested_uw(0.0) > h.harvested_uw(-10.0) > 0.0

    def test_duty_cycle_scales(self):
        h = RfHarvester()
        assert h.harvested_uw(0.0, duty_cycle=0.5) == pytest.approx(
            h.harvested_uw(0.0) / 2
        )

    def test_witag_sustainable_at_modest_input(self):
        h = RfHarvester()
        level = h.min_input_dbm(witag_budget())
        assert level is not None
        assert level < -5.0  # sustained well below 0 dBm input

    def test_precision_needs_much_more(self):
        h = RfHarvester()
        witag_level = h.min_input_dbm(witag_budget())
        precision_level = h.min_input_dbm(channel_shift_precision_budget())
        assert precision_level is None or precision_level > witag_level + 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RfHarvester(peak_efficiency=0.0)
        with pytest.raises(ValueError):
            RfHarvester(sensitivity_dbm=-5.0, half_efficiency_dbm=-10.0)
        with pytest.raises(ValueError):
            RfHarvester().harvested_uw(0.0, duty_cycle=2.0)
