"""Unit tests for NAV/duration, rate control, pcap export and energy sim."""

import numpy as np
import pytest

from repro.core.rate_control import QueryRateController
from repro.mac.duration import (
    MAX_DURATION_US,
    Nav,
    duration_field_us,
    query_duration_us,
)
from repro.sim.pcap import LINKTYPE_IEEE802_11, PcapWriter, read_pcap
from repro.sim.scenario import los_scenario
from repro.tag.energy import EnergySimulator, StorageCapacitor
from repro.tag.power import channel_shift_precision_budget


class TestDurationNav:
    def test_duration_rounds_up(self):
        assert duration_field_us(48.2e-6) == 49

    def test_duration_clipped(self):
        assert duration_field_us(1.0) == MAX_DURATION_US

    def test_query_duration_covers_response(self):
        # SIFS 10 us + 32 us block ACK -> 42 us.
        assert query_duration_us(10e-6, 32e-6) == 42

    def test_nav_tracks_longest(self):
        nav = Nav()
        nav.observe(0.0, 100)
        nav.observe(10e-6, 20)  # shorter: must not shrink the NAV
        assert nav.busy_until_s == pytest.approx(100e-6)

    def test_nav_idle_transitions(self):
        nav = Nav()
        nav.observe(0.0, 50)
        assert not nav.idle_at(10e-6)
        assert nav.idle_at(51e-6)
        assert nav.remaining_s(20e-6) == pytest.approx(30e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            duration_field_us(-1.0)
        with pytest.raises(ValueError):
            Nav().observe(0.0, MAX_DURATION_US + 1)


class TestRateController:
    def test_downgrades_on_loss(self):
        controller = QueryRateController()
        assert controller.observe_benign_loss(100, 1000) == 6
        assert controller.downgrades == 1

    def test_holds_on_clean(self):
        controller = QueryRateController()
        for _ in range(10):
            controller.observe_benign_loss(0, 1000)
        assert controller.mcs_index == 7

    def test_probes_up_after_clean_streak(self):
        controller = QueryRateController(
            mcs_index=5, probe_after_clean=3
        )
        for _ in range(3):
            controller.observe_benign_loss(0, 1000)
        assert controller.mcs_index == 6

    def test_never_below_zero(self):
        controller = QueryRateController(mcs_index=0)
        controller.observe_benign_loss(500, 1000)
        assert controller.mcs_index == 0

    def test_never_above_max(self):
        controller = QueryRateController(
            mcs_index=7, probe_after_clean=1
        )
        controller.observe_benign_loss(0, 1000)
        assert controller.mcs_index == 7

    def test_settles_at_channel_capability(self):
        """Settles to the highest MCS the 'channel' sustains (here: 4)."""
        controller = QueryRateController()

        def oracle(index: int) -> float:
            return 0.0 if index <= 4 else 0.5

        assert controller.settle(oracle) == 4

    def test_zero_total_is_noop(self):
        controller = QueryRateController()
        assert controller.observe_benign_loss(0, 0) == 7
        assert controller.observations == 0

    def test_mcs_object(self):
        assert QueryRateController(mcs_index=3).mcs.index == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryRateController(mcs_index=9)
        with pytest.raises(ValueError):
            QueryRateController(downgrade_threshold=0.0)
        with pytest.raises(ValueError):
            QueryRateController().observe_benign_loss(5, 3)


class TestPcap:
    def test_roundtrip(self, tmp_path):
        writer = PcapWriter()
        writer.add_frame(1.5, b"\x88\x00" + bytes(30))
        writer.add_frame(1.0, b"\x94\x00" + bytes(30))
        path = tmp_path / "trace.pcap"
        size = writer.write(path)
        assert size == 24 + 2 * (16 + 32)
        records = read_pcap(path)
        # Sorted by timestamp on write.
        assert [round(t, 6) for t, _ in records] == [1.0, 1.5]

    def test_header_linktype(self, tmp_path):
        writer = PcapWriter()
        writer.add_frame(0.0, b"x")
        path = tmp_path / "t.pcap"
        writer.write(path)
        raw = path.read_bytes()
        assert int.from_bytes(raw[20:24], "little") == LINKTYPE_IEEE802_11

    def test_query_exchange_recorded(self, tmp_path):
        system, _ = los_scenario(1.0, seed=44)
        system.load_tag_bits([1, 0] * 31)
        result = system.run_query()
        writer = PcapWriter()
        end = writer.add_query_result(0.0, result)
        assert end == pytest.approx(result.cycle_s)
        assert writer.n_frames == 65  # 64 MPDUs + 1 block ACK
        path = tmp_path / "witag.pcap"
        writer.write(path)
        records = read_pcap(path)
        assert len(records) == 65
        # The last frame is the 32-byte block ACK.
        assert len(records[-1][1]) == 32

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError, match="magic"):
            read_pcap(path)

    def test_validation(self):
        writer = PcapWriter()
        with pytest.raises(ValueError):
            writer.add_frame(0.0, b"")
        with pytest.raises(ValueError):
            writer.add_frame(-1.0, b"x")


class TestEnergy:
    def test_capacitor_energy(self):
        cap = StorageCapacitor(
            capacitance_f=100e-6, max_voltage_v=2.0, min_voltage_v=1.0
        )
        assert cap.usable_energy_j == pytest.approx(150e-6)

    def test_harvest_surplus_charges(self):
        sim = EnergySimulator()
        sim.step(10.0, active=True, rf_dbm=None)  # drain some
        low = sim.energy_j
        sim.step(1.0, active=True, rf_dbm=0.0)  # strong illumination
        assert sim.energy_j > low

    def test_no_rf_eventually_dies(self):
        sim = EnergySimulator()
        alive = sim.run_schedule(
            query_rf_dbm=-40.0,  # below harvester sensitivity
            query_burst_s=1.0,
            idle_gap_s=1.0,
            n_cycles=20000,
        )
        assert not alive

    def test_sustained_at_strong_rf(self):
        sim = EnergySimulator()
        alive = sim.run_schedule(
            query_rf_dbm=-10.0,
            query_burst_s=0.5,
            idle_gap_s=0.5,
            n_cycles=200,
        )
        assert alive

    def test_min_duty_cycle(self):
        sim = EnergySimulator()
        duty = sim.min_sustainable_duty_cycle(-10.0)
        assert duty is not None
        assert 0.0 < duty < 0.2

    def test_min_duty_none_when_unharvestable(self):
        sim = EnergySimulator(budget=channel_shift_precision_budget())
        assert sim.min_sustainable_duty_cycle(-10.0) is None

    def test_schedule_at_min_duty_survives(self):
        sim = EnergySimulator()
        duty = sim.min_sustainable_duty_cycle(-10.0)
        burst = 0.1
        gap = burst * (1.0 - duty * 1.2) / (duty * 1.2)  # 20% margin
        assert sim.run_schedule(
            query_rf_dbm=-10.0,
            query_burst_s=burst,
            idle_gap_s=gap,
            n_cycles=500,
        )

    def test_energy_clamped_to_capacity(self):
        sim = EnergySimulator()
        sim.step(100.0, active=False, rf_dbm=0.0)
        assert sim.energy_j == sim.capacitor.usable_energy_j

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageCapacitor(capacitance_f=0.0)
        with pytest.raises(ValueError):
            StorageCapacitor(min_voltage_v=3.0, max_voltage_v=2.0)
        with pytest.raises(ValueError):
            EnergySimulator(sleep_power_uw=-1.0)
        sim = EnergySimulator()
        with pytest.raises(ValueError):
            sim.step(-1.0, active=True, rf_dbm=None)
        with pytest.raises(ValueError):
            sim.run_schedule(
                query_rf_dbm=0.0, query_burst_s=0.0, idle_gap_s=1.0,
                n_cycles=1,
            )


class TestAdaptiveSession:
    def test_downshifts_on_weak_link(self):
        from repro.core.rate_control import AdaptiveSession
        from repro.phy.channel import ChannelGeometry
        from repro.phy.mcs import ht_mcs
        from repro.sim.scenario import build_system

        system, info = build_system(
            ChannelGeometry.on_line(8.0, 2.0),
            direct_obstruction_db=30.0,  # SNR ~22 dB: too weak for MCS7
            mcs=ht_mcs(7),
            seed=3,
        )
        session = AdaptiveSession(
            system, QueryRateController(probe_after_clean=500)
        )
        session.run_queries(60)
        assert session.controller.mcs_index < 7
        assert session.rate_changes
        # And the link is clean at the settled rate: the last queries show
        # no trigger losses.
        tail = session.run_queries(20)
        lost = sum(
            1
            for r in tail
            for ok in r.block_ack.bits(r.query.n_trigger_subframes)
            if not ok
        )
        assert lost <= 2

    def test_holds_on_strong_link(self):
        from repro.core.rate_control import AdaptiveSession
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(2.0, seed=4)
        session = AdaptiveSession(system)
        session.run_queries(30)
        assert session.controller.mcs_index == 7
        assert session.rate_changes == []

    def test_deep_downshift_slows_tag_clock(self):
        from repro.core.rate_control import AdaptiveSession
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(2.0, seed=5)
        session = AdaptiveSession(system)
        session._apply_mcs(0)  # MCS0 cannot fit a subframe at 50 kHz
        assert system.config.tag_clock_hz < 50e3
        # System still runs after the reconfiguration.
        result = system.run_query()
        assert result.block_ack is not None

    def test_count_validated(self):
        from repro.core.rate_control import AdaptiveSession
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(2.0, seed=6)
        with pytest.raises(ValueError):
            AdaptiveSession(system).run_queries(0)
