"""Unit tests for the envelope detector, trigger detection and timing."""

import numpy as np
import pytest

from repro.tag.envelope_detector import (
    Comparator,
    EnvelopeDetector,
    TriggerDetector,
)
from repro.tag.oscillator import ring_oscillator_20mhz, witag_crystal_50khz
from repro.tag.timing import TimingModel


class TestEnvelopeDetector:
    def test_sensitivity_floor(self):
        det = EnvelopeDetector(sensitivity_dbm=-46.0)
        assert det.in_range(-30.0)
        assert not det.in_range(-50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvelopeDetector(output_noise_mv=0.0)
        with pytest.raises(ValueError):
            EnvelopeDetector(slope_mv_per_db=-1.0)


class TestTriggerDetector:
    def test_detection_reliable_at_strong_signal(self):
        det = TriggerDetector()
        assert det.query_detection_probability(-20.0) > 0.999

    def test_no_detection_below_sensitivity(self):
        det = TriggerDetector()
        assert det.query_detection_probability(-60.0) == 0.0

    def test_more_trigger_subframes_less_likely_complete(self):
        weak = TriggerDetector(pattern_contrast_db=1.2)
        strong = TriggerDetector(pattern_contrast_db=1.2, n_trigger_subframes=8)
        p_weak = weak.query_detection_probability(-41.0)
        assert 0 < p_weak < 1
        assert strong.query_detection_probability(-41.0) < p_weak

    def test_stronger_signal_detects_better(self):
        det = TriggerDetector(pattern_contrast_db=1.2)
        assert det.query_detection_probability(
            -30.0
        ) > det.query_detection_probability(-42.0)

    def test_contrast_improves_detection(self):
        low = TriggerDetector(pattern_contrast_db=1.0)
        high = TriggerDetector(pattern_contrast_db=6.0)
        assert high.edge_detection_probability(
            -42.0
        ) > low.edge_detection_probability(-42.0)

    def test_detect_draws(self):
        det = TriggerDetector()
        rng = np.random.default_rng(0)
        assert det.detect(-20.0, rng) is True
        assert det.detect(-60.0, rng) is False

    def test_period_estimate_near_truth(self):
        det = TriggerDetector()
        rng = np.random.default_rng(1)
        estimates = [
            det.subframe_period_estimate_s(20e-6, -25.0, rng)
            for _ in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(20e-6, rel=0.02)
        assert np.std(estimates) < 1.5e-6

    def test_period_estimate_requires_signal(self):
        det = TriggerDetector()
        with pytest.raises(ValueError):
            det.subframe_period_estimate_s(
                20e-6, -80.0, np.random.default_rng(0)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerDetector(n_trigger_subframes=0)
        with pytest.raises(ValueError):
            TriggerDetector(pattern_contrast_db=0.0)


class TestTimingModel:
    def test_matched_clock_one_cycle_per_subframe(self):
        tm = TimingModel(witag_crystal_50khz(), subframe_s=20e-6)
        assert tm.cycles_per_subframe == 1
        assert tm.realized_period_s == pytest.approx(20e-6, rel=1e-4)

    def test_crystal_low_miss_probability(self):
        tm = TimingModel(witag_crystal_50khz(), subframe_s=20e-6)
        assert tm.misalignment_probability(63) < 0.01

    def test_ring_oscillator_fails_when_hot(self):
        """Paper Section 7: temperature drift destroys timing."""
        tm = TimingModel(
            ring_oscillator_20mhz(), subframe_s=20e-6, temperature_c=30.0
        )
        assert tm.misalignment_probability(30) > 0.9

    def test_ring_oscillator_fine_at_reference_temp(self):
        tm = TimingModel(
            ring_oscillator_20mhz(), subframe_s=20e-6, temperature_c=25.0
        )
        assert tm.misalignment_probability(30) < 0.05

    def test_misalignment_grows_with_index_under_drift(self):
        tm = TimingModel(
            ring_oscillator_20mhz(), subframe_s=20e-6, temperature_c=26.0
        )
        assert abs(tm.mean_misalignment_s(40)) > abs(tm.mean_misalignment_s(4))

    def test_period_estimate_rounding(self):
        # A 19.7 us estimate still rounds to 1 cycle of the 50 kHz clock.
        tm = TimingModel(
            witag_crystal_50khz(),
            subframe_s=20e-6,
            period_estimate_s=19.7e-6,
        )
        assert tm.cycles_per_subframe == 1

    def test_sampling_matches_probability(self):
        tm = TimingModel(
            witag_crystal_50khz(), subframe_s=20e-6, sync_jitter_s=1.5e-6
        )
        rng = np.random.default_rng(3)
        misses = sum(not tm.aligned(10, rng) for _ in range(4000)) / 4000
        assert misses == pytest.approx(
            tm.misalignment_probability(10), abs=0.02
        )

    def test_max_reliable_subframes(self):
        crystal = TimingModel(witag_crystal_50khz(), subframe_s=20e-6)
        hot_ring = TimingModel(
            ring_oscillator_20mhz(), subframe_s=20e-6, temperature_c=32.0
        )
        assert crystal.max_reliable_subframes() >= 64
        assert hot_ring.max_reliable_subframes() < 64

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingModel(witag_crystal_50khz(), subframe_s=0.0)
        with pytest.raises(ValueError):
            TimingModel(witag_crystal_50khz(), subframe_s=1e-6, guard_s=0.0)
        tm = TimingModel(witag_crystal_50khz(), subframe_s=20e-6)
        with pytest.raises(ValueError):
            tm.mean_misalignment_s(-1)
        with pytest.raises(ValueError):
            tm.max_reliable_subframes(target_error=0.0)
