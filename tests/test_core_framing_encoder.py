"""Unit tests for tag-message framing and the encoder layer."""

import pytest

from repro.core.encoder import LineCode, TagEncoder
from repro.core.errors import DecodeError, FramingError
from repro.core.fec import HammingCode, RepetitionCode
from repro.core.framing import (
    PREAMBLE_BYTE,
    TagMessage,
    bits_to_bytes,
    bytes_to_bits,
    deframe,
    scan_for_frames,
)


class TestBitPacking:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits_to_bytes([0, 0, 0, 0, 0, 0, 0, 1]) == b"\x01"

    def test_misaligned_rejected(self):
        with pytest.raises(FramingError):
            bits_to_bytes([1, 0, 1])

    def test_bad_bit_values(self):
        with pytest.raises(FramingError):
            bits_to_bytes([2] * 8)


class TestFraming:
    def test_roundtrip(self):
        message = TagMessage(payload=b"sensor:23.5C")
        assert deframe(message.to_bits()).payload == b"sensor:23.5C"

    def test_empty_payload(self):
        message = TagMessage(payload=b"")
        assert deframe(message.to_bits()).payload == b""

    def test_framed_bits_accounting(self):
        message = TagMessage(payload=b"abc")
        assert len(message.to_bits()) == message.framed_bits == 8 * 7

    def test_preamble_present(self):
        bits = TagMessage(payload=b"x").to_bits()
        assert bits_to_bytes(bits[:8])[0] == PREAMBLE_BYTE

    def test_crc_detects_corruption(self):
        bits = TagMessage(payload=b"hello").to_bits()
        bits[20] ^= 1
        with pytest.raises(FramingError):
            deframe(bits)

    def test_bad_preamble(self):
        bits = TagMessage(payload=b"x").to_bits()
        bits[0] ^= 1
        with pytest.raises(FramingError, match="preamble"):
            deframe(bits)

    def test_truncated(self):
        bits = TagMessage(payload=b"hello world").to_bits()
        with pytest.raises(FramingError):
            deframe(bits[:40])

    def test_oversize_payload(self):
        with pytest.raises(FramingError):
            TagMessage(payload=bytes(256))


class TestScanForFrames:
    def test_finds_frame_after_idle(self):
        idle = [1] * 37  # idle tag reads as ones
        bits = idle + TagMessage(payload=b"A").to_bits() + [1] * 10
        messages = scan_for_frames(bits)
        assert [m.payload for m in messages] == [b"A"]

    def test_finds_multiple_frames(self):
        bits = (
            TagMessage(payload=b"one").to_bits()
            + [1, 1, 1]
            + TagMessage(payload=b"two").to_bits()
        )
        assert [m.payload for m in scan_for_frames(bits)] == [b"one", b"two"]

    def test_corrupted_frame_skipped_next_found(self):
        first = TagMessage(payload=b"bad").to_bits()
        first[30] ^= 1  # corrupt the first frame
        bits = first + TagMessage(payload=b"good").to_bits()
        assert [m.payload for m in scan_for_frames(bits)] == [b"good"]

    def test_empty_stream(self):
        assert scan_for_frames([]) == []


class TestTagEncoder:
    def test_ook_passthrough(self):
        encoder = TagEncoder()
        bits = [1, 0, 1, 1]
        assert encoder.encode(bits) == bits
        assert encoder.decode(bits) == bits

    def test_manchester_encoding(self):
        encoder = TagEncoder(line_code=LineCode.MANCHESTER)
        assert encoder.encode([1, 0]) == [1, 0, 0, 1]

    def test_manchester_roundtrip(self):
        encoder = TagEncoder(line_code=LineCode.MANCHESTER)
        bits = [1, 0, 0, 1, 1, 1, 0]
        assert encoder.decode(encoder.encode(bits)) == bits

    def test_manchester_rejects_idle_stream(self):
        """An absent tag (all subframes decode -> all ones) is detected."""
        encoder = TagEncoder(line_code=LineCode.MANCHESTER)
        with pytest.raises(DecodeError):
            encoder.decode([1, 1, 1, 1])

    def test_manchester_rejects_odd_length(self):
        encoder = TagEncoder(line_code=LineCode.MANCHESTER)
        with pytest.raises(DecodeError):
            encoder.decode([1, 0, 1])

    def test_fec_composition(self):
        encoder = TagEncoder(fec=RepetitionCode(3))
        bits = [1, 0]
        coded = encoder.encode(bits)
        assert len(coded) == 6
        coded[0] ^= 1
        assert encoder.decode(coded) == bits

    def test_fec_plus_manchester(self):
        encoder = TagEncoder(
            fec=HammingCode(), line_code=LineCode.MANCHESTER
        )
        bits = [1, 0, 1, 1]
        assert encoder.decode(encoder.encode(bits)) == bits

    def test_subframes_needed(self):
        assert TagEncoder().subframes_needed(62) == 62
        assert TagEncoder(
            line_code=LineCode.MANCHESTER
        ).subframes_needed(31) == 62
        assert TagEncoder(fec=RepetitionCode(3)).subframes_needed(10) == 30

    def test_efficiency(self):
        assert TagEncoder().efficiency == 1.0
        assert TagEncoder(
            fec=RepetitionCode(3), line_code=LineCode.MANCHESTER
        ).efficiency == pytest.approx(1 / 6)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            TagEncoder().subframes_needed(-1)
