"""Waveform-level validation of the corruption mechanism (paper §5)."""

import numpy as np
import pytest

from repro.phy.channel import TagState
from repro.phy.waveform import (
    CP_LENGTH,
    DATA_TONES,
    FFT_SIZE,
    OfdmModem,
    TagChannelWaveform,
    run_corruption_experiment,
)


class TestOfdmModem:
    @pytest.mark.parametrize("bps", [1, 2, 4])
    def test_loopback_ideal_channel(self, bps):
        modem = OfdmModem(bits_per_symbol=bps)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, modem.bits_per_ofdm_symbol)
        tx = modem.modulate_symbol(bits)
        estimate = np.ones(DATA_TONES.size, dtype=complex)
        decoded = modem.demodulate_symbol(tx, estimate)
        assert np.array_equal(decoded, bits)

    def test_loopback_through_flat_channel(self):
        modem = OfdmModem(bits_per_symbol=4)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, modem.bits_per_ofdm_symbol)
        gain = 0.7 * np.exp(1j * 0.9)
        rx = modem.modulate_symbol(bits) * gain
        estimate = np.full(DATA_TONES.size, gain, dtype=complex)
        assert np.array_equal(modem.demodulate_symbol(rx, estimate), bits)

    def test_channel_estimation_recovers_gain(self):
        modem = OfdmModem()
        training, tones = modem.training_symbol()
        gain = 1.3 * np.exp(-1j * 0.4)
        estimate = modem.estimate_channel(training * gain, tones)
        assert np.allclose(estimate, gain, atol=1e-9)

    def test_symbol_length(self):
        modem = OfdmModem()
        bits = np.zeros(modem.bits_per_ofdm_symbol, dtype=int)
        assert len(modem.modulate_symbol(bits)) == FFT_SIZE + CP_LENGTH

    def test_invalid_inputs(self):
        modem = OfdmModem()
        with pytest.raises(ValueError):
            modem.modulate_symbol(np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            modem.demodulate_symbol(
                np.zeros(10, dtype=complex),
                np.ones(DATA_TONES.size, dtype=complex),
            )
        with pytest.raises(ValueError):
            OfdmModem(bits_per_symbol=3)

    def test_unit_mean_power(self):
        modem = OfdmModem(bits_per_symbol=4)
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, modem.bits_per_ofdm_symbol)
        tx = modem.modulate_symbol(bits)
        # 52 occupied of 64 tones at unit symbol power.
        assert np.mean(np.abs(tx) ** 2) == pytest.approx(
            DATA_TONES.size / FFT_SIZE, rel=0.3
        )


class TestTagChannelWaveform:
    def test_state_changes_gain(self):
        channel = TagChannelWaveform(tag_gain=0.1 + 0.0j)
        idle = channel.channel_gain(TagState.REFLECT_0)
        flipped = channel.channel_gain(TagState.REFLECT_180)
        assert idle != flipped
        assert abs(idle - flipped) == pytest.approx(0.2)

    def test_noise_applied(self):
        channel = TagChannelWaveform(noise_std=0.1)
        samples = np.ones(64, dtype=complex)
        out = channel.apply(samples, TagState.REFLECT_0)
        assert not np.allclose(out, samples * channel.channel_gain(TagState.REFLECT_0))


class TestCorruptionExperiment:
    """Paper §5 at IQ-sample level: errors land exactly in the flip window."""

    def test_errors_concentrate_in_flip_window(self):
        rates = run_corruption_experiment()
        flipped = rates[8:12]
        clean = [r for i, r in enumerate(rates) if not 8 <= i < 12]
        assert min(flipped) > 0.05
        assert max(clean) < 0.01

    def test_no_flip_no_errors(self):
        rates = run_corruption_experiment(flip_range=(0, 0))
        assert max(rates) < 0.01

    def test_whole_frame_flip(self):
        rates = run_corruption_experiment(flip_range=(0, 20))
        assert min(rates) > 0.05

    def test_bpsk_resists_what_16qam_cannot(self):
        """The paper's rate-selection logic, demonstrated on IQ samples:
        denser constellations are corrupted by perturbations BPSK absorbs."""
        qam16 = run_corruption_experiment(bits_per_symbol=4)
        bpsk = run_corruption_experiment(bits_per_symbol=1)
        assert np.mean(qam16[8:12]) > 0.1
        assert np.mean(bpsk[8:12]) < 0.01

    def test_stronger_reflection_worse_corruption(self):
        weak = run_corruption_experiment(tag_gain=0.15j)
        strong = run_corruption_experiment(tag_gain=0.45j)
        assert np.mean(strong[8:12]) > np.mean(weak[8:12])

    def test_invalid_flip_range(self):
        with pytest.raises(ValueError):
            run_corruption_experiment(flip_range=(5, 3))
        with pytest.raises(ValueError):
            run_corruption_experiment(flip_range=(0, 99))
