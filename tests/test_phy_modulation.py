"""Unit tests for modulation schemes and BER curves."""

import math

import pytest

from repro.phy.modulation import (
    CodingRate,
    Modulation,
    RATE_1_2,
    RATE_5_6,
    q_function,
    snr_db_to_linear,
    snr_linear_to_db,
)


class TestQFunction:
    def test_q_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_q_is_decreasing(self):
        values = [q_function(x) for x in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_q_known_value(self):
        # Q(1.96) ~= 0.025 (the 95% two-sided quantile).
        assert q_function(1.96) == pytest.approx(0.025, abs=5e-4)

    def test_q_symmetry(self):
        assert q_function(-1.0) == pytest.approx(1.0 - q_function(1.0))


class TestModulationProperties:
    def test_bits_per_symbol(self):
        assert Modulation.BPSK.bits_per_symbol == 1
        assert Modulation.QPSK.bits_per_symbol == 2
        assert Modulation.QAM16.bits_per_symbol == 4
        assert Modulation.QAM64.bits_per_symbol == 6
        assert Modulation.QAM256.bits_per_symbol == 8

    def test_constellation_sizes(self):
        assert Modulation.QAM64.constellation_size == 64
        assert Modulation.BPSK.constellation_size == 2


class TestBitErrorRate:
    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_zero_snr_gives_half(self, modulation):
        assert modulation.bit_error_rate(0.0) == pytest.approx(0.5)

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_monotone_decreasing_in_snr(self, modulation):
        snrs = [snr_db_to_linear(db) for db in range(0, 31, 5)]
        bers = [modulation.bit_error_rate(s) for s in snrs]
        assert all(a >= b for a, b in zip(bers, bers[1:]))

    def test_bpsk_known_value(self):
        # BPSK at Eb/N0 = 9.6 dB gives BER ~= 1e-5.
        assert Modulation.BPSK.bit_error_rate(
            snr_db_to_linear(9.6)
        ) == pytest.approx(1e-5, rel=0.25)

    def test_higher_order_needs_more_snr(self):
        snr = snr_db_to_linear(12.0)
        assert (
            Modulation.BPSK.bit_error_rate(snr)
            < Modulation.QAM16.bit_error_rate(snr)
            < Modulation.QAM64.bit_error_rate(snr)
            < Modulation.QAM256.bit_error_rate(snr)
        )

    def test_negative_snr_rejected(self):
        with pytest.raises(ValueError):
            Modulation.QPSK.bit_error_rate(-1.0)

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_ber_bounded(self, modulation):
        for db in (-100, 0, 10, 50):
            ber = modulation.bit_error_rate(snr_db_to_linear(db))
            assert 0.0 <= ber <= 0.5


class TestSymbolErrorRate:
    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_ser_at_least_ber(self, modulation):
        snr = snr_db_to_linear(10.0)
        assert modulation.symbol_error_rate(snr) >= modulation.bit_error_rate(
            snr
        ) - 1e-12

    def test_zero_snr_ser(self):
        # Uniform guessing over M symbols.
        assert Modulation.QPSK.symbol_error_rate(0.0) == pytest.approx(0.75)

    def test_negative_snr_rejected(self):
        with pytest.raises(ValueError):
            Modulation.QAM64.symbol_error_rate(-0.1)


class TestCodingRate:
    def test_value(self):
        assert RATE_1_2.value == pytest.approx(0.5)
        assert RATE_5_6.value == pytest.approx(5 / 6)

    def test_str(self):
        assert str(RATE_1_2) == "1/2"

    @pytest.mark.parametrize("num,den", [(0, 2), (3, 2), (-1, 2), (2, 0)])
    def test_invalid_rates_rejected(self, num, den):
        with pytest.raises(ValueError):
            CodingRate(num, den)


class TestSnrConversion:
    def test_roundtrip(self):
        for db in (-10.0, 0.0, 3.0, 25.5):
            assert snr_linear_to_db(snr_db_to_linear(db)) == pytest.approx(db)

    def test_zero_db_is_unity(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)

    def test_3db_is_factor_two(self):
        assert snr_db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            snr_linear_to_db(0.0)
        with pytest.raises(ValueError):
            snr_linear_to_db(-5.0)
