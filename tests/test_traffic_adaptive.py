"""Traffic layer suite: models, CSMA coupling, scheduler, controllers.

ISSUE 10 satellites 3 and 4.  Statistical checks on the ambient-traffic
models (realised busy fractions against their configured expectations,
seeded and tolerance-based, never flaky), the ContentionModel contract
the scheduler leans on (``mean_access_delay_s`` monotone in offered
load, FIFO activity overrides), the causal decide-then-observe loop,
and the boundary behaviour of both AIMD controllers
(:class:`QueryRateController` floor/ceiling/hysteresis and the
:class:`RedundancyController` parity ladder).
"""

import numpy as np
import pytest

from repro.core.rate_control import (
    AdaptiveSession,
    QueryRateController,
    RedundancyController,
)
from repro.core.session import MeasurementSession
from repro.mac.csma import ContentionModel, DcfParameters, DcfStation
from repro.runner import UnitContext
from repro.runner.workers import AdaptiveLinkSpec, adaptive_link_stats
from repro.sim.scenario import los_scenario
from repro.tag.energy import EnergySimulator
from repro.traffic import (
    AdaptiveFecLink,
    EwmaPredictor,
    HoltPredictor,
    MarkovTraffic,
    OnOffTraffic,
    OpportunityScheduler,
    ScheduledSession,
    TraceReplayTraffic,
)

pytestmark = pytest.mark.adaptive


# ---------------------------------------------------------------------------
# Ambient-traffic models: realised statistics match the configured ones.
# ---------------------------------------------------------------------------


class TestOnOffTraffic:
    def test_realised_mean_matches_expectation(self):
        model = OnOffTraffic(
            rate_fps=600.0,
            mean_on_s=0.05,
            mean_off_s=0.15,
            rng=np.random.default_rng(7),
        )
        # 80 s of 20 ms windows spans ~400 ON/OFF cycles: plenty for
        # the realised mean to settle near duty_cycle * on_activity.
        samples = [model.step(0.02) for _ in range(4000)]
        assert all(0.0 <= s <= 1.0 for s in samples)
        assert model.mean_busy_fraction == pytest.approx(0.225)
        assert np.mean(samples) == pytest.approx(
            model.mean_busy_fraction, abs=0.03
        )

    def test_windows_partition_the_burst_process(self):
        # The same seeded burst process cut into windows of different
        # sizes must report the same total ON time: stepping is exact
        # bookkeeping over sojourns, not a per-window approximation.
        def on_time(window_s, count):
            model = OnOffTraffic(
                rate_fps=1e9,  # on_activity saturates at 1.0
                mean_on_s=0.05,
                mean_off_s=0.15,
                rng=np.random.default_rng(3),
            )
            return sum(model.step(window_s) * window_s for _ in range(count))

        assert on_time(0.02, 500) == pytest.approx(on_time(0.005, 2000))

    def test_start_on_and_validation(self):
        on = OnOffTraffic(
            mean_on_s=100.0, start_on=True, rng=np.random.default_rng(0)
        )
        assert on.step(0.02) == pytest.approx(on.on_activity)
        with pytest.raises(ValueError):
            OnOffTraffic(rate_fps=-1.0)
        with pytest.raises(ValueError):
            OnOffTraffic(mean_on_s=0.0)
        with pytest.raises(ValueError):
            OnOffTraffic().step(0.0)


class TestMarkovTraffic:
    def test_realised_mean_matches_stationary_mean(self):
        model = MarkovTraffic(rng=np.random.default_rng(11))
        # Default sticky two-state chain: pi = (2/3, 1/3) over
        # activities (0.045, 0.9).
        assert model.stationary_distribution == pytest.approx(
            [2 / 3, 1 / 3], abs=1e-9
        )
        assert model.mean_busy_fraction == pytest.approx(0.33, abs=1e-9)
        samples = [model.step(0.02) for _ in range(6000)]
        assert np.mean(samples) == pytest.approx(
            model.mean_busy_fraction, abs=0.04
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="transition matrix"):
            MarkovTraffic(
                rates_fps=(1.0, 2.0), transition=[[1.0]]
            )
        with pytest.raises(ValueError, match="sum to 1"):
            MarkovTraffic(
                rates_fps=(1.0, 2.0),
                transition=[[0.5, 0.4], [0.5, 0.5]],
            )
        with pytest.raises(ValueError, match="exactly 2 states"):
            MarkovTraffic(rates_fps=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError, match="state"):
            MarkovTraffic(state=5)


class TestTraceReplayTraffic:
    def test_replay_is_deterministic(self):
        gaps = [0.004, 0.001, 0.010, 0.002, 0.003]

        def run():
            model = TraceReplayTraffic(gaps)
            return [model.step(0.02) for _ in range(50)]

        first = run()
        assert first == run()
        # Mean arrival rate 1/mean_gap; busy = rate * airtime.
        assert np.mean(first) == pytest.approx(
            TraceReplayTraffic(gaps).mean_busy_fraction, rel=0.1
        )

    def test_file_round_trip(self, tmp_path):
        model = TraceReplayTraffic([0.004, 0.002, 0.008])
        path = tmp_path / "trace.json"
        assert model.to_file(path) == 3
        loaded = TraceReplayTraffic.from_file(path)
        assert loaded.inter_arrivals_s == model.inter_arrivals_s
        fresh = TraceReplayTraffic([0.004, 0.002, 0.008])
        assert [loaded.step(0.02) for _ in range(20)] == [
            fresh.step(0.02) for _ in range(20)
        ]

    def test_plain_text_traces_load_too(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.004\n0.002\n\n0.008\n")
        assert TraceReplayTraffic.from_file(path).inter_arrivals_s == (
            0.004,
            0.002,
            0.008,
        )
        with pytest.raises(ValueError, match="empty trace"):
            empty = tmp_path / "empty.txt"
            empty.write_text("")
            TraceReplayTraffic.from_file(empty)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplayTraffic([])
        with pytest.raises(ValueError):
            TraceReplayTraffic([0.004, -0.001])


# ---------------------------------------------------------------------------
# CSMA coupling: the contention contract the scheduler's story rests on.
# ---------------------------------------------------------------------------


class TestContentionModel:
    def test_mean_access_delay_monotone_in_activity(self):
        model = ContentionModel(n_contenders=4)
        delays = [
            model.mean_access_delay_s(activity=a)
            for a in np.linspace(0.0, 1.0, 21)
        ]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert delays[-1] > delays[0]

    def test_mean_access_delay_monotone_in_contenders(self):
        delays = [
            ContentionModel(n_contenders=n).mean_access_delay_s(
                activity=0.4
            )
            for n in range(9)
        ]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert delays[-1] > delays[0]

    def test_sampled_mean_matches_analytic(self):
        model = ContentionModel(
            n_contenders=4,
            contender_activity=0.3,
            rng=np.random.default_rng(5),
        )
        samples = [model.sample_access_delay_s() for _ in range(8000)]
        assert np.mean(samples) == pytest.approx(
            model.mean_access_delay_s(), rel=0.05
        )

    def test_push_activity_is_fifo_one_shot(self):
        # A quiet override then a saturated one: the first sampled
        # delay carries no busy interruptions, the second must (at
        # activity 1.0 every backoff slot is interrupted, and each
        # interruption adds a full contender_busy_s >> the slot time).
        model = ContentionModel(
            n_contenders=4,
            contender_activity=0.0,
            rng=np.random.default_rng(2),
        )
        model.push_activity(0.0)
        model.push_activity(1.0)
        quiet = model.sample_access_delay_s()
        busy = model.sample_access_delay_s()
        assert busy >= quiet + model.contender_busy_s
        # Queue drained: back to the static activity (0.0 -> minimal).
        drained = model.sample_access_delay_s()
        assert drained < model.contender_busy_s

    def test_push_activity_validation(self):
        model = ContentionModel(n_contenders=1)
        with pytest.raises(ValueError):
            model.push_activity(-0.1)
        with pytest.raises(ValueError):
            model.push_activity(1.5)
        with pytest.raises(ValueError):
            model.mean_access_delay_s(activity=1.5)

    def test_dcf_contention_window_doubles_and_caps(self):
        station = DcfStation(DcfParameters())
        windows = []
        for _ in range(12):
            windows.append(station.contention_window())
            station.on_failure()
        assert windows[:3] == [15, 31, 63]
        assert windows[-1] == station.params.cw_max
        station.on_success()
        assert station.contention_window() == 15


# ---------------------------------------------------------------------------
# Predictors and the causal scheduling loop.
# ---------------------------------------------------------------------------


class TestPredictors:
    def test_ewma_bootstrap_and_update(self):
        predictor = EwmaPredictor(alpha=0.3)
        assert predictor.predict() == 0.0  # optimistic prior
        predictor.observe(0.5)
        assert predictor.predict() == pytest.approx(0.5)
        predictor.observe(1.0)
        assert predictor.predict() == pytest.approx(0.3 * 1.0 + 0.7 * 0.5)

    def test_holt_tracks_ramps_ahead_of_ewma(self):
        ramp = np.linspace(0.0, 0.8, 9)
        ewma, holt = EwmaPredictor(), HoltPredictor()
        for busy in ramp:
            ewma.observe(busy)
            holt.observe(busy)
        # On a steady ramp the trend term pushes Holt's forecast ahead
        # of the lagging EWMA level.
        assert holt.predict() > ewma.predict()
        assert holt.predict() > ramp[-1] - 0.1

    def test_holt_forecast_stays_clamped(self):
        predictor = HoltPredictor()
        for busy in np.linspace(0.0, 1.0, 30):
            predictor.observe(busy)
            assert 0.0 <= predictor.predict() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            HoltPredictor(alpha=1.5)
        with pytest.raises(ValueError):
            HoltPredictor(beta=-0.1)


class TestOpportunityScheduler:
    def test_rides_quiet_forecasts_skips_busy_ones(self):
        scheduler = OpportunityScheduler(ride_threshold=0.35)
        ride, predicted, forced = scheduler.decide()
        assert ride and not forced and predicted == 0.0
        scheduler.observe(0.9)  # saturate the forecast
        ride, predicted, forced = scheduler.decide()
        assert not ride and predicted > 0.35

    def test_skip_streak_guard_forces_a_ride(self):
        scheduler = OpportunityScheduler(
            predictor=EwmaPredictor(level=1.0),
            ride_threshold=0.35,
            max_skip_streak=5,
        )
        decisions = []
        for _ in range(12):
            decisions.append(scheduler.decide())
            scheduler.observe(1.0)  # forecast stays pinned at 1.0
        rides = [r for r, _, _ in decisions]
        forced = [f for _, _, f in decisions]
        # Five skips, then the guard fires; the pattern repeats.
        assert rides == [False] * 5 + [True] + [False] * 5 + [True]
        assert forced == [False] * 5 + [True] + [False] * 5 + [True]

    def test_validation(self):
        with pytest.raises(ValueError):
            OpportunityScheduler(ride_threshold=1.5)
        with pytest.raises(ValueError):
            OpportunityScheduler(max_skip_streak=0)


class TestScheduledSession:
    @staticmethod
    def _scheduled(**kwargs):
        system, _ = los_scenario(2.0, seed=5)
        session = MeasurementSession(
            system, rng=np.random.default_rng(6), session_fast_path=True
        )
        system.load_tag_bits([1, 0] * 400)
        defaults = dict(
            session=session,
            traffic=OnOffTraffic(
                rate_fps=600.0,
                mean_on_s=0.30,
                mean_off_s=0.45,
                rng=np.random.default_rng(11),
            ),
            scheduler=OpportunityScheduler(predictor=HoltPredictor()),
            interference_rng=np.random.default_rng(12),
        )
        defaults.update(kwargs)
        return ScheduledSession(**defaults)

    def test_decisions_are_causal(self):
        # The forecast recorded for window i must be computable from
        # busy fractions 0..i-1 alone — never from window i's own.
        scheduled = self._scheduled()
        plan = scheduled.plan_windows(60)
        shadow = HoltPredictor()
        for decision in plan:
            assert decision.predicted == pytest.approx(shadow.predict())
            shadow.observe(decision.busy)

    def test_plan_then_execute_matches_run_queries(self):
        one = self._scheduled()
        two = self._scheduled()
        stats_one = one.run_queries(50)
        plan = two.plan_windows(50)
        stats_two = two.execute_plan(plan)
        assert stats_one == stats_two
        assert one.decisions == two.decisions
        assert one.rides == two.rides == len(one.results)
        assert one.skips == 50 - one.rides

    def test_elapsed_and_energy_account_every_window(self):
        energy = EnergySimulator()
        scheduled = self._scheduled(energy=energy)
        scheduled.run_queries(50)
        # A ridden window occupies max(cycle_s, window_s); with no
        # contention a query cycle fits inside the 20 ms window, so
        # elapsed time is exactly the window grid and the energy
        # ledger splits it into active cycles plus sleep.
        assert all(r.cycle_s <= scheduled.window_s for r in scheduled.results)
        assert scheduled._elapsed_s == pytest.approx(50 * scheduled.window_s)
        active = sum(r.cycle_s for r in scheduled.results)
        assert energy.active_s == pytest.approx(active)
        assert energy.slept_s == pytest.approx(
            scheduled._elapsed_s - active
        )
        assert energy.consumed_j > 0.0

    def test_interference_only_zeroes_bits(self):
        # Collisions destroy subframes: a received bit may flip 1 -> 0
        # under interference but never 0 -> 1.
        quiet = self._scheduled(
            traffic=OnOffTraffic(
                rate_fps=600.0,
                mean_on_s=0.30,
                mean_off_s=0.45,
                rng=np.random.default_rng(11),
            ),
            collision_scale=0.0,
        )
        noisy = self._scheduled(collision_scale=1.0)
        quiet.run_queries(40)
        noisy.run_queries(40)
        assert quiet.decisions == noisy.decisions  # policy unaffected
        for clean, hit in zip(quiet.results, noisy.results):
            for a, b in zip(clean.received_bits, hit.received_bits):
                assert b in (a, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._scheduled(window_s=0.0)
        with pytest.raises(ValueError):
            self._scheduled(collision_scale=1.5)
        scheduled = self._scheduled()
        with pytest.raises(ValueError):
            scheduled.plan_windows(0)
        with pytest.raises(ValueError):
            scheduled.run_for(0.0)


# ---------------------------------------------------------------------------
# Controller boundaries: both AIMD ladders at their edges.
# ---------------------------------------------------------------------------


class TestQueryRateControllerBoundaries:
    def test_floor_never_goes_below_zero(self):
        controller = QueryRateController(mcs_index=0)
        for _ in range(5):
            assert controller.observe_benign_loss(500, 1000) == 0
        assert controller.downgrades == 0  # no phantom step-downs at 0

    def test_ceiling_never_probes_past_max_index(self):
        controller = QueryRateController(
            mcs_index=7, max_index=7, probe_after_clean=1
        )
        for _ in range(5):
            assert controller.observe_benign_loss(0, 1000) == 7

    def test_oscillating_feedback_never_climbs(self):
        # Hysteresis: every lossy round resets the clean streak, so an
        # alternating channel walks down and parks at the floor.
        controller = QueryRateController(mcs_index=5, probe_after_clean=2)
        trace = []
        for cycle in range(20):
            lost = 200 if cycle % 2 == 0 else 0
            trace.append(controller.observe_benign_loss(lost, 1000))
        assert all(b <= a for a, b in zip(trace, trace[1:]))
        assert trace[-1] == 0

    def test_probe_up_after_sustained_clean(self):
        controller = QueryRateController(mcs_index=3, probe_after_clean=3)
        for _ in range(2):
            assert controller.observe_benign_loss(0, 1000) == 3
        assert controller.observe_benign_loss(0, 1000) == 4

    def test_settle_finds_the_highest_sustainable_rate(self):
        controller = QueryRateController(mcs_index=7)
        index = controller.settle(
            lambda i: 0.0 if i <= 3 else 0.2
        )
        assert index == 3

    def test_zero_total_is_a_no_op(self):
        controller = QueryRateController(mcs_index=4)
        assert controller.observe_benign_loss(0, 0) == 4
        assert controller.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_index"):
            QueryRateController(max_index=32)
        with pytest.raises(ValueError, match="mcs_index"):
            QueryRateController(mcs_index=9, max_index=7)
        with pytest.raises(ValueError):
            QueryRateController(downgrade_threshold=0.0)
        with pytest.raises(ValueError):
            QueryRateController(probe_after_clean=0)
        with pytest.raises(ValueError, match="invalid counts"):
            QueryRateController().observe_benign_loss(6, 5)
        with pytest.raises(ValueError, match="invalid counts"):
            QueryRateController().observe_benign_loss(-1, 5)

    def test_adaptive_session_rejects_out_of_range_system_mcs(self):
        system, _ = los_scenario(2.0, seed=5)  # MCS index 7
        with pytest.raises(ValueError, match="outside controller range"):
            AdaptiveSession(
                system,
                controller=QueryRateController(mcs_index=0, max_index=3),
            )


class TestRedundancyControllerBoundaries:
    def test_ceiling_holds_at_top_rung(self):
        controller = RedundancyController(levels=(2, 4), index=1)
        for _ in range(3):
            assert controller.observe_corruption(10, 10) == 1
        assert controller.level == 4
        assert controller.increases == 0

    def test_floor_holds_at_bottom_rung(self):
        controller = RedundancyController(
            levels=(2, 4), decrease_after_clean=1
        )
        for _ in range(3):
            assert controller.observe_corruption(0, 10) == 0
        assert controller.level == 2

    def test_oscillating_corruption_parks_at_protective_rung(self):
        # A lossy round steps up immediately; a single clean round
        # (below decrease_after_clean=2) never steps back down, so an
        # alternating channel climbs to the protective rung and parks
        # there instead of flapping.
        controller = RedundancyController(
            levels=(2, 4, 8), increase_threshold=0.25, decrease_after_clean=2
        )
        assert controller.observe_corruption(5, 10) == 1
        trace = []
        for cycle in range(10):
            corrupted = 5 if cycle % 2 == 0 else 0
            trace.append(controller.observe_corruption(corrupted, 10))
        assert trace == [2] * 10
        assert controller.level == 8

    def test_sustained_clean_eases_back_down(self):
        controller = RedundancyController(
            levels=(2, 4, 8), index=2, decrease_after_clean=2
        )
        rungs = [controller.observe_corruption(0, 10) for _ in range(4)]
        assert rungs == [2, 1, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RedundancyController(levels=())
        with pytest.raises(ValueError, match="strictly increasing"):
            RedundancyController(levels=(4, 2))
        with pytest.raises(ValueError, match="strictly increasing"):
            RedundancyController(levels=(2, 2))
        with pytest.raises(ValueError, match="index"):
            RedundancyController(levels=(2, 4), index=2)
        with pytest.raises(ValueError):
            RedundancyController(increase_threshold=1.0)
        with pytest.raises(ValueError):
            RedundancyController(decrease_after_clean=0)
        with pytest.raises(ValueError, match="invalid counts"):
            RedundancyController().observe_corruption(3, 2)
        assert RedundancyController().observe_corruption(0, 0) == 0


# ---------------------------------------------------------------------------
# The closed loop: AdaptiveFecLink report consistency.
# ---------------------------------------------------------------------------


class TestAdaptiveFecLink:
    def test_round_reports_are_internally_consistent(self):
        link = AdaptiveLinkSpec()(
            UnitContext(index=0, parameters={}, root_seed=7)
        )
        report = link.run(3, 60)
        assert len(report.rounds) == 3
        for round_ in report.rounds:
            assert round_.rides <= round_.windows == 60
            assert round_.nsym in link.controller.levels
            assert round_.message_bits == round_.blocks * 8 * link.block_k
            assert 0 <= round_.delivered_bits <= round_.message_bits
            assert 0 <= round_.failed_blocks <= round_.blocks
        assert report.message_bits == sum(
            r.message_bits for r in report.rounds
        )
        assert report.delivered_bits == sum(
            r.delivered_bits for r in report.rounds
        )
        assert report.goodput_bps == pytest.approx(
            report.delivered_bits / report.elapsed_s
        )
        assert 0.0 <= report.block_error_rate <= 1.0
        assert report.energy_j > 0.0
        assert report.energy_per_bit_uj is None or (
            report.energy_per_bit_uj > 0.0
        )

    def test_static_baseline_rides_everything_on_one_rung(self):
        stats = adaptive_link_stats(
            UnitContext(index=0, parameters={}, root_seed=7),
            spec=AdaptiveLinkSpec(adaptive=False),
            rounds=2,
            windows_per_round=40,
        )
        assert stats["adaptive"] is False
        assert stats["rides"] == stats["windows"] == 80
        assert set(stats["rungs"]) == {AdaptiveLinkSpec().static_nsym}
        assert set(stats["decision_bits"]) == {"1"}

    def test_link_stats_are_deterministic_per_seed(self):
        def run():
            return adaptive_link_stats(
                UnitContext(index=1, parameters={}, root_seed=9),
                rounds=2,
                windows_per_round=40,
            )

        first = run()
        assert first == run()
        assert first["windows"] == 80
        assert len(first["decision_bits"]) == 80
        assert first["rides"] == first["decision_bits"].count("1")

    def test_block_k_validation(self):
        link = AdaptiveLinkSpec()(
            UnitContext(index=0, parameters={}, root_seed=7)
        )
        with pytest.raises(ValueError):
            AdaptiveFecLink(scheduled=link.scheduled, block_k=0)
        with pytest.raises(ValueError):
            link.run(0, 10)
