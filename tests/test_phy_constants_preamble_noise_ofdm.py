"""Unit tests for PHY constants, preamble timing, noise and OFDM grids."""

import numpy as np
import pytest

from repro.phy.constants import (
    Band,
    DIFS_5GHZ_S,
    SIFS_5GHZ_S,
    SLOT_TIME_S,
    SYMBOL_LONG_GI_S,
    SYMBOL_SHORT_GI_S,
    data_subcarriers,
)
from repro.phy.noise import (
    ReceiverNoise,
    dbm_to_watts,
    thermal_noise_dbm,
    watts_to_dbm,
)
from repro.phy.ofdm import (
    data_subcarrier_offsets_hz,
    delay_phase_rotation,
    subcarrier_offsets_hz,
)
from repro.phy.preamble import PhyFormat, preamble_info


class TestConstants:
    def test_symbol_durations(self):
        assert SYMBOL_LONG_GI_S == pytest.approx(4.0e-6)
        assert SYMBOL_SHORT_GI_S == pytest.approx(3.6e-6)

    def test_difs_structure(self):
        assert DIFS_5GHZ_S == pytest.approx(SIFS_5GHZ_S + 2 * SLOT_TIME_S)

    def test_data_subcarriers(self):
        assert data_subcarriers(20) == 52
        assert data_subcarriers(40) == 108
        assert data_subcarriers(80) == 234
        assert data_subcarriers(160) == 468

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            data_subcarriers(30)

    def test_band_wavelengths(self):
        assert Band.GHZ_2_4.wavelength_m == pytest.approx(0.123, abs=0.001)
        assert Band.GHZ_5.wavelength_m == pytest.approx(0.0579, abs=0.001)

    def test_band_sifs(self):
        assert Band.GHZ_2_4.sifs_s == pytest.approx(10e-6)
        assert Band.GHZ_5.sifs_s == pytest.approx(16e-6)


class TestPreamble:
    def test_ht_single_stream(self):
        info = preamble_info(PhyFormat.HT_MIXED, 1)
        # L(20) + HT-SIG(8) + HT-STF(4) + 1 x HT-LTF(4) = 36 us.
        assert info.total_s == pytest.approx(36e-6)

    def test_ht_three_streams_uses_four_ltfs(self):
        info = preamble_info(PhyFormat.HT_MIXED, 3)
        assert info.total_s == pytest.approx(48e-6)

    def test_vht_single_stream(self):
        info = preamble_info(PhyFormat.VHT, 1)
        # L(20) + SIG-A(8) + STF(4) + LTF(4) + SIG-B(4) = 40 us.
        assert info.total_s == pytest.approx(40e-6)

    def test_channel_estimation_end(self):
        info = preamble_info(PhyFormat.HT_MIXED, 2)
        assert info.channel_estimation_end_s == info.total_s

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            preamble_info(PhyFormat.HT_MIXED, 0)
        with pytest.raises(ValueError):
            preamble_info(PhyFormat.VHT, 5)


class TestNoise:
    def test_thermal_noise_20mhz(self):
        # kTB at 290 K for 20 MHz ~= -101 dBm.
        assert thermal_noise_dbm(20e6) == pytest.approx(-101.0, abs=0.2)

    def test_noise_floor_includes_nf(self):
        rx = ReceiverNoise(noise_figure_db=6.0)
        assert rx.noise_floor_dbm == pytest.approx(-95.0, abs=0.2)

    def test_snr(self):
        rx = ReceiverNoise(noise_figure_db=6.0)
        assert rx.snr_db(-45.0) == pytest.approx(50.0, abs=0.2)
        assert rx.snr_linear(-45.0) == pytest.approx(1e5, rel=0.06)

    def test_dbm_watts_roundtrip(self):
        for dbm in (-90.0, -30.0, 0.0, 20.0):
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_zero_dbm_is_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)
        with pytest.raises(ValueError):
            ReceiverNoise(bandwidth_hz=-1)
        with pytest.raises(ValueError):
            ReceiverNoise(noise_figure_db=-1)


class TestOfdmGrid:
    def test_occupied_grid_excludes_dc(self):
        grid = subcarrier_offsets_hz(20)
        assert 0.0 not in grid
        assert grid.size == 56  # +-28 occupied for HT20

    def test_data_grid_count(self):
        assert data_subcarrier_offsets_hz(20).size == 52
        assert data_subcarrier_offsets_hz(40).size == 108

    def test_grid_symmetric(self):
        grid = subcarrier_offsets_hz(20)
        assert np.isclose(grid.min(), -grid.max())

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            subcarrier_offsets_hz(25)

    def test_delay_rotation_unit_magnitude(self):
        grid = data_subcarrier_offsets_hz(20)
        rot = delay_phase_rotation(grid, 50e-9)
        assert np.allclose(np.abs(rot), 1.0)

    def test_zero_delay_is_identity(self):
        grid = data_subcarrier_offsets_hz(20)
        assert np.allclose(delay_phase_rotation(grid, 0.0), 1.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            delay_phase_rotation(data_subcarrier_offsets_hz(20), -1e-9)

    def test_phase_spread_grows_with_delay(self):
        grid = data_subcarrier_offsets_hz(20)
        small = np.angle(delay_phase_rotation(grid, 5e-9))
        large = np.angle(delay_phase_rotation(grid, 40e-9))
        assert np.ptp(large) > np.ptp(small)
