"""Unit tests for baseline system models and analysis utilities."""

import numpy as np
import pytest

from repro.analysis.ber import BitErrorCounter
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import Table, format_value
from repro.analysis.stats import Summary, db, geometric_mean
from repro.baselines import (
    NetworkProfile,
    Security,
    WifiStandard,
    all_systems,
    default_profiles,
    hitchhike_model,
    moxcatter_model,
    render_requirement_table,
    requirement_matrix,
    score_requirements,
    witag_model,
)


class TestSystemModels:
    def test_only_witag_satisfies_all(self):
        """The paper's central claim (Section 1)."""
        scores = requirement_matrix()
        winners = [s.system for s in scores if s.satisfies_all]
        assert winners == ["WiTAG"]

    def test_witag_on_encrypted_ac(self):
        profile = NetworkProfile(WifiStandard.DOT11AC, Security.WPA)
        assert witag_model().compatibility(profile).compatible

    def test_hitchhike_fails_on_wpa(self):
        profile = NetworkProfile(WifiStandard.DOT11B, Security.WPA)
        verdict = hitchhike_model().compatibility(profile)
        assert not verdict.compatible
        assert any("wpa" in r.lower() for r in verdict.reasons)

    def test_hitchhike_fails_on_11n(self):
        """Paper Section 2: HitchHike only works with 802.11b."""
        profile = NetworkProfile(WifiStandard.DOT11N)
        verdict = hitchhike_model().compatibility(profile)
        assert not verdict.compatible

    def test_moxcatter_needs_modified_ap(self):
        profile = NetworkProfile(WifiStandard.DOT11N)
        verdict = moxcatter_model().compatibility(profile)
        assert not verdict.compatible
        assert any("modified AP" in r for r in verdict.reasons)

    def test_channel_shifters_interfere(self):
        for model in all_systems():
            if model.shifts_channel and not model.performs_carrier_sense:
                assert model.interferes_with_others
        assert not witag_model().interferes_with_others

    def test_temperature_breaks_mhz_oscillators(self):
        """Paper Section 7 footnote 4."""
        profile = NetworkProfile(
            WifiStandard.DOT11N, temperature_stable=False
        )
        verdict = moxcatter_model().compatibility(profile)
        assert any("temperature" in r for r in verdict.reasons)

    def test_witag_power_lowest(self):
        budgets = {m.name: m.power_budget.total_uw for m in all_systems()}
        assert budgets["WiTAG"] == min(budgets.values())

    def test_requirement_score_structure(self):
        score = score_requirements(witag_model())
        assert score.wifi_compatible and score.satisfies_all

    def test_render_table(self):
        text = render_requirement_table()
        assert "WiTAG" in text
        assert "HitchHike" in text

    def test_default_profiles_cover_modern_networks(self):
        described = [p.describe() for p in default_profiles()]
        assert any("802.11ac" in d for d in described)
        assert any("wpa" in d for d in described)


class TestBitErrorCounter:
    def test_update(self):
        counter = BitErrorCounter()
        counter.update([1, 0, 1], [1, 1, 1])
        assert counter.bits == 3
        assert counter.errors == 1

    def test_wilson_interval_contains_p(self):
        counter = BitErrorCounter(bits=10_000, errors=100)
        low, high = counter.confidence_interval()
        assert low < 0.01 < high

    def test_no_bits(self):
        counter = BitErrorCounter()
        assert counter.ber == 0.0
        assert counter.confidence_interval() == (0.0, 1.0)

    def test_merge(self):
        merged = BitErrorCounter(100, 1).merge(BitErrorCounter(100, 3))
        assert merged.bits == 200
        assert merged.errors == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BitErrorCounter().update([1], [1, 0])
        with pytest.raises(ValueError):
            BitErrorCounter().add(10, 11)


class TestEmpiricalCdf:
    def test_evaluate(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(2.5) == pytest.approx(0.5)
        assert cdf.evaluate(0.0) == 0.0
        assert cdf.evaluate(10.0) == 1.0

    def test_percentile(self):
        cdf = EmpiricalCdf.from_samples(list(range(101)))
        assert cdf.percentile(90) == pytest.approx(90.0)
        assert cdf.median == pytest.approx(50.0)

    def test_dominance(self):
        better = EmpiricalCdf.from_samples([0.001, 0.002, 0.003])
        worse = EmpiricalCdf.from_samples([0.01, 0.02, 0.03])
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_curve(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        curve = cdf.curve(points=5)
        assert curve[0][1] <= curve[-1][1]
        assert curve[-1][1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])
        cdf = EmpiricalCdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(101)
        with pytest.raises(ValueError):
            cdf.curve(points=1)


class TestStats:
    def test_summary(self):
        summary = Summary.of([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == pytest.approx(2.0)
        assert summary.n == 3

    def test_summary_single(self):
        assert Summary.of([5.0]).std == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_db(self):
        assert db(100.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Summary.of([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            db(0.0)


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("t", ["a", "bb"])
        table.add_row([1, 2.5])
        table.add_row(["xx", True])
        text = table.render()
        assert "t" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            Table("t", ["a"]).add_row([1, 2])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.25) == "0.250"
        assert format_value("s") == "s"


class TestParameterSweep:
    def test_cartesian_order(self):
        from repro.analysis.sweep import ParameterSweep

        sweep = ParameterSweep(
            axes={"x": [1, 2], "y": [10, 20]},
            measure=lambda seed, x, y: x * y,
        )
        points = sweep.run()
        assert [p.value for p in points] == [10, 20, 20, 40]
        assert points[0].parameters == {"x": 1, "y": 10}

    def test_seeds_distinct_and_reproducible(self):
        from repro.analysis.sweep import ParameterSweep

        sweep = ParameterSweep(
            axes={"x": [0, 1, 2]},
            measure=lambda seed, x: seed,
            base_seed=100,
        )
        assert [p.value for p in sweep.run()] == [100, 101, 102]

    def test_table_and_best(self):
        from repro.analysis.sweep import ParameterSweep

        sweep = ParameterSweep(
            axes={"n": [1, 3, 2]}, measure=lambda seed, n: n * n
        )
        sweep.run()
        text = sweep.table("squares", "n^2").render()
        assert "squares" in text
        assert sweep.best().value == 9
        assert sweep.best(maximize=False).value == 1

    def test_validation(self):
        from repro.analysis.sweep import ParameterSweep

        with pytest.raises(ValueError):
            ParameterSweep(axes={}, measure=lambda seed: 0)
        with pytest.raises(ValueError):
            ParameterSweep(axes={"x": []}, measure=lambda seed, x: 0)
        sweep = ParameterSweep(axes={"x": [1]}, measure=lambda seed, x: 0)
        with pytest.raises(RuntimeError):
            sweep.table("t")
        with pytest.raises(RuntimeError):
            sweep.best()
