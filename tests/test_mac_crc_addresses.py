"""Unit tests for CRC implementations and MAC addresses."""

import random
import zlib

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.crc import (
    crc8,
    crc16_ccitt,
    crc16_ccitt_reference,
    crc32,
    crc32_reference,
    fcs_bytes,
    verify_fcs,
)


class TestCrc32:
    def test_matches_zlib(self):
        for data in (b"", b"a", b"123456789", bytes(range(256)) * 3):
            assert crc32(data) == zlib.crc32(data)

    def test_check_value(self):
        # The canonical CRC-32 check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_fcs_roundtrip(self):
        frame = b"header-and-payload"
        assert verify_fcs(frame + fcs_bytes(frame))

    def test_detects_single_bit_flip(self):
        frame = bytearray(b"header-and-payload" + fcs_bytes(b"header-and-payload"))
        for bit in (0, 37, len(frame) * 8 - 1):
            flipped = bytearray(frame)
            flipped[bit // 8] ^= 1 << (bit % 8)
            assert not verify_fcs(bytes(flipped))

    def test_short_frame_fails(self):
        assert not verify_fcs(b"abc")

    def test_fcs_is_little_endian(self):
        frame = b"x"
        assert fcs_bytes(frame) == crc32(frame).to_bytes(4, "little")


class TestCrc8:
    def test_deterministic(self):
        assert crc8(b"\x22\x00") == crc8(b"\x22\x00")

    def test_distinguishes_inputs(self):
        values = {crc8(bytes([i, 0])) for i in range(256)}
        assert len(values) > 200  # good dispersion over length field

    def test_empty(self):
        # init 0xFF, final inversion: crc8(b"") = 0x00.
        assert crc8(b"") == 0x00


class TestCrc16:
    def test_ccitt_check_value(self):
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_is_initial(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_swap(self):
        assert crc16_ccitt(b"ab") != crc16_ccitt(b"ba")


class TestStdlibFastPaths:
    """The shipped CRCs ride zlib/binascii; the table/bit-by-bit
    implementations stay as the reference they are checked against."""

    def _random_payloads(self, seed):
        rng = random.Random(seed)
        yield b""
        yield b"\x00"
        yield b"\xff" * 64
        for _ in range(50):
            n = rng.randrange(0, 512)
            yield rng.randbytes(n)

    def test_crc32_fast_matches_table_reference(self):
        for data in self._random_payloads(1):
            assert crc32(data) == crc32_reference(data)

    def test_crc16_fast_matches_bitwise_reference(self):
        for data in self._random_payloads(2):
            assert crc16_ccitt(data) == crc16_ccitt_reference(data)

    def test_crc16_custom_initial_value(self):
        for initial in (0x0000, 0x1D0F, 0xFFFF):
            assert crc16_ccitt(b"123456789", initial) == crc16_ccitt_reference(
                b"123456789", initial
            )

    def test_reference_check_values(self):
        # The references must themselves stay correct, or the cross-check
        # proves nothing.
        assert crc32_reference(b"123456789") == 0xCBF43926
        assert crc16_ccitt_reference(b"123456789") == 0x29B1


class TestMacAddress:
    def test_parse_and_format(self):
        addr = MacAddress.parse("02:AB:cd:00:11:ff")
        assert str(addr) == "02:ab:cd:00:11:ff"

    def test_parse_dashes(self):
        assert MacAddress.parse("02-00-00-00-00-01") == MacAddress.parse(
            "02:00:00:00:00:01"
        )

    def test_bytes_roundtrip(self):
        addr = MacAddress(bytes(range(6)))
        assert MacAddress(bytes(addr)) == addr

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert MacAddress.broadcast().is_multicast

    def test_multicast_bit(self):
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.parse("02:00:00:00:00:01").is_multicast

    def test_locally_administered(self):
        assert MacAddress.parse("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress.parse("00:1b:2c:00:00:01").is_locally_administered

    def test_ordering(self):
        a = MacAddress.parse("02:00:00:00:00:01")
        b = MacAddress.parse("02:00:00:00:00:02")
        assert a < b

    @pytest.mark.parametrize(
        "bad", ["", "02:00", "02:00:00:00:00:zz", "02:00:00:00:00:01:02"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress.parse(bad)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)
