"""Unit tests for A-MPDU aggregation — the heart of WiTAG's mechanism."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.ampdu import (
    DELIMITER_BYTES,
    MAX_DELIMITED_MPDU_BYTES,
    aggregate,
    corrupt_range,
    deaggregate,
    decode_delimiter,
    encode_delimiter,
    subframe_lengths,
)
from repro.mac.frames import null_qos_mpdu

A1 = MacAddress.parse("02:00:00:00:00:01")
A2 = MacAddress.parse("02:00:00:00:00:02")


def make_mpdus(count, payload=b""):
    return [
        null_qos_mpdu(A1, A2, seq, payload=payload).serialize()
        for seq in range(count)
    ]


class TestDelimiter:
    def test_roundtrip(self):
        for length in (0, 1, 30, 1500, MAX_DELIMITED_MPDU_BYTES):
            assert decode_delimiter(encode_delimiter(length)) == length

    def test_signature_checked(self):
        delim = bytearray(encode_delimiter(100))
        delim[3] = 0x00
        assert decode_delimiter(bytes(delim)) is None

    def test_crc_checked(self):
        delim = bytearray(encode_delimiter(100))
        delim[0] ^= 0x01
        assert decode_delimiter(bytes(delim)) is None

    def test_short_input(self):
        assert decode_delimiter(b"\x00\x00") is None

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            encode_delimiter(MAX_DELIMITED_MPDU_BYTES + 1)


class TestAggregation:
    def test_roundtrip_clean(self):
        mpdus = make_mpdus(8)
        subframes = deaggregate(aggregate(mpdus))
        assert len(subframes) == 8
        assert all(s.fcs_ok for s in subframes)
        assert [s.mpdu for s in subframes] == mpdus

    def test_subframes_four_byte_aligned(self):
        mpdus = make_mpdus(4, payload=b"xyz")  # 33-byte MPDUs
        for size in subframe_lengths(mpdus):
            assert size % 4 == 0
            assert size >= DELIMITER_BYTES + 33

    def test_single_mpdu(self):
        mpdus = make_mpdus(1)
        assert len(deaggregate(aggregate(mpdus))) == 1

    def test_max_window_of_64(self):
        mpdus = make_mpdus(64)
        assert len(deaggregate(aggregate(mpdus))) == 64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_psdu_size_matches_plan(self):
        mpdus = make_mpdus(5, payload=b"q" * 10)
        assert len(aggregate(mpdus)) == sum(subframe_lengths(mpdus))


class TestCorruption:
    """The WiTAG-critical behaviour: one bad subframe must not sink the rest."""

    def corrupt_subframe(self, mpdus, index):
        psdu = aggregate(mpdus)
        sizes = subframe_lengths(mpdus)
        start = sum(sizes[:index]) + DELIMITER_BYTES + 2
        return corrupt_range(psdu, start, start + 8)

    def test_single_corruption_isolated(self):
        mpdus = make_mpdus(8)
        subframes = deaggregate(self.corrupt_subframe(mpdus, 3))
        assert [s.fcs_ok for s in subframes] == [
            True, True, True, False, True, True, True, True,
        ]

    def test_first_subframe_corruption(self):
        mpdus = make_mpdus(4)
        subframes = deaggregate(self.corrupt_subframe(mpdus, 0))
        assert [s.fcs_ok for s in subframes] == [False, True, True, True]

    def test_last_subframe_corruption(self):
        mpdus = make_mpdus(4)
        subframes = deaggregate(self.corrupt_subframe(mpdus, 3))
        assert [s.fcs_ok for s in subframes] == [True, True, True, False]

    def test_multiple_corruptions(self):
        """A full tag pattern: alternating good/corrupt subframes."""
        mpdus = make_mpdus(8)
        psdu = aggregate(mpdus)
        sizes = subframe_lengths(mpdus)
        for index in (1, 3, 5, 7):
            start = sum(sizes[:index]) + DELIMITER_BYTES + 2
            psdu = corrupt_range(psdu, start, start + 4)
        fates = [s.fcs_ok for s in deaggregate(psdu)]
        assert fates == [True, False] * 4

    def test_corrupted_delimiter_resync(self):
        """Destroying a delimiter loses that subframe but not later ones."""
        mpdus = make_mpdus(6)
        sizes = subframe_lengths(mpdus)
        psdu = aggregate(mpdus)
        start = sum(sizes[:2])  # subframe 2's delimiter itself
        damaged = corrupt_range(psdu, start, start + 2)
        subframes = deaggregate(damaged)
        # Subframe 2 vanishes entirely; 0,1 and 3,4,5 survive intact.
        good = [s for s in subframes if s.fcs_ok]
        assert len(good) >= 5

    def test_corrupt_range_validation(self):
        psdu = aggregate(make_mpdus(2))
        with pytest.raises(ValueError):
            corrupt_range(psdu, 10, 5)
        with pytest.raises(ValueError):
            corrupt_range(psdu, 0, len(psdu) + 1)

    def test_corruption_is_pure(self):
        psdu = aggregate(make_mpdus(2))
        before = bytes(psdu)
        corrupt_range(psdu, 0, 4)
        assert psdu == before
