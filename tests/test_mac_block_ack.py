"""Unit tests for block ACK bitmap, scoreboard and frames."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.block_ack import (
    BLOCK_ACK_WINDOW,
    BlockAck,
    BlockAckRequest,
    BlockAckScoreboard,
    build_block_ack,
    seq_offset,
)

RA = MacAddress.parse("02:00:00:00:00:01")
TA = MacAddress.parse("02:00:00:00:00:02")


class TestSeqOffset:
    def test_simple(self):
        assert seq_offset(100, 105) == 5

    def test_wraparound(self):
        assert seq_offset(4090, 2) == 8

    def test_identity(self):
        assert seq_offset(7, 7) == 0


class TestScoreboard:
    def test_records_in_window(self):
        sb = BlockAckScoreboard(ssn=10)
        sb.record(10)
        sb.record(73)  # last slot of the window
        assert sb.bitmap() == (1 << 0) | (1 << 63)

    def test_ignores_out_of_window(self):
        sb = BlockAckScoreboard(ssn=10)
        sb.record(74)  # one past the window
        sb.record(9)  # stale
        assert sb.bitmap() == 0

    def test_wraparound_window(self):
        sb = BlockAckScoreboard(ssn=4090)
        sb.record(4095)
        sb.record(0)
        assert sb.bitmap() == (1 << 5) | (1 << 6)

    def test_reset(self):
        sb = BlockAckScoreboard(ssn=0)
        sb.record(5)
        sb.reset(100)
        assert sb.bitmap() == 0
        assert sb.ssn == 100

    def test_duplicate_records_idempotent(self):
        sb = BlockAckScoreboard()
        sb.record(3)
        sb.record(3)
        assert sb.bitmap() == 1 << 3

    def test_invalid_sequence(self):
        sb = BlockAckScoreboard()
        with pytest.raises(ValueError):
            sb.record(4096)
        with pytest.raises(ValueError):
            sb.reset(-1)
        with pytest.raises(ValueError):
            BlockAckScoreboard(ssn=4096)


class TestBlockAckFrame:
    def test_serialize_parse_roundtrip(self):
        ba = BlockAck(
            receiver=RA, transmitter=TA, ssn=777, bitmap=0xDEADBEEF12345678,
            tid=5,
        )
        parsed = BlockAck.parse(ba.serialize())
        assert parsed == ba

    def test_frame_size(self):
        ba = BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=0)
        assert len(ba.serialize()) == BlockAck.FRAME_BYTES == 32

    def test_bits_extraction(self):
        ba = BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=0b1011)
        assert ba.bits(4) == [True, True, False, True]

    def test_bit_bounds(self):
        ba = BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=0)
        with pytest.raises(ValueError):
            ba.bit(64)
        with pytest.raises(ValueError):
            ba.bits(65)

    def test_corrupted_rejected(self):
        data = bytearray(
            BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=1).serialize()
        )
        data[8] ^= 0x01
        with pytest.raises(ValueError, match="FCS"):
            BlockAck.parse(bytes(data))

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            BlockAck.parse(b"\x00" * 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockAck(receiver=RA, transmitter=TA, ssn=4096, bitmap=0)
        with pytest.raises(ValueError):
            BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=1 << 64)
        with pytest.raises(ValueError):
            BlockAck(receiver=RA, transmitter=TA, ssn=0, bitmap=0, tid=16)


class TestBuildBlockAck:
    def test_mirrors_scoreboard(self):
        sb = BlockAckScoreboard(ssn=200)
        for seq in (200, 202, 204):
            sb.record(seq)
        ba = build_block_ack(sb, RA, TA, tid=1)
        assert ba.ssn == 200
        assert ba.bits(6) == [True, False, True, False, True, False]
        assert ba.tid == 1

    def test_full_window(self):
        sb = BlockAckScoreboard(ssn=0)
        for seq in range(BLOCK_ACK_WINDOW):
            sb.record(seq)
        assert build_block_ack(sb, RA, TA).bitmap == (1 << 64) - 1


class TestBlockAckRequest:
    def test_serialize_size(self):
        bar = BlockAckRequest(receiver=RA, transmitter=TA, ssn=100)
        assert len(bar.serialize()) == BlockAckRequest.FRAME_BYTES == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockAckRequest(receiver=RA, transmitter=TA, ssn=5000)
