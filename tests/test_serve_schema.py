"""JSON codec contract for the job service: specs and results.

The wire schema's invariant is round-trip identity in both directions
(``from_json(to_json(x)) == x`` and canonical payloads survive
``to_json(from_json(p)) == p``), plus strict rejection of anything
malformed — a bad submission must die at the HTTP boundary with a
message naming the offending field, never inside a worker.
"""

import json

import pytest

from repro.runner import RetryPolicy, SweepSpec
from repro.runner.workers import SessionSpec
from repro.serve import (
    JobRequest,
    SchemaError,
    job_request_from_json,
    job_request_to_json,
    result_to_json,
    retry_policy_from_json,
    retry_policy_to_json,
    session_spec_from_json,
    session_spec_to_json,
    sweep_spec_from_json,
    sweep_spec_to_json,
)
from repro.serve.schema import value_to_json

pytestmark = pytest.mark.serve


def rt_sweep(spec):
    return sweep_spec_from_json(sweep_spec_to_json(spec))


class TestSpecRoundTrips:
    def test_sweep_spec_round_trip(self):
        spec = SweepSpec(
            axes={"distance_m": [1.0, 2.5, 7.125], "mode": ["a", "b"]},
            seed=42,
            chunk_size=3,
        )
        assert rt_sweep(spec) == spec

    def test_sweep_spec_survives_wire_json(self):
        spec = SweepSpec(axes={"x": [0.1, 0.2, 0.30000000000000004]})
        wire = json.loads(json.dumps(sweep_spec_to_json(spec)))
        assert sweep_spec_from_json(wire) == spec

    def test_sweep_axis_order_preserved(self):
        spec = SweepSpec(axes={"b": [1], "a": [2]})
        assert list(rt_sweep(spec).axes) == ["b", "a"]

    def test_session_spec_round_trip(self):
        spec = SessionSpec(
            kind="nlos",
            location="below",
            phy_fast_path=False,
            batch_queries=16,
        )
        assert (
            session_spec_from_json(session_spec_to_json(spec)) == spec
        )

    def test_retry_policy_round_trip(self):
        policy = RetryPolicy(
            max_attempts=5,
            timeout_s=2.5,
            backoff_s=0.125,
            backoff_factor=2.0,
            jitter=0.25,
        )
        assert (
            retry_policy_from_json(retry_policy_to_json(policy))
            == policy
        )

    def test_job_request_round_trip_sweep(self):
        request = JobRequest(
            kind="sweep",
            fn="rng_probe",
            sweep=SweepSpec(axes={"i": [1, 2, 3, 4]}, seed=7),
            n_workers=2,
            priority=5,
            retry=RetryPolicy(max_attempts=2),
        )
        payload = job_request_to_json(request)
        assert job_request_from_json(payload) == request
        # canonical payloads are a fixed point
        assert job_request_to_json(job_request_from_json(payload)) == (
            payload
        )

    def test_job_request_round_trip_sessions(self):
        request = JobRequest(
            kind="sessions",
            sessions=SessionSpec(kind="los", distance_m=3.0),
            n_sessions=4,
            queries=20,
            seed=11,
            chunk_size=2,
        )
        payload = job_request_to_json(request)
        assert job_request_from_json(payload) == request
        assert job_request_to_json(job_request_from_json(payload)) == (
            payload
        )


class TestStrictValidation:
    def test_unknown_job_key(self):
        with pytest.raises(SchemaError, match="unknown key"):
            job_request_from_json(
                {"sweep": {"axes": {"x": [1]}}, "bogus": 1}
            )

    def test_bad_kind(self):
        with pytest.raises(SchemaError, match="kind"):
            job_request_from_json({"kind": "mapreduce"})

    def test_sweep_job_rejects_session_keys(self):
        with pytest.raises(SchemaError, match="does not apply"):
            job_request_from_json(
                {"sweep": {"axes": {"x": [1]}}, "n_sessions": 3}
            )

    def test_sessions_job_rejects_sweep_keys(self):
        with pytest.raises(SchemaError, match="does not apply"):
            job_request_from_json(
                {
                    "kind": "sessions",
                    "sessions": {},
                    "n_sessions": 1,
                    "queries": 5,
                    "fn": "rng_probe",
                }
            )

    def test_unregistered_work_function(self):
        with pytest.raises(SchemaError, match="unknown work function"):
            job_request_from_json(
                {"fn": "os.system", "sweep": {"axes": {"x": [1]}}}
            )

    def test_sessions_needs_exactly_one_length(self):
        base = {"kind": "sessions", "sessions": {}, "n_sessions": 2}
        with pytest.raises(SchemaError, match="exactly one"):
            job_request_from_json(base)
        with pytest.raises(SchemaError, match="exactly one"):
            job_request_from_json(
                {**base, "queries": 5, "duration_s": 0.5}
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError, match="seed"):
            sweep_spec_from_json({"axes": {"x": [1]}, "seed": True})

    def test_non_finite_axis_value(self):
        with pytest.raises(SchemaError, match="finite"):
            sweep_spec_from_json(
                {"axes": {"x": [float("inf")]}}
            )

    def test_empty_axes(self):
        with pytest.raises(SchemaError, match="axes"):
            sweep_spec_from_json({"axes": {}})

    def test_axis_values_must_be_list(self):
        with pytest.raises(SchemaError, match="non-empty JSON list"):
            sweep_spec_from_json({"axes": {"x": 3}})

    def test_retry_rejects_unknown_key(self):
        with pytest.raises(SchemaError, match="unknown key"):
            retry_policy_from_json({"attempts": 3})

    def test_retry_rejects_engine_invalid_values(self):
        with pytest.raises(SchemaError, match="max_attempts"):
            retry_policy_from_json({"max_attempts": 0})

    def test_sessions_spec_rejects_bad_bool(self):
        with pytest.raises(SchemaError, match="phy_fast_path"):
            session_spec_from_json({"phy_fast_path": 1})

    def test_fn_kwargs_scalars_only(self):
        with pytest.raises(SchemaError, match="fn_kwargs"):
            job_request_from_json(
                {
                    "sweep": {"axes": {"x": [1]}},
                    "fn_kwargs": {"sim_seconds": [0.1]},
                }
            )

    def test_n_workers_minimum(self):
        with pytest.raises(SchemaError, match="n_workers"):
            job_request_from_json(
                {"sweep": {"axes": {"x": [1]}}, "n_workers": 0}
            )


class TestResultPayload:
    def test_result_payload_is_json_and_exact(self):
        from repro.runner import run_sweep
        from repro.runner.workers import rng_probe

        spec = SweepSpec(axes={"i": [0, 1, 2]}, seed=3)
        result = run_sweep(rng_probe, spec)
        payload = result_to_json(result)
        wire = json.loads(json.dumps(payload))
        assert wire == payload
        assert wire["seed"] == 3
        assert len(wire["points"]) == 3
        # float draws survive the wire bit-for-bit
        assert wire["points"][0]["value"]["draws"] == (
            result.points[0].value["draws"]
        )

    def test_value_to_json_session_stats(self):
        from repro.core.session import SessionStats

        stats = SessionStats(
            bits_sent=62,
            bit_errors=3,
            elapsed_s=0.5,
            queries=1,
            missed_triggers=0,
        )
        payload = value_to_json(stats)
        assert payload["ber"] == stats.ber
        assert payload["throughput_bps"] == stats.throughput_bps

    def test_value_to_json_exotic_degrades_to_repr(self):
        payload = value_to_json(object())
        assert set(payload) == {"repr"}
