"""Unit tests for the convolutional-coding BER model."""

import pytest

from repro.phy.coding import (
    SUPPORTED_RATES,
    coded_bit_error_rate,
    packet_error_rate,
)
from repro.phy.modulation import CodingRate, RATE_1_2, RATE_3_4, RATE_5_6


class TestCodedBer:
    def test_zero_channel_ber_gives_zero(self):
        for rate in SUPPORTED_RATES:
            assert coded_bit_error_rate(rate, 0.0) == 0.0

    def test_coding_gain_at_low_ber(self):
        # At channel BER 1e-3 the decoder must improve things a lot.
        for rate in SUPPORTED_RATES:
            assert coded_bit_error_rate(rate, 1e-3) < 1e-3

    def test_stronger_code_is_better(self):
        p = 0.01
        assert (
            coded_bit_error_rate(RATE_1_2, p)
            < coded_bit_error_rate(RATE_3_4, p)
            < coded_bit_error_rate(RATE_5_6, p)
        )

    def test_monotone_in_channel_ber(self):
        points = [1e-5, 1e-4, 1e-3, 1e-2]
        for rate in SUPPORTED_RATES:
            values = [coded_bit_error_rate(rate, p) for p in points]
            assert all(a <= b for a, b in zip(values, values[1:]))

    def test_clipped_at_half(self):
        for rate in SUPPORTED_RATES:
            assert coded_bit_error_rate(rate, 0.4) <= 0.5

    def test_out_of_range_ber_rejected(self):
        with pytest.raises(ValueError):
            coded_bit_error_rate(RATE_1_2, -0.1)
        with pytest.raises(ValueError):
            coded_bit_error_rate(RATE_1_2, 0.6)

    def test_unsupported_rate_rejected(self):
        with pytest.raises(ValueError):
            coded_bit_error_rate(CodingRate(7, 8), 0.01)

    def test_half_rate_code_very_strong(self):
        # Rate 1/2, d_free = 10: at p = 1e-4 the bound is ~a_d * p^5 scale.
        assert coded_bit_error_rate(RATE_1_2, 1e-4) < 1e-15


class TestPacketErrorRate:
    def test_zero_ber_never_errors(self):
        assert packet_error_rate(0.0, 10_000) == 0.0

    def test_certain_error_at_half(self):
        assert packet_error_rate(0.5, 100) == 1.0

    def test_zero_length_packet(self):
        assert packet_error_rate(0.01, 0) == 0.0

    def test_single_bit(self):
        assert packet_error_rate(0.01, 1) == pytest.approx(0.01)

    def test_matches_direct_formula(self):
        ber, bits = 1e-4, 2000
        expected = 1.0 - (1.0 - ber) ** bits
        assert packet_error_rate(ber, bits) == pytest.approx(expected)

    def test_tiny_ber_long_frame_no_underflow(self):
        per = packet_error_rate(1e-15, 10_000)
        assert per == pytest.approx(1e-11, rel=1e-3)

    def test_monotone_in_length(self):
        pers = [packet_error_rate(1e-3, n) for n in (10, 100, 1000, 10000)]
        assert all(a < b for a, b in zip(pers, pers[1:]))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            packet_error_rate(0.01, -1)
