"""Unit tests for CSI estimation/equalization and the MPDU error model."""

import math

import numpy as np
import pytest

from repro.phy.channel import BackscatterChannel, ChannelGeometry, TagState
from repro.phy.csi import (
    eesm_effective_sinr,
    estimate_csi,
    per_subcarrier_sinr,
)
from repro.phy.error_model import (
    FadingSample,
    LinkErrorModel,
    mpdu_success_probability,
)
from repro.phy.mcs import ht_mcs
from repro.phy.modulation import Modulation


def flat_channel(n=52, gain=1e-3):
    return np.full(n, gain, dtype=complex)


class TestEstimateCsi:
    def test_error_shrinks_with_snr(self):
        rng = np.random.default_rng(0)
        h = flat_channel()
        noisy = estimate_csi(h, 10.0, rng).h
        rng = np.random.default_rng(0)
        clean = estimate_csi(h, 1e6, rng).h
        assert np.mean(np.abs(clean - h)) < np.mean(np.abs(noisy - h))

    def test_training_averaging_helps(self):
        h = flat_channel()
        errs = []
        for n_train in (1, 8):
            rng = np.random.default_rng(1)
            est = estimate_csi(h, 100.0, rng, n_training_symbols=n_train).h
            errs.append(float(np.mean(np.abs(est - h))))
        assert errs[1] < errs[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            estimate_csi(flat_channel(), 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            estimate_csi(
                flat_channel(), 10.0, np.random.default_rng(0),
                n_training_symbols=0,
            )


class TestPerSubcarrierSinr:
    def test_perfect_estimate_noise_limited(self):
        h = flat_channel(gain=1.0)
        sinr = per_subcarrier_sinr(h, h, 100.0)
        assert np.allclose(sinr, 100.0)

    def test_mismatch_caps_sinr(self):
        h = flat_channel(gain=1.0)
        stale = h * 1.1  # 10% amplitude error
        sinr = per_subcarrier_sinr(h, stale, 1e9)
        # Distortion-limited: ~1 / |1/1.1 - 1|^2 ~= 121.
        assert np.allclose(sinr, 121.0, rtol=0.01)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            per_subcarrier_sinr(flat_channel(52), flat_channel(26), 10.0)

    def test_nonpositive_snr_rejected(self):
        h = flat_channel()
        with pytest.raises(ValueError):
            per_subcarrier_sinr(h, h, 0.0)


class TestEesm:
    def test_flat_sinr_is_identity(self):
        sinrs = np.full(52, 100.0)
        for modulation in Modulation:
            assert eesm_effective_sinr(sinrs, modulation) == pytest.approx(
                100.0
            )

    def test_effective_between_min_and_mean(self):
        sinrs = np.array([10.0, 100.0, 1000.0])
        eff = eesm_effective_sinr(sinrs, Modulation.QAM64)
        assert sinrs.min() <= eff <= sinrs.mean()

    def test_deep_fade_drags_effective_down(self):
        clean = np.full(52, 1000.0)
        faded = clean.copy()
        faded[:5] = 1.0
        assert eesm_effective_sinr(
            faded, Modulation.QAM64
        ) < eesm_effective_sinr(clean, Modulation.QAM64)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            eesm_effective_sinr(np.array([]), Modulation.QPSK)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            eesm_effective_sinr(np.array([-1.0]), Modulation.QPSK)


class TestMpduSuccess:
    def test_high_sinr_succeeds(self):
        assert mpdu_success_probability(ht_mcs(7), 1000, 1e5) > 0.999

    def test_low_sinr_fails(self):
        assert mpdu_success_probability(ht_mcs(7), 1000, 1.0) < 0.01

    def test_monotone_in_sinr(self):
        probs = [
            mpdu_success_probability(ht_mcs(5), 1000, 10**x)
            for x in (0.5, 1.0, 1.5, 2.0, 2.5)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_longer_mpdu_more_fragile(self):
        sinr = 10 ** 2.1
        assert mpdu_success_probability(
            ht_mcs(7), 10_000, sinr
        ) < mpdu_success_probability(ht_mcs(7), 100, sinr)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            mpdu_success_probability(ht_mcs(0), 0, 10.0)


def make_model(d_tag=4.0, seed=5, **kwargs):
    geometry = ChannelGeometry.on_line(8.0, d_tag)
    channel = BackscatterChannel(
        geometry=geometry, rng=np.random.default_rng(seed)
    )
    return LinkErrorModel(
        channel=channel,
        mcs=ht_mcs(7),
        rng=np.random.default_rng(seed + 1),
        **kwargs,
    )


class TestLinkErrorModel:
    def test_received_snr_plausible(self):
        model = make_model()
        # 15 dBm - ~58 dB FSPL - (-95 dBm floor) ~= 52 dB.
        assert model.received_snr_db(TagState.REFLECT_0) == pytest.approx(
            52.0, abs=2.0
        )

    def test_idle_subframe_high_sinr(self):
        model = make_model()
        fading = model.sample_fading()
        sinr = model.subframe_effective_sinr(
            TagState.REFLECT_0, TagState.REFLECT_0, fading
        )
        assert 10 * math.log10(sinr) > 22.0

    def test_flip_subframe_low_sinr(self):
        model = make_model()
        fading = model.sample_fading()
        idle = model.subframe_effective_sinr(
            TagState.REFLECT_0, TagState.REFLECT_0, fading
        )
        flipped = model.subframe_effective_sinr(
            TagState.REFLECT_0, TagState.REFLECT_180, fading
        )
        assert flipped < idle / 10.0

    def test_corruption_succeeds_with_high_probability(self):
        model = make_model(d_tag=1.0)
        fading = FadingSample(
            direct_gain=model.channel.direct_gain, tag_fading=1.0 + 0j
        )
        p = model.subframe_success_probability(
            1000, TagState.REFLECT_0, TagState.REFLECT_180, fading
        )
        assert p < 0.05

    def test_idle_subframe_decodes(self):
        model = make_model()
        fading = FadingSample(
            direct_gain=model.channel.direct_gain, tag_fading=1.0 + 0j
        )
        p = model.subframe_success_probability(
            1000, TagState.REFLECT_0, TagState.REFLECT_0, fading
        )
        assert p > 0.99

    def test_mismatch_gain_zero_weakens_corruption(self):
        strong = make_model(mismatch_gain_db=22.0)
        weak = make_model(mismatch_gain_db=0.0)
        fading = FadingSample(
            direct_gain=strong.channel.direct_gain, tag_fading=1.0 + 0j
        )
        assert strong.subframe_effective_sinr(
            TagState.REFLECT_0, TagState.REFLECT_180, fading,
            include_estimation_noise=False,
        ) < weak.subframe_effective_sinr(
            TagState.REFLECT_0, TagState.REFLECT_180, fading,
            include_estimation_noise=False,
        )

    def test_outcome_is_bernoulli(self):
        model = make_model()
        outcomes = {
            model.subframe_outcome(
                1000, TagState.REFLECT_0, TagState.REFLECT_180
            )
            for _ in range(50)
        }
        assert outcomes <= {True, False}

    def test_tx_referred_snr(self):
        model = make_model()
        # 15 dBm over a -95 dBm floor: 110 dB.
        assert 10 * math.log10(
            model.tx_referred_snr_linear
        ) == pytest.approx(110.0, abs=0.5)
