"""Job store / queue / executor-pool lifecycle and concurrency tests.

Everything here drives the service's asyncio internals directly (no
HTTP): the submit/cancel/complete state machine, clients racing the
same job id, priority-queue fairness under a saturated pool, and the
server-restart resume path, which must reproduce an uninterrupted
run's values bit-for-bit from the engine checkpoint.
"""

import asyncio

import pytest

from repro.runner import SweepSpec
from repro.runner.workers import rng_probe
from repro.serve import (
    TERMINAL_STATES,
    ExecutorPool,
    JobNotFound,
    JobQueue,
    JobRequest,
    JobStateError,
    JobStore,
    JobStoreFull,
    execute_request,
    result_to_json,
)

pytestmark = pytest.mark.serve


def sweep_request(n_units=6, seed=3, chunk_size=2, priority=0):
    return JobRequest(
        kind="sweep",
        fn="rng_probe",
        sweep=SweepSpec(
            axes={"i": list(range(n_units))},
            seed=seed,
            chunk_size=chunk_size,
        ),
        priority=priority,
    )


async def wait_terminal(store, job_id, timeout=60.0):
    """Block until a job reaches a terminal state (via its events)."""

    async def follow():
        async for _ in store.subscribe(job_id):
            pass
        return await store.get(job_id)

    return await asyncio.wait_for(follow(), timeout)


class TestStateMachine:
    def test_submit_starts_queued(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            assert job.state == "queued"
            assert job.id == "job-000001"
            assert [e.event for e in job.events] == ["state"]
            return job

        asyncio.run(main())

    def test_legal_path_to_completed(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            await store.advance(job.id, "running")
            result = execute_request(job.request)
            done = await store.complete(job.id, result)
            assert done.state == "completed"
            assert done.result["points"]
            event_kinds = [e.event for e in done.events]
            assert event_kinds[-1] == "state"
            assert "metrics" in event_kinds

        asyncio.run(main())

    def test_illegal_transitions_raise(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            result = execute_request(job.request)
            with pytest.raises(JobStateError):
                await store.complete(job.id, result)  # queued -> done
            await store.advance(job.id, "running")
            with pytest.raises(JobStateError):
                await store.advance(job.id, "queued")
            await store.advance(job.id, "failed", error="boom")
            with pytest.raises(JobStateError):
                await store.advance(job.id, "running")

        asyncio.run(main())

    def test_cancel_semantics(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            cancelled = await store.cancel(job.id)
            assert cancelled.state == "cancelled"
            # idempotent once cancelled
            again = await store.cancel(job.id)
            assert again.state == "cancelled"
            # but cancelling a *completed* job is a state error
            other = await store.submit(sweep_request())
            await store.advance(other.id, "running")
            await store.complete(
                other.id, execute_request(other.request)
            )
            with pytest.raises(JobStateError):
                await store.cancel(other.id)

        asyncio.run(main())

    def test_cancel_running_is_deferred(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            await store.advance(job.id, "running")
            pending = await store.cancel(job.id)
            assert pending.state == "running"
            assert pending.cancel_requested
            assert pending.events[-1].event == "cancelling"
            done = await store.advance(job.id, "cancelled")
            assert done.state == "cancelled"

        asyncio.run(main())

    def test_delete_requires_terminal(self):
        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            with pytest.raises(JobStateError):
                await store.delete(job.id)
            await store.cancel(job.id)
            await store.delete(job.id)
            with pytest.raises(JobNotFound):
                await store.get(job.id)

        asyncio.run(main())

    def test_max_jobs_enforced(self):
        async def main():
            store = JobStore(max_jobs=1)
            await store.submit(sweep_request())
            with pytest.raises(JobStoreFull):
                await store.submit(sweep_request())

        asyncio.run(main())


class TestConcurrency:
    def test_two_clients_racing_cancel_same_job(self):
        """Both cancels succeed; exactly one state transition happens."""

        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())
            first, second = await asyncio.gather(
                store.cancel(job.id), store.cancel(job.id)
            )
            assert first.state == second.state == "cancelled"
            final = await store.get(job.id)
            transitions = [
                e for e in final.events if e.event == "state"
            ]
            assert [e.data["state"] for e in transitions] == [
                "queued",
                "cancelled",
            ]

        asyncio.run(main())

    def test_cancel_races_delete(self):
        """cancel + delete interleavings never corrupt the store."""

        async def main():
            store = JobStore()
            job = await store.submit(sweep_request())

            async def cancel_then_delete():
                await store.cancel(job.id)
                await store.delete(job.id)

            results = await asyncio.gather(
                cancel_then_delete(),
                store.cancel(job.id),
                return_exceptions=True,
            )
            # Whatever interleaving ran, the job is gone afterwards
            # and no exception other than the legal not-found /
            # state errors surfaced.
            for outcome in results:
                assert outcome is None or isinstance(
                    outcome, (JobNotFound, JobStateError, KeyError)
                )
            with pytest.raises(JobNotFound):
                await store.get(job.id)

        asyncio.run(main())

    def test_queue_fairness_priority_then_fifo(self):
        """One slot, four jobs: high priority first, FIFO within."""

        async def main():
            store = JobStore()
            queue = JobQueue()
            requests = [
                sweep_request(seed=1, priority=0),
                sweep_request(seed=2, priority=5),
                sweep_request(seed=3, priority=0),
                sweep_request(seed=4, priority=5),
            ]
            jobs = []
            for request in requests:
                job = await store.submit(request)
                jobs.append(job)
                await queue.put(job)
            assert queue.depth == 4
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            for job in jobs:
                await wait_terminal(store, job.id)
            await pool.stop()
            expected = [
                jobs[1].id,  # priority 5, submitted first
                jobs[3].id,  # priority 5, submitted second
                jobs[0].id,  # priority 0, submitted first
                jobs[2].id,
            ]
            assert store.dispatch_log == expected

        asyncio.run(main())

    def test_lazy_removal_skips_cancelled_jobs(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            jobs = [
                await store.submit(sweep_request(seed=s))
                for s in (1, 2, 3)
            ]
            for job in jobs:
                await queue.put(job)
            await queue.remove(jobs[1].id)
            assert queue.depth == 2
            assert await queue.get() == jobs[0].id
            assert await queue.get() == jobs[2].id
            assert queue.depth == 0

        asyncio.run(main())


class TestPoolExecution:
    def test_pool_completes_job_bit_identical_to_direct_run(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            job = await store.submit(sweep_request(n_units=8))
            await queue.put(job)
            pool = ExecutorPool(store, queue, slots=2)
            await pool.start()
            done = await wait_terminal(store, job.id)
            await pool.stop()
            assert done.state == "completed"
            direct = result_to_json(execute_request(job.request))
            assert done.result == direct
            # every chunk reported, in completion order, none resumed
            chunk_events = [
                e.data for e in done.events if e.event == "chunk"
            ]
            assert len(chunk_events) == 4
            assert [e["chunks_done"] for e in chunk_events] == [
                1, 2, 3, 4,
            ]
            assert not any(e["resumed"] for e in chunk_events)

        asyncio.run(main())

    def test_pool_survives_failing_job(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            # nlos_session_stats with a bogus location raises inside
            # the engine; the slot must mark the job failed and then
            # complete the next job normally.
            bad = await store.submit(
                JobRequest(
                    kind="sweep",
                    fn="nlos_session_stats",
                    sweep=SweepSpec(
                        axes={"location": ["nowhere"]}, seed=0
                    ),
                )
            )
            good = await store.submit(sweep_request())
            await queue.put(bad)
            await queue.put(good)
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            bad_done = await wait_terminal(store, bad.id)
            good_done = await wait_terminal(store, good.id)
            await pool.stop()
            assert bad_done.state == "failed"
            assert bad_done.error
            assert good_done.state == "completed"

        asyncio.run(main())

    def test_cooperative_cancel_stops_at_chunk_boundary(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            job = await store.submit(sweep_request(n_units=10))
            # Cancel lands while the job is conceptually mid-run: the
            # flag is set before the pool picks the job up, so the
            # first chunk-boundary check trips it.
            job.cancel_requested = True
            await queue.put(job)
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            done = await wait_terminal(store, job.id)
            await pool.stop()
            assert done.state == "cancelled"
            assert done.chunks_done < 5

        asyncio.run(main())


class TestRestartResume:
    def test_restart_resumes_bit_identical(self, tmp_path, chaos):
        """Kill-and-restart at the store level.

        Store #1 accepts the job, then the 'server' dies mid-run
        (simulated by running the job's spec against its checkpoint
        path with a permanent injected crash).  Store #2 on the same
        spill dir recovers the job, resumes from the checkpoint, and
        must produce exactly the values an uninterrupted run gives.
        """
        spill = str(tmp_path / "spill")
        request = sweep_request(n_units=8, seed=17, chunk_size=2)

        async def submit_only():
            store = JobStore(spill)
            job = await store.submit(request)
            return store.checkpoint_path(job.id), job.id

        checkpoint, job_id = asyncio.run(submit_only())

        # the crash: chunks 0-1 complete and spill, chunk 2 dies
        chaos.partial_checkpoint(
            rng_probe, request.sweep, checkpoint, crash_unit=5
        )

        async def restart_and_finish():
            store = JobStore(spill)
            queue = JobQueue()
            recovered = store.load_jobs()
            assert [job.id for job in recovered] == [job_id]
            assert recovered[0].recovered
            for job in recovered:
                await queue.put(job)
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            done = await wait_terminal(store, job_id)
            await pool.stop()
            return done

        done = asyncio.run(restart_and_finish())
        assert done.state == "completed"
        # chunks 0-1 finished before the crash; the scheduler may have
        # drained later chunks too, but the crashed chunk itself can
        # never have spilled, so at least one chunk was recomputed.
        assert 2 <= done.result["resumed_chunks"] <= 3
        resumed_events = [
            e.data
            for e in done.events
            if e.event == "chunk" and e.data["resumed"]
        ]
        assert len(resumed_events) == done.result["resumed_chunks"]
        direct = result_to_json(execute_request(request))
        assert done.result["points"] == direct["points"]

    def test_completed_jobs_reload_with_results(self, tmp_path):
        spill = str(tmp_path / "spill")
        request = sweep_request()

        async def run_once():
            store = JobStore(spill)
            queue = JobQueue()
            job = await store.submit(request)
            await queue.put(job)
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            done = await wait_terminal(store, job.id)
            await pool.stop()
            return done

        done = asyncio.run(run_once())

        async def reload():
            store = JobStore(spill)
            pending = store.load_jobs()
            assert pending == []
            return await store.get(done.id)

        reloaded = asyncio.run(reload())
        assert reloaded.state == "completed"
        assert reloaded.result == done.result
        # Progress counters survive the restart, so a reloaded summary
        # still reports how the job ran.
        assert reloaded.chunks_done == done.chunks_done
        assert reloaded.n_chunks == done.n_chunks
        assert reloaded.resumed_chunks == done.resumed_chunks


class TestWarmTransportPool:
    """Tier-4 serve knobs: shm transport and per-slot warm pools."""

    def test_execute_request_codec_invariant(self):
        request = sweep_request(n_units=6)
        reference = result_to_json(execute_request(request))
        for transport in ("pickle", "shm", "auto"):
            served = result_to_json(
                execute_request(request, transport=transport)
            )
            assert served == reference

    def test_session_jobs_on_shared_warm_pool_bit_identical(self):
        from repro.runner import WarmPool
        from repro.runner.workers import (
            SessionSpec,
            reset_warm_caches,
        )

        request = JobRequest(
            kind="sessions",
            sessions=SessionSpec(distance_m=3.0, warm=True),
            n_sessions=3,
            queries=6,
            seed=2,
            chunk_size=1,
        )
        def physics(payload):
            # Drop pure scheduling metadata: the executor and codec a
            # job ran on may differ, its values and points must not.
            return {
                key: value
                for key, value in payload.items()
                if key not in ("executor", "transport")
            }

        reset_warm_caches()
        reference = result_to_json(execute_request(request))
        with WarmPool(1) as pool:
            first = result_to_json(
                execute_request(request, transport="auto", pool=pool)
            )
            second = result_to_json(
                execute_request(request, transport="auto", pool=pool)
            )
        assert physics(first) == physics(reference)
        assert physics(second) == physics(reference)
        reset_warm_caches()

    def test_pool_warm_slots_complete_jobs_and_close(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            jobs = []
            for _ in range(2):
                job = await store.submit(sweep_request(n_units=6))
                await queue.put(job)
                jobs.append(job)
            pool = ExecutorPool(
                store,
                queue,
                slots=1,
                transport="auto",
                warm_workers=1,
            )
            await pool.start()
            done = [await wait_terminal(store, j.id) for j in jobs]
            slot_pools = list(pool._slot_pools.values())
            # One slot -> one lazily created warm pool, shared by both
            # jobs (that sharing is the whole point of the fast path).
            assert len(slot_pools) == 1
            assert not slot_pools[0].closed
            await pool.stop()
            assert slot_pools[0].closed
            assert pool._slot_pools == {}
            direct = result_to_json(execute_request(jobs[0].request))

            def physics(payload):
                return {
                    key: value
                    for key, value in payload.items()
                    if key not in ("executor", "transport")
                }

            for job in done:
                assert job.state == "completed"
                assert physics(job.result) == physics(direct)

        asyncio.run(main())

    def test_zero_warm_workers_keeps_classic_path(self):
        async def main():
            store = JobStore()
            queue = JobQueue()
            job = await store.submit(sweep_request(n_units=4))
            await queue.put(job)
            pool = ExecutorPool(store, queue, slots=1)
            await pool.start()
            done = await wait_terminal(store, job.id)
            assert pool._slot_pools == {}
            await pool.stop()
            assert done.state == "completed"

        asyncio.run(main())

    def test_executor_pool_validates_warm_workers(self):
        with pytest.raises(ValueError):
            ExecutorPool(JobStore(), JobQueue(), warm_workers=-1)
