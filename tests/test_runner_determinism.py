"""The engine's determinism contract, locked down.

``run_sweep(seed=s, n_workers=1)`` must equal ``n_workers=4``
bit-for-bit — BER values, received bitmaps, stats — for any sweep
shape, chunking, or executor choice; two runs with the same seed must
be identical; different seeds must differ.  These tests are the
contract's enforcement: if per-unit seeding ever picks up a dependence
on scheduling (shared generators, fork-time stream duplication,
completion-order assembly), they fail.
"""


import numpy as np
import pytest

from repro.core.session import MeasurementSession
from repro.runner import SweepSpec, UnitContext, run_sessions, run_sweep
from repro.seeding import child_sequence
from repro.sim.scenario import los_scenario

pytestmark = pytest.mark.runner


def rng_fingerprint(ctx: UnitContext) -> dict:
    """Pure-RNG work unit: raw draws expose any stream coupling."""
    draws = ctx.rng().integers(0, 2**31, size=8)
    more = ctx.rng(stream=3).random(4)
    return {
        "index": ctx.index,
        "seed": ctx.seed,
        "draws": draws.tolist(),
        "floats": more.tolist(),
    }


def session_unit(ctx: UnitContext) -> dict:
    """A real measurement session: BER, bitmaps and stats for one unit."""
    distance = ctx.parameters["distance_m"]
    system, _ = los_scenario(distance, seed=ctx.seed)
    session = MeasurementSession(system, rng=ctx.rng(1))
    stats = session.run_queries(4)
    return {
        "ber": stats.ber,
        "stats": (
            stats.bits_sent,
            stats.bit_errors,
            stats.elapsed_s,
            stats.queries,
            stats.missed_triggers,
        ),
        "bitmaps": [r.block_ack.bitmap for r in session.results],
        "received": [r.received_bits for r in session.results],
    }


def build_session(ctx: UnitContext) -> MeasurementSession:
    system, _ = los_scenario(2.0, seed=ctx.seed)
    return MeasurementSession(system, rng=ctx.rng(1))


SWEEP_SHAPES = [
    {"x": list(range(6))},
    {"x": [0, 1, 2], "y": ["a", "b"]},
    {"x": [1], "y": [2], "z": [3, 4, 5, 6, 7]},
]


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("axes", SWEEP_SHAPES)
    def test_rng_streams_identical_1_vs_4_workers(self, axes):
        spec = SweepSpec(axes=axes, seed=42)
        serial = run_sweep(rng_fingerprint, spec, n_workers=1)
        parallel = run_sweep(
            rng_fingerprint, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values
        assert [p.parameters for p in serial.points] == [
            p.parameters for p in parallel.points
        ]

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_chunking_cannot_change_results(self, chunk_size):
        spec = SweepSpec(axes={"x": list(range(7))}, seed=9)
        baseline = run_sweep(rng_fingerprint, spec, n_workers=1)
        chunked = run_sweep(
            rng_fingerprint,
            spec,
            n_workers=3,
            chunk_size=chunk_size,
            executor="process",
        )
        assert baseline.values == chunked.values
        assert chunked.chunk_size == chunk_size

    def test_full_session_physics_identical_1_vs_4_workers(self):
        """BER, block-ACK bitmaps and SessionStats, bit-for-bit."""
        spec = SweepSpec(axes={"distance_m": [1.0, 4.0, 7.0]}, seed=5)
        serial = run_sweep(session_unit, spec, n_workers=1)
        parallel = run_sweep(
            session_unit, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values

    def test_run_sessions_identical_1_vs_4_workers(self):
        serial = run_sessions(
            build_session, 6, queries=3, seed=21, n_workers=1
        )
        parallel = run_sessions(
            build_session,
            6,
            queries=3,
            seed=21,
            n_workers=4,
            executor="process",
        )
        assert serial.values == parallel.values


class TestSeedSemantics:
    def test_same_seed_same_results(self):
        spec = SweepSpec(axes={"x": list(range(5))}, seed=7)
        a = run_sweep(rng_fingerprint, spec, n_workers=1)
        b = run_sweep(rng_fingerprint, spec, n_workers=1)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        a = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(5))}, seed=1),
            n_workers=1,
        )
        b = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(5))}, seed=2),
            n_workers=1,
        )
        assert a.values != b.values

    def test_unit_streams_mutually_independent(self):
        """No two units of one sweep may share a stream."""
        result = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(8))}, seed=0),
            n_workers=1,
        )
        draw_sets = [tuple(v["draws"]) for v in result.values]
        assert len(set(draw_sets)) == len(draw_sets)

    def test_child_sequence_is_sibling_count_invariant(self):
        """The SeedSequence property the whole contract rests on."""
        root = np.random.SeedSequence(13)
        spawned = root.spawn(10)
        for index in (0, 3, 9):
            direct = child_sequence(13, index)
            assert (
                direct.generate_state(4).tolist()
                == spawned[index].generate_state(4).tolist()
            )


@pytest.mark.slow
class TestDeterminismBroad:
    """Wider shapes and worker counts; the quick suite covers the core."""

    @pytest.mark.parametrize("n_workers", [2, 3, 4, 6])
    @pytest.mark.parametrize(
        "axes",
        [
            {"x": list(range(17))},
            {"x": list(range(4)), "y": list(range(5))},
        ],
    )
    def test_many_layouts(self, n_workers, axes):
        spec = SweepSpec(axes=axes, seed=3)
        baseline = run_sweep(rng_fingerprint, spec, n_workers=1)
        layout = run_sweep(
            rng_fingerprint, spec, n_workers=n_workers, executor="process"
        )
        assert baseline.values == layout.values

    def test_long_session_sweep_identical(self):
        spec = SweepSpec(
            axes={"distance_m": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]},
            seed=31,
        )
        serial = run_sweep(session_unit, spec, n_workers=1)
        parallel = run_sweep(
            session_unit, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values
