"""The engine's determinism contract, locked down.

``run_sweep(seed=s, n_workers=1)`` must equal ``n_workers=4``
bit-for-bit — BER values, received bitmaps, stats — for any sweep
shape, chunking, or executor choice; two runs with the same seed must
be identical; different seeds must differ.  These tests are the
contract's enforcement: if per-unit seeding ever picks up a dependence
on scheduling (shared generators, fork-time stream duplication,
completion-order assembly), they fail.
"""


import numpy as np
import pytest

from repro.core.session import MeasurementSession
from repro.runner import SweepSpec, UnitContext, run_sessions, run_sweep
from repro.seeding import child_sequence
from repro.sim.scenario import los_scenario

pytestmark = pytest.mark.runner


def rng_fingerprint(ctx: UnitContext) -> dict:
    """Pure-RNG work unit: raw draws expose any stream coupling."""
    draws = ctx.rng().integers(0, 2**31, size=8)
    more = ctx.rng(stream=3).random(4)
    return {
        "index": ctx.index,
        "seed": ctx.seed,
        "draws": draws.tolist(),
        "floats": more.tolist(),
    }


def session_unit(ctx: UnitContext) -> dict:
    """A real measurement session: BER, bitmaps and stats for one unit."""
    distance = ctx.parameters["distance_m"]
    system, _ = los_scenario(distance, seed=ctx.seed)
    session = MeasurementSession(system, rng=ctx.rng(1))
    stats = session.run_queries(4)
    return {
        "ber": stats.ber,
        "stats": (
            stats.bits_sent,
            stats.bit_errors,
            stats.elapsed_s,
            stats.queries,
            stats.missed_triggers,
        ),
        "bitmaps": [r.block_ack.bitmap for r in session.results],
        "received": [r.received_bits for r in session.results],
    }


def build_session(ctx: UnitContext) -> MeasurementSession:
    system, _ = los_scenario(2.0, seed=ctx.seed)
    return MeasurementSession(system, rng=ctx.rng(1))


SWEEP_SHAPES = [
    {"x": list(range(6))},
    {"x": [0, 1, 2], "y": ["a", "b"]},
    {"x": [1], "y": [2], "z": [3, 4, 5, 6, 7]},
]


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("axes", SWEEP_SHAPES)
    def test_rng_streams_identical_1_vs_4_workers(self, axes):
        spec = SweepSpec(axes=axes, seed=42)
        serial = run_sweep(rng_fingerprint, spec, n_workers=1)
        parallel = run_sweep(
            rng_fingerprint, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values
        assert [p.parameters for p in serial.points] == [
            p.parameters for p in parallel.points
        ]

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_chunking_cannot_change_results(self, chunk_size):
        spec = SweepSpec(axes={"x": list(range(7))}, seed=9)
        baseline = run_sweep(rng_fingerprint, spec, n_workers=1)
        chunked = run_sweep(
            rng_fingerprint,
            spec,
            n_workers=3,
            chunk_size=chunk_size,
            executor="process",
        )
        assert baseline.values == chunked.values
        assert chunked.chunk_size == chunk_size

    def test_full_session_physics_identical_1_vs_4_workers(self):
        """BER, block-ACK bitmaps and SessionStats, bit-for-bit."""
        spec = SweepSpec(axes={"distance_m": [1.0, 4.0, 7.0]}, seed=5)
        serial = run_sweep(session_unit, spec, n_workers=1)
        parallel = run_sweep(
            session_unit, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values

    def test_run_sessions_identical_1_vs_4_workers(self):
        serial = run_sessions(
            build_session, 6, queries=3, seed=21, n_workers=1
        )
        parallel = run_sessions(
            build_session,
            6,
            queries=3,
            seed=21,
            n_workers=4,
            executor="process",
        )
        assert serial.values == parallel.values


class TestSeedSemantics:
    def test_same_seed_same_results(self):
        spec = SweepSpec(axes={"x": list(range(5))}, seed=7)
        a = run_sweep(rng_fingerprint, spec, n_workers=1)
        b = run_sweep(rng_fingerprint, spec, n_workers=1)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        a = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(5))}, seed=1),
            n_workers=1,
        )
        b = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(5))}, seed=2),
            n_workers=1,
        )
        assert a.values != b.values

    def test_unit_streams_mutually_independent(self):
        """No two units of one sweep may share a stream."""
        result = run_sweep(
            rng_fingerprint,
            SweepSpec(axes={"x": list(range(8))}, seed=0),
            n_workers=1,
        )
        draw_sets = [tuple(v["draws"]) for v in result.values]
        assert len(set(draw_sets)) == len(draw_sets)

    def test_child_sequence_is_sibling_count_invariant(self):
        """The SeedSequence property the whole contract rests on."""
        root = np.random.SeedSequence(13)
        spawned = root.spawn(10)
        for index in (0, 3, 9):
            direct = child_sequence(13, index)
            assert (
                direct.generate_state(4).tolist()
                == spawned[index].generate_state(4).tolist()
            )


@pytest.mark.slow
class TestDeterminismBroad:
    """Wider shapes and worker counts; the quick suite covers the core."""

    @pytest.mark.parametrize("n_workers", [2, 3, 4, 6])
    @pytest.mark.parametrize(
        "axes",
        [
            {"x": list(range(17))},
            {"x": list(range(4)), "y": list(range(5))},
        ],
    )
    def test_many_layouts(self, n_workers, axes):
        spec = SweepSpec(axes=axes, seed=3)
        baseline = run_sweep(rng_fingerprint, spec, n_workers=1)
        layout = run_sweep(
            rng_fingerprint, spec, n_workers=n_workers, executor="process"
        )
        assert baseline.values == layout.values

    def test_long_session_sweep_identical(self):
        spec = SweepSpec(
            axes={"distance_m": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]},
            seed=31,
        )
        serial = run_sweep(session_unit, spec, n_workers=1)
        parallel = run_sweep(
            session_unit, spec, n_workers=4, executor="process"
        )
        assert serial.values == parallel.values


# -- wire-schema round trips (hypothesis) --------------------------------
#
# The job service ships these specs over HTTP, so the determinism
# contract extends to the wire: object -> JSON -> object -> JSON must
# be the identity for every valid spec, or a served sweep could drift
# from the direct run it must reproduce bit-for-bit.

import json as _json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import RetryPolicy
from repro.runner.workers import SessionSpec
from repro.serve import (
    WORK_FUNCTIONS,
    JobRequest,
    job_request_from_json,
    job_request_to_json,
    retry_policy_from_json,
    retry_policy_to_json,
    session_spec_from_json,
    session_spec_to_json,
    sweep_spec_from_json,
    sweep_spec_to_json,
)

json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)

sweep_specs = st.builds(
    SweepSpec,
    axes=st.dictionaries(
        st.text(min_size=1, max_size=6),
        st.lists(json_scalars, min_size=1, max_size=4),
        min_size=1,
        max_size=3,
    ),
    seed=st.integers(min_value=-(2**62), max_value=2**62),
    chunk_size=st.one_of(st.none(), st.integers(1, 64)),
)

retry_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 10),
    timeout_s=st.one_of(
        st.none(),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    ),
    backoff_s=st.floats(min_value=0.0, max_value=10.0),
    backoff_factor=st.floats(min_value=1.0, max_value=8.0),
    backoff_max_s=st.floats(min_value=0.0, max_value=100.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    breaker_failures=st.integers(1, 5),
)

session_specs = st.builds(
    SessionSpec,
    kind=st.sampled_from(["los", "nlos"]),
    distance_m=st.floats(allow_nan=False, allow_infinity=False),
    location=st.text(min_size=1, max_size=8),
    phy_fast_path=st.booleans(),
    session_fast_path=st.booleans(),
    batch_queries=st.integers(1, 128),
    data_stream=st.integers(1, 8),
)

sweep_job_requests = st.builds(
    JobRequest,
    kind=st.just("sweep"),
    fn=st.sampled_from(sorted(WORK_FUNCTIONS)),
    fn_kwargs=st.dictionaries(
        st.text(min_size=1, max_size=6), json_scalars, max_size=2
    ),
    sweep=sweep_specs,
    n_workers=st.integers(1, 8),
    priority=st.integers(-5, 5),
    retry=st.one_of(st.none(), retry_policies),
)


@st.composite
def session_job_requests(draw):
    by_queries = draw(st.booleans())
    return JobRequest(
        kind="sessions",
        sessions=draw(session_specs),
        n_sessions=draw(st.integers(1, 16)),
        queries=draw(st.integers(1, 100)) if by_queries else None,
        duration_s=(
            None
            if by_queries
            else draw(st.floats(min_value=1e-3, max_value=10.0))
        ),
        seed=draw(st.integers(min_value=-(2**62), max_value=2**62)),
        n_workers=draw(st.integers(1, 8)),
        chunk_size=draw(st.one_of(st.none(), st.integers(1, 32))),
        priority=draw(st.integers(-5, 5)),
        retry=draw(st.one_of(st.none(), retry_policies)),
    )


def wire(payload):
    """One HTTP hop: serialize and re-parse the JSON payload."""
    return _json.loads(_json.dumps(payload))


class TestWireSchemaRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(spec=sweep_specs)
    def test_sweep_spec_identity(self, spec):
        payload = sweep_spec_to_json(spec)
        assert sweep_spec_from_json(wire(payload)) == spec
        assert sweep_spec_to_json(sweep_spec_from_json(payload)) == (
            payload
        )

    @settings(max_examples=50, deadline=None)
    @given(spec=session_specs)
    def test_session_spec_identity(self, spec):
        payload = session_spec_to_json(spec)
        assert session_spec_from_json(wire(payload)) == spec
        assert session_spec_to_json(
            session_spec_from_json(payload)
        ) == payload

    @settings(max_examples=50, deadline=None)
    @given(policy=retry_policies)
    def test_retry_policy_identity(self, policy):
        payload = retry_policy_to_json(policy)
        assert retry_policy_from_json(wire(payload)) == policy
        assert retry_policy_to_json(
            retry_policy_from_json(payload)
        ) == payload

    @settings(max_examples=50, deadline=None)
    @given(request=sweep_job_requests)
    def test_sweep_job_request_identity(self, request):
        payload = job_request_to_json(request)
        assert job_request_from_json(wire(payload)) == request
        assert job_request_to_json(
            job_request_from_json(payload)
        ) == payload

    @settings(max_examples=50, deadline=None)
    @given(request=session_job_requests())
    def test_session_job_request_identity(self, request):
        payload = job_request_to_json(request)
        assert job_request_from_json(wire(payload)) == request
        assert job_request_to_json(
            job_request_from_json(payload)
        ) == payload
