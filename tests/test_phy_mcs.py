"""Unit tests for the MCS tables against published 802.11n/ac rates."""

import pytest

from repro.phy.mcs import (
    MCS_MIN_SNR_DB,
    Mcs,
    highest_reliable_mcs,
    ht_mcs,
    vht_mcs,
)
from repro.phy.modulation import Modulation


class TestHtRates:
    """Published 802.11n 20 MHz long-GI single-stream rates (Mb/s)."""

    EXPECTED_20_LGI = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0]

    @pytest.mark.parametrize("index", range(8))
    def test_20mhz_long_gi(self, index):
        rate = ht_mcs(index).data_rate_bps() / 1e6
        assert rate == pytest.approx(self.EXPECTED_20_LGI[index])

    def test_mcs7_short_gi(self):
        assert ht_mcs(7).data_rate_bps(short_gi=True) / 1e6 == pytest.approx(
            72.2, abs=0.05
        )

    def test_mcs15_two_streams(self):
        # HT MCS 15 = two streams of MCS 7: 130 Mb/s at 20 MHz LGI.
        assert ht_mcs(15).data_rate_bps() / 1e6 == pytest.approx(130.0)

    def test_mcs31_four_streams(self):
        assert ht_mcs(31).data_rate_bps() / 1e6 == pytest.approx(260.0)

    def test_40mhz_mcs7(self):
        assert ht_mcs(7).data_rate_bps(40) / 1e6 == pytest.approx(135.0)

    def test_ht_index_roundtrip(self):
        for index in range(32):
            assert ht_mcs(index).ht_index == index

    @pytest.mark.parametrize("bad", [-1, 32, 100])
    def test_invalid_ht_index(self, bad):
        with pytest.raises(ValueError):
            ht_mcs(bad)


class TestVhtRates:
    def test_vht_mcs9_80mhz_3ss(self):
        # The famous 1300 Mb/s: VHT MCS 9, 80 MHz, 3 streams, short GI.
        rate = vht_mcs(9, 3).data_rate_bps(80, short_gi=True) / 1e6
        assert rate == pytest.approx(1300.0)

    def test_vht_mcs8_modulation(self):
        assert vht_mcs(8).modulation is Modulation.QAM256

    def test_vht_mcs9_160mhz(self):
        rate = vht_mcs(9, 1).data_rate_bps(160, short_gi=True) / 1e6
        assert rate == pytest.approx(866.7, abs=0.1)

    @pytest.mark.parametrize("bad", [-1, 10])
    def test_invalid_vht_index(self, bad):
        with pytest.raises(ValueError):
            vht_mcs(bad)

    def test_ht_index_rejects_vht_only(self):
        with pytest.raises(ValueError):
            _ = vht_mcs(9).ht_index


class TestMcsValidation:
    def test_bad_stream_count(self):
        with pytest.raises(ValueError):
            vht_mcs(0, spatial_streams=5)
        with pytest.raises(ValueError):
            vht_mcs(0, spatial_streams=0)

    def test_data_bits_per_symbol_mcs7(self):
        # 52 subcarriers * 6 bits * 5/6 = 260.
        assert ht_mcs(7).data_bits_per_symbol() == pytest.approx(260.0)


class TestRateSelection:
    def test_low_snr_picks_mcs0(self):
        assert highest_reliable_mcs(0.0).index == 0

    def test_high_snr_picks_mcs7(self):
        assert highest_reliable_mcs(50.0).index == 7

    def test_vht_allowed_reaches_mcs9(self):
        assert highest_reliable_mcs(50.0, allow_vht=True).index == 9

    def test_margin_is_respected(self):
        # Just at the MCS5 threshold + default margin.
        snr = MCS_MIN_SNR_DB[5] + 3.0
        assert highest_reliable_mcs(snr).index == 5
        assert highest_reliable_mcs(snr - 0.1).index == 4

    def test_monotone_in_snr(self):
        picks = [highest_reliable_mcs(float(db)).index for db in range(0, 40)]
        assert all(a <= b for a, b in zip(picks, picks[1:]))

    def test_stream_count_propagates(self):
        assert highest_reliable_mcs(30.0, spatial_streams=3).spatial_streams == 3
