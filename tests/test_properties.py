"""Property-based tests (hypothesis) on core data structures and invariants."""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoder import LineCode, TagEncoder
from repro.core.fec import (
    BlockInterleaver,
    HammingCode,
    NoCode,
    RepetitionCode,
)
from repro.core.framing import (
    TagMessage,
    bits_to_bytes,
    bytes_to_bits,
    deframe,
    scan_for_frames,
)
from repro.mac.addresses import MacAddress
from repro.mac.ampdu import (
    aggregate,
    deaggregate,
    decode_delimiter,
    encode_delimiter,
    subframe_lengths,
)
from repro.mac.block_ack import BlockAck, BlockAckScoreboard, seq_offset
from repro.mac.crc import crc8, crc16_ccitt, crc32, fcs_bytes, verify_fcs
from repro.mac.frames import null_qos_mpdu
from repro.mac.security.aes import Aes128
from repro.mac.security.ccmp import CcmpContext
from repro.mac.security.wep import WepContext, rc4

A1 = MacAddress.parse("02:00:00:00:00:01")
A2 = MacAddress.parse("02:00:00:00:00:02")

bits_lists = st.lists(st.integers(0, 1), min_size=0, max_size=128)


class TestCrcProperties:
    @given(st.binary(max_size=512))
    def test_crc32_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(min_size=1, max_size=256), st.integers(0, 2047))
    def test_fcs_detects_any_single_bit_flip(self, data, bit):
        frame = bytearray(data + fcs_bytes(data))
        bit %= len(frame) * 8
        frame[bit // 8] ^= 1 << (bit % 8)
        assert not verify_fcs(bytes(frame))

    @given(st.binary(max_size=64))
    def test_crc8_deterministic(self, data):
        assert crc8(data) == crc8(data)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_crc16_collision_resistant_on_distinct(self, a, b):
        if a != b:
            # Not a guarantee, but a sanity distribution check: allow
            # collisions (CRC16 has them) while asserting determinism.
            assert (crc16_ccitt(a) == crc16_ccitt(b)) == (
                crc16_ccitt(a) == crc16_ccitt(b)
            )


class TestAesProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = Aes128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_block(self, block):
        cipher = Aes128(b"k" * 16)
        assert cipher.encrypt_block(block) != block


class TestCryptoRoundtrips:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=128))
    def test_ccmp_roundtrip(self, payload):
        tx = CcmpContext(b"0123456789abcdef")
        protected, _ = tx.encrypt(payload, bytes(A1))
        assert CcmpContext(b"0123456789abcdef").decrypt(
            protected, bytes(A1)
        ) == payload

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=128))
    def test_wep_roundtrip(self, payload):
        protected = WepContext(b"12345").encrypt(payload)
        assert WepContext(b"12345").decrypt(protected) == payload

    @given(st.binary(min_size=1, max_size=16), st.binary(max_size=64))
    def test_rc4_involution(self, key, data):
        assert rc4(key, rc4(key, data)) == data


class TestAmpduProperties:
    @given(st.integers(0, 4095))
    def test_delimiter_roundtrip(self, length):
        assert decode_delimiter(encode_delimiter(length)) == length

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.binary(max_size=40), min_size=1, max_size=16
        )
    )
    def test_aggregate_deaggregate_roundtrip(self, payloads):
        mpdus = [
            null_qos_mpdu(A1, A2, seq, payload=p).serialize()
            for seq, p in enumerate(payloads)
        ]
        subframes = deaggregate(aggregate(mpdus))
        assert [s.mpdu for s in subframes] == mpdus
        assert all(s.fcs_ok for s in subframes)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=40), min_size=1, max_size=16))
    def test_subframe_lengths_aligned_and_sufficient(self, payloads):
        mpdus = [
            null_qos_mpdu(A1, A2, seq, payload=p).serialize()
            for seq, p in enumerate(payloads)
        ]
        for size, mpdu in zip(subframe_lengths(mpdus), mpdus):
            assert size % 4 == 0
            assert size >= len(mpdu) + 4


class TestBlockAckProperties:
    @given(st.integers(0, 4095), st.integers(0, 4095))
    def test_seq_offset_range(self, ssn, seq):
        assert 0 <= seq_offset(ssn, seq) < 4096

    @given(
        st.integers(0, 4095),
        st.sets(st.integers(0, 63), max_size=64),
    )
    def test_scoreboard_bitmap_reflects_records(self, ssn, offsets):
        sb = BlockAckScoreboard(ssn=ssn)
        for offset in offsets:
            sb.record((ssn + offset) % 4096)
        bitmap = sb.bitmap()
        for offset in range(64):
            assert bool(bitmap & (1 << offset)) == (offset in offsets)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 4095), st.integers(0, 2**64 - 1), st.integers(0, 15))
    def test_block_ack_frame_roundtrip(self, ssn, bitmap, tid):
        ba = BlockAck(
            receiver=A1, transmitter=A2, ssn=ssn, bitmap=bitmap, tid=tid
        )
        assert BlockAck.parse(ba.serialize()) == ba


class TestFecProperties:
    @given(bits_lists)
    def test_nocode_identity(self, bits):
        assert NoCode().decode(NoCode().encode(bits)) == bits

    @given(bits_lists, st.sampled_from([3, 5, 7]))
    def test_repetition_roundtrip(self, bits, n):
        code = RepetitionCode(n)
        assert code.decode(code.encode(bits)) == bits

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(
        lambda b: len(b) % 4 == 0
    ))
    def test_hamming_roundtrip(self, bits):
        code = HammingCode()
        assert code.decode(code.encode(bits)) == bits

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(
            lambda b: len(b) % 4 == 0
        ),
        st.integers(0, 10_000),
    )
    def test_hamming_corrects_one_error_anywhere(self, bits, position):
        code = HammingCode()
        coded = code.encode(bits)
        coded[position % len(coded)] ^= 1
        assert code.decode(coded) == bits

    @given(bits_lists.filter(lambda b: len(b) % 8 == 0), st.sampled_from([2, 4, 8]))
    def test_interleaver_roundtrip(self, bits, depth):
        interleaver = BlockInterleaver(depth=depth)
        assert interleaver.deinterleave(interleaver.interleave(bits)) == bits


class TestFramingProperties:
    @given(st.binary(max_size=255))
    def test_frame_roundtrip(self, payload):
        assert deframe(TagMessage(payload=payload).to_bits()).payload == payload

    @given(st.binary(max_size=60), st.integers(0, 40))
    def test_scan_finds_frame_at_any_offset(self, payload, idle_bits):
        stream = [1] * idle_bits + TagMessage(payload=payload).to_bits()
        messages = scan_for_frames(stream)
        assert payload in [m.payload for m in messages]

    @given(st.binary(max_size=128))
    def test_bits_bytes_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestEncoderProperties:
    @given(bits_lists)
    def test_ook_identity(self, bits):
        encoder = TagEncoder()
        assert encoder.decode(encoder.encode(bits)) == bits

    @given(bits_lists)
    def test_manchester_roundtrip(self, bits):
        encoder = TagEncoder(line_code=LineCode.MANCHESTER)
        assert encoder.decode(encoder.encode(bits)) == bits

    @given(bits_lists)
    def test_manchester_balanced(self, bits):
        """Manchester output always has equal zeros and ones."""
        coded = TagEncoder(line_code=LineCode.MANCHESTER).encode(bits)
        assert coded.count(0) == coded.count(1)
