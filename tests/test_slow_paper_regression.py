"""Paper-exact regression runs (excluded by default; run with ``-m slow``).

The regular test suite and benches use shortened measurement windows for
speed.  These tests run the paper's actual methodology — minute-scale
measurements — and pin the headline numbers with tight tolerances.  They
exist so that a refactor that quietly shifts the calibrated operating
point is caught before results are quoted.
"""

import numpy as np
import pytest

from repro.core.session import MeasurementSession
from repro.sim.scenario import los_scenario, nlos_scenario

pytestmark = pytest.mark.slow


@pytest.mark.parametrize(
    "distance,max_ber",
    [(1.0, 0.015), (4.0, 0.08), (7.0, 0.015)],
)
def test_fig5_minute_run(distance, max_ber):
    """One paper-style measurement: a minute of queries at one position."""
    system, _ = los_scenario(distance, seed=int(distance))
    stats = MeasurementSession(
        system, rng=np.random.default_rng(int(distance))
    ).run_for(60.0)
    assert stats.ber < max_ber
    assert 38e3 < stats.throughput_bps < 45e3
    assert stats.queries > 35_000


@pytest.mark.parametrize("location,p90_max", [("A", 0.012), ("B", 0.03)])
def test_fig6_minute_runs(location, p90_max):
    """Paper Section 6.2: repeated one-minute NLOS measurements."""
    bers = []
    for run in range(10):
        system, _ = nlos_scenario(location, seed=3000 + run)
        stats = MeasurementSession(
            system, rng=np.random.default_rng(run)
        ).run_for(6.0)
        bers.append(stats.ber)
    assert float(np.percentile(bers, 90)) < p90_max
