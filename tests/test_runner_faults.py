"""Fault tolerance: injection, retry/timeout/backoff, checkpoint/resume.

The engine's determinism contract must survive adversity: a retried,
resumed, or serial-fallback run has to produce bit-identical
``SweepResult`` payloads and chunk-ordered telemetry merges.  This
suite injects deterministic crashes, hangs, corrupt payloads and worker
exits (``repro.runner.faults.FaultSpec``) and asserts exactly that,
plus the checkpoint file format's resilience to torn writes.

Fast cases run in tier-1; hang-timeout cases are marked ``slow`` and
run in the CI chaos job (``pytest -m faults``).
"""

import copy
import dataclasses
import json
import os
import random

import pytest

from repro.runner import (
    CheckpointError,
    CorruptPayload,
    FaultSpec,
    InjectedFault,
    RetryEvent,
    RetryPolicy,
    SweepError,
    SweepSpec,
    TelemetrySpec,
    UnitContext,
    WorkUnitError,
    checkpoint_fingerprint,
    load_checkpoint,
    run_sessions,
    run_sweep,
    run_units,
)
from repro.runner.checkpoint import CheckpointWriter, CompletedChunk
from repro.runner.workers import SessionSpec, rng_probe

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False

pytestmark = [pytest.mark.runner, pytest.mark.faults]


def units(n, seed=0):
    return [
        UnitContext(index=i, parameters={"x": i}, root_seed=seed)
        for i in range(n)
    ]


def probe_with_log(ctx: UnitContext):
    """rng_probe plus an execution log (proves which units re-ran)."""
    log = ctx.parameters.get("log")
    if log:
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(f"{ctx.index}\n")
    return rng_probe(ctx)


def must_not_run(ctx: UnitContext):
    raise AssertionError(
        f"unit {ctx.index} executed despite a complete checkpoint"
    )


def metric_probe(ctx: UnitContext):
    """Deterministic metric traffic: one counter tick per unit."""
    from repro.obs.runtime import active

    live = active()
    if live is not None and live.metrics_enabled:
        live.registry.counter("test_units_total", "units executed").inc()
    return ctx.index


def executed_units(log_path) -> list[int]:
    if not os.path.exists(log_path):
        return []
    with open(log_path, encoding="utf-8") as handle:
        return [int(line) for line in handle if line.strip()]


class TestFaultSpec:
    def test_parse_grammar(self):
        spec = FaultSpec.parse("crash:0,3;corrupt:2;hang:1;exit:4")
        assert spec.crash == (0, 3)
        assert spec.corrupt == (2,)
        assert spec.hang == (1,)
        assert spec.exit == (4,)
        assert spec.faulty_units == (0, 1, 2, 3, 4)

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("explode:1")

    def test_parse_rejects_bad_indices(self):
        with pytest.raises(ValueError, match="bad unit indices"):
            FaultSpec.parse("crash:a,b")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="no faults"):
            FaultSpec.parse(";")
        with pytest.raises(ValueError, match="names no units"):
            FaultSpec.parse("crash:")

    def test_seeded_is_deterministic(self):
        a = FaultSpec.seeded(7, 100, crash_rate=0.2, corrupt_rate=0.1)
        b = FaultSpec.seeded(7, 100, crash_rate=0.2, corrupt_rate=0.1)
        assert a.crash == b.crash and a.corrupt == b.corrupt
        assert a.crash  # 20% of 100 units: essentially always non-empty
        c = FaultSpec.seeded(8, 100, crash_rate=0.2, corrupt_rate=0.1)
        assert c.crash != a.crash

    def test_seeded_rate_extremes(self):
        none = FaultSpec.seeded(0, 50)
        assert none.faulty_units == ()
        everything = FaultSpec.seeded(0, 5, crash_rate=1.0)
        assert everything.crash == (0, 1, 2, 3, 4)

    def test_seeded_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rates"):
            FaultSpec.seeded(0, 5, crash_rate=1.5)

    def test_action_priority_and_budget(self):
        spec = FaultSpec(crash=(1,), exit=(1,), failures=2)
        assert spec.action(1, 0) == "exit"  # most disruptive wins
        assert spec.action(1, 1) == "exit"
        assert spec.action(1, 2) is None  # budget exhausted: runs clean
        assert spec.action(0, 0) is None

    def test_exit_downgrades_in_coordinator(self):
        spec = FaultSpec(exit=(0,))
        with pytest.raises(InjectedFault, match="downgrades to crash"):
            spec.apply_before(0, 0)

    def test_apply_after_wraps_corrupt(self):
        spec = FaultSpec(corrupt=(3,))
        wrapped = spec.apply_after(3, 0, {"ber": 0.1})
        assert isinstance(wrapped, CorruptPayload)
        assert wrapped.value == {"ber": 0.1}
        assert spec.apply_after(3, 1, "v") == "v"
        assert spec.apply_after(2, 0, "v") == "v"

    def test_validation(self):
        with pytest.raises(ValueError, match="failures"):
            FaultSpec(failures=-1)
        with pytest.raises(ValueError, match="hang_s"):
            FaultSpec(hang_s=-0.1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="breaker"):
            RetryPolicy(breaker_failures=0)

    def test_backoff_schedule_without_jitter(self):
        policy = RetryPolicy(
            backoff_s=0.1, backoff_factor=2.0, backoff_max_s=0.3,
            jitter=0.0,
        )
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_delay(9) == pytest.approx(0.3)

    def test_backoff_jitter_is_deterministic(self):
        policy = RetryPolicy(backoff_s=0.1, jitter=0.5)
        a = policy.backoff_delay(1, seed=3, chunk_index=2)
        b = policy.backoff_delay(1, seed=3, chunk_index=2)
        assert a == b
        assert 0.1 <= a <= 0.15
        other = policy.backoff_delay(1, seed=3, chunk_index=4)
        assert other != a  # different substream

    def test_backoff_rejects_zeroth_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff_delay(0)

    def test_zero_backoff_is_free(self):
        assert RetryPolicy().backoff_delay(5) == 0.0


class TestSerialRetries:
    def test_crash_retried_bit_identical(self, chaos):
        baseline, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(10),
            faults=chaos.faults(crash=(1, 7)),
            chunk_size=2,
        )
        assert baseline.retries == ()
        assert chaotic.retry_summary() == {"unit-error": 2}
        events = chaotic.retries
        assert all(isinstance(e, RetryEvent) for e in events)
        assert {e.action for e in events} == {"retry"}
        assert sorted(e.first_unit for e in events) == [0, 6]

    def test_corrupt_payload_detected_and_retried(self, chaos):
        _, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(8),
            faults=chaos.faults(corrupt=(4,)),
            chunk_size=4,
        )
        assert chaotic.retry_summary() == {"corrupt": 1}
        assert not any(
            isinstance(v, CorruptPayload) for v in chaotic.values
        )

    def test_seeded_chaos_bit_identical(self, chaos):
        faults = chaos.seeded(
            11, 20, crash_rate=0.2, corrupt_rate=0.2
        )
        assert faults.faulty_units  # the draw actually hit something
        chaos.check_bit_identical(
            rng_probe, units(20), faults=faults, chunk_size=3
        )

    def test_budget_exhaustion_raises_with_context(self, chaos):
        with pytest.raises(WorkUnitError) as excinfo:
            chaos.run(
                rng_probe,
                units(6),
                faults=chaos.faults(crash=(3,), failures=99),
                retry=RetryPolicy(max_attempts=2),
                chunk_size=2,
            )
        error = excinfo.value
        assert error.index == 3
        assert error.attempts == 2
        assert error.chunk_index == 1
        assert "after 2 attempt(s)" in str(error)
        assert any(e.action == "failed" for e in error.retries)

    def test_faults_without_retry_fail_fast(self, chaos):
        with pytest.raises(WorkUnitError) as excinfo:
            chaos.run(
                rng_probe,
                units(4),
                faults=chaos.faults(crash=(2,)),
                retry=None,
            )
        assert excinfo.value.attempts == 1

    def test_backoff_sleeps_between_attempts(self, chaos):
        _, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(4),
            faults=chaos.faults(crash=(0,)),
            retry=RetryPolicy(
                max_attempts=2, backoff_s=0.02, jitter=0.0
            ),
            chunk_size=4,
        )
        assert chaotic.wall_s >= 0.02

    def test_clean_run_reports_no_retries(self):
        result = run_units(
            rng_probe, units(5), retry=RetryPolicy(), chunk_size=2
        )
        assert result.retries == ()
        assert result.retry_summary() == {}
        assert result.resumed_chunks == 0


class TestProcessRetries:
    def test_worker_crash_retried_bit_identical(self, chaos):
        _, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(8),
            faults=chaos.faults(crash=(2, 5)),
            chunk_size=2,
            n_workers=2,
            executor="process",
        )
        assert chaotic.retry_summary() == {"unit-error": 2}
        assert chaotic.executor == "process"

    def test_worker_exit_trips_breaker_to_serial(self, chaos):
        baseline = run_units(rng_probe, units(6), chunk_size=2)
        chaotic = chaos.run(
            rng_probe,
            units(6),
            faults=chaos.faults(exit=(3,)),
            retry=RetryPolicy(max_attempts=3, breaker_failures=1),
            chunk_size=2,
            n_workers=2,
            executor="process",
        )
        assert chaotic.values == baseline.values
        assert chaotic.executor == "serial"  # circuit breaker fell back
        actions = {e.action for e in chaotic.retries}
        assert "serial-fallback" in actions
        assert any(e.reason == "executor" for e in chaotic.retries)

    def test_strict_mode_still_raises_sweep_error(self):
        def closure(ctx):  # unpicklable on purpose
            return ctx.index

        with pytest.raises(SweepError, match="executor failed"):
            run_units(closure, units(4), n_workers=2, executor="process")

    def test_tolerant_mode_survives_unpicklable_via_fallback(self):
        def closure(ctx):  # unpicklable: every pool round breaks
            return ctx.index * 3

        result = run_units(
            closure,
            units(4),
            n_workers=2,
            executor="process",
            retry=RetryPolicy(breaker_failures=1),
        )
        assert result.values == [0, 3, 6, 9]
        assert result.executor == "serial"


@pytest.mark.slow
class TestChunkTimeouts:
    def test_hang_cut_off_and_retried_serial(self, chaos):
        _, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(6),
            faults=chaos.faults(hang=(2,), hang_s=0.5),
            retry=RetryPolicy(max_attempts=3, timeout_s=0.1),
            chunk_size=2,
        )
        assert chaotic.retry_summary() == {"timeout": 1}
        event = chaotic.retries[0]
        assert event.reason == "timeout"
        assert event.first_unit == 2

    def test_hang_cut_off_in_worker_process(self, chaos):
        _, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(6),
            faults=chaos.faults(hang=(4,), hang_s=0.5),
            retry=RetryPolicy(max_attempts=3, timeout_s=0.1),
            chunk_size=2,
            n_workers=2,
            executor="process",
        )
        assert chaotic.retry_summary() == {"timeout": 1}

    def test_permanent_hang_exhausts_budget(self, chaos):
        with pytest.raises(WorkUnitError) as excinfo:
            chaos.run(
                rng_probe,
                units(2),
                faults=chaos.faults(
                    hang=(1,), hang_s=0.5, failures=99
                ),
                retry=RetryPolicy(max_attempts=2, timeout_s=0.05),
                chunk_size=1,
            )
        assert "deadline" in excinfo.value.cause


class TestCheckpointFile:
    def test_fingerprint_covers_run_shape(self):
        base = checkpoint_fingerprint(0, 10, 2)
        assert checkpoint_fingerprint(0, 10, 2) == base
        assert checkpoint_fingerprint(1, 10, 2) != base
        assert checkpoint_fingerprint(0, 11, 2) != base
        assert checkpoint_fingerprint(0, 10, 3) != base

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        chunk = CompletedChunk(
            chunk_index=1,
            first_index=2,
            n_units=2,
            worker=1234,
            busy_s=0.5,
            values=[{"a": 1}, {"a": 2}],
            telemetry={"metrics": None, "stage": {}},
        )
        with CheckpointWriter(path, {"fingerprint": "f" * 32}) as writer:
            writer.record_chunk(chunk)
        state = load_checkpoint(path)
        assert state.fingerprint() == "f" * 32
        assert state.skipped_lines == 0
        loaded = state.chunks[1]
        assert loaded.payload_bytes > 0
        assert loaded == dataclasses.replace(
            chunk, payload_bytes=loaded.payload_bytes
        )

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        with CheckpointWriter(path, {"fingerprint": "a"}) as writer:
            writer.record_chunk(
                CompletedChunk(0, 0, 1, 1, 0.0, [42], None)
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "chunk", "chu')  # torn
        state = load_checkpoint(path)
        assert state.chunks[0].values == [42]
        assert state.skipped_lines == 1

    def test_corrupted_payload_digest_is_skipped(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        with CheckpointWriter(path, {"fingerprint": "a"}) as writer:
            writer.record_chunk(
                CompletedChunk(0, 0, 1, 1, 0.0, [42], None)
            )
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["digest"] = "0" * 32  # flipped bits
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        state = load_checkpoint(path)
        assert state.chunks == {}
        assert state.skipped_lines == 1

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        with CheckpointWriter(path, {"fingerprint": "a"}) as writer:
            writer.record_chunk(
                CompletedChunk(0, 0, 1, 1, 0.0, ["old"], None)
            )
            writer.record_chunk(
                CompletedChunk(0, 0, 1, 1, 0.0, ["new"], None)
            )
        assert load_checkpoint(path).chunks[0].values == ["new"]

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "chunk"}\n')
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(path)

    def test_unsupported_schema_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "header", "schema": 99}\n')
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)


class TestCheckpointResume:
    def test_complete_checkpoint_skips_every_chunk(self, tmp_path):
        ck = tmp_path / "sweep.ckpt.jsonl"
        spec = SweepSpec(axes={"x": list(range(9))}, seed=3, chunk_size=2)
        first = run_sweep(rng_probe, spec, checkpoint=ck)
        # must_not_run raises on any execution: resume proves no re-run
        resumed = run_sweep(must_not_run, spec, checkpoint=ck)
        assert resumed.values == first.values
        assert resumed.resumed_chunks == 5
        assert resumed.points == first.points

    def test_interrupted_run_resumes_missing_chunks_only(
        self, tmp_path, chaos
    ):
        log_a, log_b = tmp_path / "a.log", tmp_path / "b.log"
        ck = tmp_path / "sweep.ckpt.jsonl"
        mk_units = lambda log: [  # noqa: E731 - tiny test helper
            UnitContext(
                index=i, parameters={"x": i, "log": str(log)}, root_seed=5
            )
            for i in range(8)
        ]
        # "Interrupt": unit 5 (chunk 2) keeps failing with no tolerance.
        with pytest.raises(WorkUnitError):
            run_units(
                probe_with_log,
                mk_units(log_a),
                seed=5,
                chunk_size=2,
                faults=chaos.faults(crash=(5,), failures=99),
                checkpoint=ck,
            )
        done_before = set(load_checkpoint(ck).chunks)
        assert 2 not in done_before and done_before  # partial spill
        # Resume without the fault: only missing chunks execute.
        result = run_units(
            probe_with_log,
            mk_units(log_b),
            seed=5,
            chunk_size=2,
            checkpoint=ck,
        )
        baseline = run_units(rng_probe, units(8, seed=5), chunk_size=2)
        assert result.values == baseline.values
        assert result.resumed_chunks == len(done_before)
        rerun = set(executed_units(log_b))
        first_run = set(executed_units(log_a))
        assert rerun.isdisjoint(
            {i for c in done_before for i in (2 * c, 2 * c + 1)}
        )
        assert rerun | first_run >= set(range(8)) - {5}

    def test_resume_with_different_worker_count(self, tmp_path):
        ck = tmp_path / "sweep.ckpt.jsonl"
        spec = SweepSpec(axes={"x": list(range(8))}, seed=2, chunk_size=2)
        parallel = run_sweep(
            rng_probe, spec, n_workers=2, executor="process",
            checkpoint=ck,
        )
        resumed = run_sweep(must_not_run, spec, n_workers=1, checkpoint=ck)
        assert resumed.values == parallel.values
        assert resumed.resumed_chunks == 4

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        ck = tmp_path / "sweep.ckpt.jsonl"
        spec = SweepSpec(axes={"x": [1, 2, 3, 4]}, seed=0, chunk_size=2)
        run_sweep(rng_probe, spec, checkpoint=ck)
        reseeded = SweepSpec(axes={"x": [1, 2, 3, 4]}, seed=1, chunk_size=2)
        with pytest.raises(SweepError, match="different run"):
            run_sweep(rng_probe, reseeded, checkpoint=ck)
        rechunked = SweepSpec(axes={"x": [1, 2, 3, 4]}, seed=0, chunk_size=4)
        with pytest.raises(SweepError, match="different run"):
            run_sweep(rng_probe, rechunked, checkpoint=ck)

    def test_resume_false_starts_fresh(self, tmp_path):
        ck = tmp_path / "sweep.ckpt.jsonl"
        spec = SweepSpec(axes={"x": [1, 2, 3, 4]}, seed=0, chunk_size=2)
        run_sweep(rng_probe, spec, checkpoint=ck)
        result = run_sweep(rng_probe, spec, checkpoint=ck, resume=False)
        assert result.resumed_chunks == 0
        assert len(load_checkpoint(ck).chunks) == 2

    def test_checkpointed_faulty_run_equals_clean(self, tmp_path, chaos):
        ck = tmp_path / "sweep.ckpt.jsonl"
        baseline, chaotic = chaos.check_bit_identical(
            rng_probe,
            units(10, seed=4),
            faults=chaos.faults(crash=(3,), corrupt=(8,)),
            seed=4,
            chunk_size=2,
            checkpoint=ck,
        )
        assert len(load_checkpoint(ck).chunks) == 5

    def test_run_sessions_checkpoint_resume(self, tmp_path):
        ck = tmp_path / "sessions.ckpt.jsonl"
        build = SessionSpec(distance_m=3.0)
        first = run_sessions(
            build, 4, queries=2, seed=1, chunk_size=2, checkpoint=ck
        )
        resumed = run_sessions(
            build, 4, queries=2, seed=1, chunk_size=2, checkpoint=ck
        )
        assert resumed.resumed_chunks == 2
        assert [s.ber for s in resumed.values] == [
            s.ber for s in first.values
        ]
        assert [s.queries for s in resumed.values] == [
            s.queries for s in first.values
        ]


def _truncated_resume_case(tmp_path, n_units, chunk_size, keep, torn):
    """Shared body for the property tests: kill, maybe tear, resume."""
    ck = os.path.join(tmp_path, f"u{n_units}c{chunk_size}k{keep}.jsonl")
    mk = lambda: units(n_units, seed=9)  # noqa: E731 - tiny test helper
    baseline = run_units(rng_probe, mk(), seed=9, chunk_size=chunk_size)
    run_units(
        rng_probe, mk(), seed=9, chunk_size=chunk_size, checkpoint=ck
    )
    with open(ck, encoding="utf-8") as handle:
        lines = handle.readlines()
    header, chunk_lines = lines[0], lines[1:]
    kept = chunk_lines[: min(keep, len(chunk_lines))]
    with open(ck, "w", encoding="utf-8") as handle:
        handle.write(header)
        handle.writelines(kept)
        if torn and keep < len(chunk_lines):
            handle.write(chunk_lines[keep][: len(chunk_lines[keep]) // 2])
    resumed = run_units(
        rng_probe, mk(), seed=9, chunk_size=chunk_size, checkpoint=ck
    )
    assert resumed.values == baseline.values
    assert resumed.resumed_chunks == len(kept)
    # The checkpoint healed: every chunk is intact again afterwards.
    n_chunks = -(-n_units // chunk_size)
    assert len(load_checkpoint(ck).chunks) == n_chunks


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestCheckpointResumeProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n_units=st.integers(min_value=1, max_value=17),
        chunk_size=st.integers(min_value=1, max_value=6),
        keep=st.integers(min_value=0, max_value=17),
        torn=st.booleans(),
    )
    def test_interrupt_plus_resume_equals_uninterrupted(
        self, tmp_path, n_units, chunk_size, keep, torn
    ):
        _truncated_resume_case(tmp_path, n_units, chunk_size, keep, torn)


class TestCheckpointResumeSeededLoop:
    def test_random_kill_points_resume_bit_identical(self, tmp_path):
        rng = random.Random(1234)
        for case in range(6):
            n_units = rng.randint(1, 15)
            chunk_size = rng.randint(1, 5)
            keep = rng.randint(0, 8)
            _truncated_resume_case(
                os.path.join(tmp_path, str(case)) + "_",
                n_units,
                chunk_size,
                keep,
                torn=bool(rng.getrandbits(1)),
            )


def _strip_retry_family(snapshot):
    snapshot = copy.deepcopy(snapshot)
    snapshot["metrics"].pop("runner_chunk_retries_total", None)
    return snapshot


class TestTelemetryUnderRetry:
    def test_aggregate_matches_clean_run_modulo_retry_counter(
        self, chaos
    ):
        spec = TelemetrySpec(metrics=True)
        clean = run_units(
            metric_probe, units(8), chunk_size=2, telemetry=spec
        )
        chaotic = chaos.run(
            metric_probe,
            units(8),
            faults=chaos.faults(crash=(1,), corrupt=(6,)),
            chunk_size=2,
            telemetry=spec,
        )
        assert chaotic.values == clean.values
        a = clean.telemetry.metrics_snapshot()
        b = chaotic.telemetry.metrics_snapshot()
        assert _strip_retry_family(a) == _strip_retry_family(b)
        retry_family = b["metrics"]["runner_chunk_retries_total"]
        reasons = {
            s["labels"]["reason"]: s["value"]
            for s in retry_family["series"]
        }
        assert reasons == {"unit-error": 1.0, "corrupt": 1.0}

    def test_merge_order_invariant_under_process_retries(self, chaos):
        spec = TelemetrySpec(metrics=True)
        serial = run_units(
            metric_probe, units(8), chunk_size=2, telemetry=spec
        )
        parallel = chaos.run(
            metric_probe,
            units(8),
            faults=chaos.faults(crash=(3,)),
            chunk_size=2,
            n_workers=2,
            executor="process",
            telemetry=spec,
        )
        assert _strip_retry_family(
            serial.telemetry.metrics_snapshot()
        ) == _strip_retry_family(parallel.telemetry.metrics_snapshot())

    def test_live_telemetry_traces_retry_records(self, tmp_path, chaos):
        from repro.obs import (
            Telemetry,
            TraceWriter,
            activate,
            summarize_trace,
        )

        trace = tmp_path / "retries.jsonl"
        live = Telemetry(metrics=True, writer=TraceWriter(str(trace)))
        with activate(live):
            chaos.run(
                rng_probe,
                units(6),
                faults=chaos.faults(crash=(0,), corrupt=(5,)),
                chunk_size=2,
                telemetry=None,
            )
        live.close()
        summary = summarize_trace(str(trace))
        assert summary["records"].get("retry") == 2
        assert summary["retries"] == {"unit-error": 1, "corrupt": 1}
        retry_metric = live.registry.snapshot()["metrics"][
            "runner_chunk_retries_total"
        ]
        assert sum(s["value"] for s in retry_metric["series"]) == 2.0


class TestRunParallelSessionsWarning:
    def test_small_query_count_warns_and_goes_serial(self):
        from repro.core.session import (
            reset_small_query_warnings,
            run_parallel_sessions,
        )

        reset_small_query_warnings()
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = run_parallel_sessions(
                SessionSpec(distance_m=3.0),
                2,
                queries=2,
                seed=0,
                n_workers=2,
                chunk_size=8,
                executor="process",
            )
        assert result.executor == "serial"
        assert len(result.values) == 2

    def test_warning_fires_once_per_job_across_redispatches(self):
        # Satellite bugfix: a resumed/retried job used to warn on every
        # re-dispatch of the same small-query configuration; the
        # warning now dedups per warn_key while the serial fallback
        # itself still applies every time.
        import warnings

        from repro.core.session import (
            reset_small_query_warnings,
            run_parallel_sessions,
        )

        reset_small_query_warnings()
        kwargs = dict(
            queries=2, seed=0, n_workers=2, chunk_size=8,
            executor="process", warn_key="job-000042",
        )
        build = SessionSpec(distance_m=3.0)
        with pytest.warns(RuntimeWarning) as record:
            first = run_parallel_sessions(build, 2, **kwargs)
        fallback = [
            w for w in record if "falling back" in str(w.message)
        ]
        assert len(fallback) == 1
        # Same job re-dispatching (e.g. after a checkpoint resume):
        # silent, but still serial and bit-identical.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            again = run_parallel_sessions(build, 2, **kwargs)
        assert again.executor == "serial"
        assert again.values == first.values
        # A different job warns on its own first dispatch.
        with pytest.warns(RuntimeWarning, match="falling back"):
            run_parallel_sessions(
                build, 2, **{**kwargs, "warn_key": "job-000043"}
            )

    def test_ample_queries_do_not_warn(self):
        import warnings

        from repro.core.session import run_parallel_sessions

        build = SessionSpec(distance_m=3.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = run_parallel_sessions(
                build, 2, queries=4, seed=0, n_workers=1, chunk_size=2
            )
        assert len(result.values) == 2


class TestSweepCli:
    def test_fault_without_retry_fails_cleanly(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                "--distances", "1,2",
                "--seconds", "0.05",
                "--inject-faults", "crash:0",
                "--chunk", "1",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "sweep failed" in captured.err
        assert "chunk 0" in captured.err
        assert "retry summary" in captured.err
        assert "Traceback (most recent call last)" not in captured.err

    def test_bad_fault_spec_is_usage_error(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "--inject-faults", "explode:1"])
        assert rc == 2
        assert "bad --inject-faults" in capsys.readouterr().err

    def test_tolerated_faults_match_clean_run(self, capsys):
        from repro.cli import main

        base_args = [
            "sweep", "--distances", "1,2", "--seconds", "0.05",
            "--chunk", "1",
        ]
        assert main(base_args) == 0
        clean = capsys.readouterr().out
        assert main(
            base_args
            + ["--inject-faults", "crash:0;corrupt:1", "--retries", "3"]
        ) == 0
        chaotic = capsys.readouterr().out
        def table_rows(out):
            # Keep the physics rows; worker-timing rows carry wall-clock
            # busy seconds that legitimately differ between runs.
            return [
                line
                for line in out.splitlines()
                if line.startswith(" ") and "busy" not in line
            ]

        clean_table = table_rows(clean)
        chaotic_table = table_rows(chaotic)
        assert clean_table  # the sweep table rows render indented
        assert clean_table == chaotic_table
        assert "fault tolerance:" in chaotic

    def test_checkpoint_resume_cli(self, tmp_path, capsys):
        from repro.cli import main

        ck = str(tmp_path / "cli.ckpt.jsonl")
        args = [
            "sweep", "--distances", "1,2", "--seconds", "0.05",
            "--chunk", "1", "--checkpoint", ck,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "2 chunk(s) resumed" in capsys.readouterr().out


@pytest.mark.bench_smoke
class TestFaultToleranceBench:
    def test_bench_reports_identical_results(self):
        from repro.bench import fault_tolerance_bench

        out = fault_tolerance_bench(16, chunk_size=4)
        assert out["identical"] is True
        assert out["retry_events"] == {"unit-error": 2}
        assert set(out["overhead"]) == {
            "retry_armed", "checkpointed", "faulty_retried",
        }
        assert all(v > 0 for v in out["walls_s"].values())
