"""Unit tests for 802.11 frame structures and serialization."""

import pytest

from repro.mac.addresses import MacAddress
from repro.mac.frames import (
    FrameControl,
    FrameSubtype,
    FrameType,
    QosDataFrame,
    SequenceControl,
    null_qos_mpdu,
)

A1 = MacAddress.parse("02:00:00:00:00:01")
A2 = MacAddress.parse("02:00:00:00:00:02")


class TestFrameControl:
    def test_roundtrip(self):
        fc = FrameControl(
            FrameType.DATA, 8, to_ds=True, retry=True, protected=True
        )
        assert FrameControl.from_int(fc.to_int()) == fc

    def test_qos_data_wire_value(self):
        fc = FrameControl(FrameType.DATA, int(FrameSubtype.QOS_DATA))
        # type=2 -> bits 2-3 = 10; subtype=8 -> bits 4-7.
        assert fc.to_int() == (2 << 2) | (8 << 4)

    def test_bad_subtype(self):
        with pytest.raises(ValueError):
            FrameControl(FrameType.DATA, 16)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            FrameControl.from_int(0x0003)


class TestSequenceControl:
    def test_roundtrip(self):
        sc = SequenceControl(sequence=4095, fragment=15)
        assert SequenceControl.from_int(sc.to_int()) == sc

    def test_wire_layout(self):
        assert SequenceControl(1, 0).to_int() == 1 << 4

    def test_bounds(self):
        with pytest.raises(ValueError):
            SequenceControl(4096)
        with pytest.raises(ValueError):
            SequenceControl(0, 16)


class TestQosDataFrame:
    def test_serialize_parse_roundtrip(self):
        frame = QosDataFrame(
            receiver=A1,
            transmitter=A2,
            destination=A1,
            seq=SequenceControl(123),
            tid=3,
            payload=b"hello witag",
        )
        parsed = QosDataFrame.parse(frame.serialize())
        assert parsed.receiver == A1
        assert parsed.transmitter == A2
        assert parsed.seq.sequence == 123
        assert parsed.tid == 3
        assert parsed.payload == b"hello witag"

    def test_null_frame_size(self):
        frame = null_qos_mpdu(A1, A2, 0)
        # Header 26 + FCS 4 = 30 bytes, no payload.
        assert len(frame.serialize()) == 30
        assert frame.mpdu_bytes == 30

    def test_null_subtype_selected(self):
        assert (
            null_qos_mpdu(A1, A2, 0).effective_frame_control().subtype
            == FrameSubtype.QOS_NULL
        )
        assert (
            null_qos_mpdu(A1, A2, 0, payload=b"x").effective_frame_control().subtype
            == FrameSubtype.QOS_DATA
        )

    def test_corrupted_frame_rejected(self):
        data = bytearray(null_qos_mpdu(A1, A2, 7).serialize())
        data[5] ^= 0xFF
        with pytest.raises(ValueError, match="FCS"):
            QosDataFrame.parse(bytes(data))

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError, match="short"):
            QosDataFrame.parse(b"\x00" * 10)

    def test_duration_bounds(self):
        frame = null_qos_mpdu(A1, A2, 0)
        with pytest.raises(ValueError):
            frame.serialize(duration_us=0x8000)

    def test_bad_tid(self):
        with pytest.raises(ValueError):
            QosDataFrame(
                receiver=A1,
                transmitter=A2,
                destination=A1,
                seq=SequenceControl(0),
                tid=16,
            )

    def test_sequence_survives_serialization(self):
        for seq in (0, 1, 2047, 4095):
            frame = null_qos_mpdu(A1, A2, seq)
            assert QosDataFrame.parse(frame.serialize()).seq.sequence == seq
