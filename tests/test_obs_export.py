"""Timeline exports and the bench regression watchdog.

Two halves of the observability tentpole's offline tooling:

* ``repro trace export`` — the trace-to-Chrome-tracing and
  trace-to-flamegraph conversions must be structurally valid (every
  event carries the required ``trace_event`` fields, query spans lay
  end-to-end on simulated time) and conservative (flamegraph line
  weights sum to the trace's total stage time to rounding).
* ``repro bench check`` — the watchdog walks the mixed-schema bench
  trajectory, compares the *latest* measurement per gate against the
  pinned baseline ratio, skips unpinned gates rather than failing a
  fresh clone, and exits nonzero exactly when a regression is present.
"""

import json

import numpy as np
import pytest

from repro.bench import bench_check
from repro.cli import main
from repro.core.session import MeasurementSession
from repro.obs import (
    Telemetry,
    TraceSampler,
    TraceWriter,
    chrome_trace,
    flamegraph_lines,
    read_trace,
)
from repro.obs.export import merge_stage_timings
from repro.sim.scenario import los_scenario


@pytest.fixture(scope="module")
def trace_records(tmp_path_factory):
    """One short traced session's records (queries + session + stages)."""
    path = tmp_path_factory.mktemp("trace") / "session.jsonl"
    telemetry = Telemetry(
        writer=TraceWriter(str(path)), sampler=TraceSampler(every_n=1)
    )
    system, _ = los_scenario(4.0, seed=5)
    telemetry.attach(system)
    MeasurementSession(
        system, rng=np.random.default_rng(6)
    ).run_queries(12)
    telemetry.close()
    return list(read_trace(str(path)))


class TestChromeTrace:
    def test_structure_and_layout(self, trace_records):
        doc = chrome_trace(trace_records)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        queries = [
            e for e in doc["traceEvents"] if e.get("cat") == "query"
        ]
        assert len(queries) == 12
        # End-to-end on simulated time: each query starts where the
        # previous one ended, spanning its cycle airtime.
        cursor = 0.0
        records = [
            r for r in trace_records if r.get("kind") == "query"
        ]
        for event, record in zip(queries, records):
            assert event["ts"] == pytest.approx(cursor)
            assert event["dur"] == pytest.approx(
                record["cycle_s"] * 1e6
            )
            assert event["args"]["bitmap"] == record["bitmap"]
            cursor += event["dur"]
        # Stage tracks exist and are named.
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert "queries" in names
        assert any(n.startswith("stages:") for n in names)

    def test_round_trips_through_json(self, trace_records):
        doc = chrome_trace(trace_records)
        assert json.loads(json.dumps(doc)) == doc


class TestFlamegraph:
    def test_lines_sum_to_total_stage_time(self, trace_records):
        timings = merge_stage_timings(trace_records)
        assert timings  # the session recorded stage counters
        lines = flamegraph_lines(timings)
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        want_us = 1e6 * sum(
            stage["seconds"]
            for group in timings.values()
            for stage in group.values()
        )
        assert total_us == pytest.approx(want_us, abs=0.5 * len(lines))
        for line in lines:
            frame, weight = line.rsplit(" ", 1)
            assert ";" in frame and int(weight) >= 0

    def test_merge_sums_across_sessions(self):
        session = {
            "kind": "session",
            "stage_timings": {
                "system": {"decode": {"seconds": 0.25, "calls": 10}}
            },
        }
        merged = merge_stage_timings([session, session, {"kind": "query"}])
        assert merged == {
            "system": {"decode": {"seconds": 0.5, "calls": 20}}
        }


class TestTraceExportCli:
    def test_chrome_export(self, trace_records, tmp_path):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for record in trace_records:
                handle.write(json.dumps(record) + "\n")
        out = tmp_path / "chrome.json"
        assert (
            main(
                [
                    "trace",
                    "export",
                    str(trace),
                    "--format",
                    "chrome",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_flamegraph_export_and_empty_trace(self, trace_records, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for record in trace_records:
                handle.write(json.dumps(record) + "\n")
        assert (
            main(["trace", "export", str(trace), "--format", "flamegraph"])
            == 0
        )
        out = capsys.readouterr().out
        assert all(
            " " in line for line in out.strip().splitlines()
        )
        # A query-only trace has no stage timings to collapse.
        bare = tmp_path / "bare.jsonl"
        with open(bare, "w", encoding="utf-8") as handle:
            for record in trace_records:
                if record.get("kind") != "session":
                    handle.write(json.dumps(record) + "\n")
        assert (
            main(["trace", "export", str(bare), "--format", "flamegraph"])
            == 2
        )


BASELINES = {
    "session_batch": {"speedup_session_vs_vectorized": 2.0},
    "tier4": {"speedup_tier4_vs_session_batch": 3.0},
    "fleet": {"speedup_fleet_vs_scalar": 10.0},
    "adaptive": {"goodput_ratio_adaptive_vs_static": 1.4},
}


def write_files(tmp_path, entries, baselines=BASELINES):
    trajectory = tmp_path / "trajectory.json"
    trajectory.write_text(json.dumps(entries))
    baselines_path = tmp_path / "baselines.json"
    baselines_path.write_text(json.dumps(baselines))
    return str(trajectory), str(baselines_path)


def entry(
    session=None,
    tier4=None,
    fleet=None,
    adaptive=None,
    recorded_at="2026-01-01",
):
    out = {"recorded_at": recorded_at}
    if session is not None:
        out["speedups"] = {"session_vs_vectorized": session}
    if tier4 is not None:
        out["tier4"] = {"speedup_tier4_vs_session_batch": tier4}
    if fleet is not None:
        out["fleet"] = {"speedup_fleet_vs_scalar": fleet}
    if adaptive is not None:
        out["adaptive"] = {"goodput_ratio_adaptive_vs_static": adaptive}
    return out


class TestBenchCheck:
    def test_all_gates_above_floor_pass(self, tmp_path):
        trajectory, baselines = write_files(
            tmp_path,
            [entry(session=1.9, tier4=2.9, fleet=9.0, adaptive=1.3)],
        )
        report = bench_check(trajectory, baselines)
        assert report["ok"] is True
        assert {c["name"] for c in report["checks"]} == {
            "session_batch",
            "tier4",
            "fleet",
            "adaptive",
        }
        assert report["skipped"] == []

    def test_latest_entry_wins(self, tmp_path):
        # An old healthy fleet number must not mask a new regression.
        trajectory, baselines = write_files(
            tmp_path,
            [
                entry(fleet=12.0, recorded_at="2026-01-01"),
                entry(fleet=5.0, recorded_at="2026-02-01"),
            ],
        )
        report = bench_check(trajectory, baselines)
        fleet = next(
            c for c in report["checks"] if c["name"] == "fleet"
        )
        assert fleet["measured"] == 5.0
        assert fleet["recorded_at"] == "2026-02-01"
        assert fleet["ok"] is False and report["ok"] is False

    def test_mixed_schema_entries_are_tolerated(self, tmp_path):
        # Schema-1 entries lack tier4/fleet blocks entirely; the
        # watchdog reads through them without failing.
        trajectory, baselines = write_files(
            tmp_path,
            [
                {"speedups": {"session_vs_vectorized": 2.1}},
                entry(tier4=3.5),
                {"schema": 3, "unrelated": True},
            ],
        )
        report = bench_check(trajectory, baselines)
        assert report["ok"] is True
        assert {c["name"] for c in report["checks"]} == {
            "session_batch",
            "tier4",
        }
        assert {s["name"] for s in report["skipped"]} == {
            "fleet",
            "adaptive",
        }
        assert all(
            s["reason"] == "no trajectory entry"
            for s in report["skipped"]
        )

    def test_unpinned_baseline_is_skipped_not_failed(self, tmp_path):
        trajectory, baselines = write_files(
            tmp_path,
            [entry(session=0.1, tier4=0.1, fleet=0.1)],
            baselines={},
        )
        report = bench_check(trajectory, baselines)
        assert report["ok"] is True
        assert report["checks"] == []
        assert all(
            s["reason"] == "no baseline pinned"
            for s in report["skipped"]
        )

    def test_missing_trajectory_file_passes(self, tmp_path):
        report = bench_check(
            str(tmp_path / "absent.json"),
            write_files(tmp_path, [])[1],
        )
        assert report["ok"] is True and report["checks"] == []

    def test_threshold_validation(self, tmp_path):
        trajectory, baselines = write_files(tmp_path, [])
        with pytest.raises(ValueError, match="threshold"):
            bench_check(trajectory, baselines, threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            bench_check(trajectory, baselines, threshold=1.5)

    def test_cli_exit_codes(self, tmp_path, capsys):
        trajectory, baselines = write_files(
            tmp_path, [entry(session=1.9, tier4=2.9, fleet=9.0)]
        )
        assert (
            main(
                [
                    "bench",
                    "check",
                    "--trajectory",
                    trajectory,
                    "--baselines",
                    baselines,
                ]
            )
            == 0
        )
        regressed, _ = write_files(
            tmp_path, [entry(session=1.9, tier4=2.9, fleet=5.0)]
        )
        assert (
            main(
                [
                    "bench",
                    "check",
                    "--trajectory",
                    regressed,
                    "--baselines",
                    baselines,
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "fleet" in captured.err

    def test_cli_check_against_real_repo_data(self):
        # The committed trajectory + baselines must pass the watchdog:
        # this is the soft gate CI runs.
        report = bench_check(
            "benchmarks/BENCH_session_batch.json",
            "benchmarks/baselines.json",
        )
        assert report["ok"] is True

    def test_plain_bench_parse_still_works(self):
        # `repro bench` without a subcommand keeps its classic routing;
        # `check` reroutes to the watchdog.
        from repro.cli import (
            _cmd_bench,
            _cmd_bench_check,
            build_parser,
        )

        parser = build_parser()
        assert parser.parse_args(["bench"]).func is _cmd_bench
        assert (
            parser.parse_args(["bench", "--queries", "5"]).func
            is _cmd_bench
        )
        assert (
            parser.parse_args(["bench", "check"]).func
            is _cmd_bench_check
        )
