"""Every example must run cleanly and produce its headline output.

These are end-user smoke tests: each example script is executed as a
subprocess (the way a reader of the README would run it) and its output is
checked for the results it promises.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str, timeout: int = 240) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == [
        "encrypted_network.py",
        "multitag_inventory.py",
        "nlos_warehouse.py",
        "power_budget.py",
        "quickstart.py",
        "sensor_network.py",
        "waveform_microscope.py",
    ]


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recovered tag message: 'temperature=23.5C'" in out
    assert "effective rate" in out


def test_sensor_network():
    out = run_example("sensor_network.py")
    assert "polling all sensors" in out
    assert out.count("moisture=") >= 4
    assert "LOST" not in out


def test_nlos_warehouse():
    out = run_example("nlos_warehouse.py")
    assert "location A" in out and "location B" in out
    assert "90th pct" in out


def test_encrypted_network():
    out = run_example("encrypted_network.py")
    assert "wpa2-ccmp" in out
    assert "delivered 'badge=4711;door=open'" in out
    assert "MIC failure" in out
    assert "FAILED" not in out


def test_power_budget():
    out = run_example("power_budget.py")
    assert "WiTAG" in out
    assert "oscillator" in out
    assert "ring-20MHz" in out


def test_multitag_inventory():
    out = run_example("multitag_inventory.py")
    assert "addressed inventory round" in out
    assert "garbled by collision" in out


def test_waveform_microscope():
    out = run_example("waveform_microscope.py")
    assert "tag flipped" in out
    assert "16-QAM" in out and "BPSK" in out


@pytest.mark.parametrize(
    "args,expect",
    [
        (["power"], "battery-free"),
        (["compare"], "WiTAG"),
        (["throughput"], "Kbps"),
    ],
)
def test_cli_subprocess(args, expect):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0
    assert expect in result.stdout
