"""Unit tests for tag hardware: RF switch, antenna designs, oscillators."""

import cmath
import math

import pytest

from repro.phy.channel import TagState
from repro.tag.antenna import (
    open_short_design,
    phase_flip_design,
    phase_flip_loads,
)
from repro.tag.oscillator import (
    Oscillator,
    OscillatorKind,
    power_vs_frequency_uw,
    precision_oscillator_20mhz,
    ring_oscillator_20mhz,
    witag_crystal_50khz,
)
from repro.tag.rf_switch import (
    ReflectionLoad,
    RfSwitch,
    quarter_wave_pair,
    sky13314,
)

WAVELENGTH = 0.123


class TestRfSwitch:
    def test_sky13314_defaults(self):
        switch = sky13314()
        assert switch.insertion_loss_db == pytest.approx(0.35)
        assert switch.switching_time_s < 100e-9

    def test_settles_within_symbol(self):
        """Paper Section 5: switching must fit well inside an OFDM symbol."""
        assert sky13314().settles_within(4e-6)
        assert not sky13314().settles_within(1e-9)

    def test_through_gain(self):
        assert sky13314().through_gain == pytest.approx(
            10 ** (-0.35 / 20), rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RfSwitch(insertion_loss_db=-1)
        with pytest.raises(ValueError):
            RfSwitch(switching_time_s=0)
        with pytest.raises(ValueError):
            sky13314().settles_within(0)


class TestReflectionLoad:
    def test_bare_short(self):
        load = ReflectionLoad(complex(-1, 0))
        assert load.reflection_coefficient(WAVELENGTH) == complex(-1, 0)

    def test_cable_phase_rotation(self):
        lam_cable = WAVELENGTH * 0.66
        load = ReflectionLoad(
            complex(-1, 0), cable_length_m=lam_cable / 8
        )
        gamma = load.reflection_coefficient(WAVELENGTH)
        # lambda/8 of cable = 90 degrees round trip.
        assert cmath.phase(gamma / complex(-1, 0)) == pytest.approx(
            -math.pi / 2, abs=1e-9
        )

    def test_passive_bound(self):
        with pytest.raises(ValueError):
            ReflectionLoad(complex(1.5, 0))

    def test_quarter_wave_pair_opposes(self):
        """Paper Section 5.2 footnote: quarter-wave cable delta = 180 deg."""
        short, longer = quarter_wave_pair(WAVELENGTH)
        g1 = short.reflection_coefficient(WAVELENGTH)
        g2 = longer.reflection_coefficient(WAVELENGTH)
        assert abs(g1 + g2) == pytest.approx(0.0, abs=1e-9)
        assert abs(g1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReflectionLoad(complex(1, 0), cable_length_m=-0.1)
        with pytest.raises(ValueError):
            ReflectionLoad(complex(1, 0), velocity_factor=0.0)
        with pytest.raises(ValueError):
            ReflectionLoad(complex(1, 0)).reflection_coefficient(0.0)


class TestTagDesigns:
    def test_phase_flip_delta_is_two(self):
        """Figure 3: always-reflect phase flip doubles the channel change."""
        assert phase_flip_design().coefficient_delta == pytest.approx(2.0)

    def test_open_short_delta_smaller(self):
        assert open_short_design().coefficient_delta < 1.0

    def test_bit_mapping_phase_flip(self):
        design = phase_flip_design()
        assert design.state_for_bit(1) is TagState.REFLECT_0
        assert design.state_for_bit(0) is TagState.REFLECT_180

    def test_bit_mapping_open_short(self):
        design = open_short_design()
        assert design.state_for_bit(1) is TagState.ABSORB
        assert design.state_for_bit(0) is TagState.REFLECT_0

    def test_bad_bit(self):
        with pytest.raises(ValueError):
            phase_flip_design().state_for_bit(2)

    def test_loads_factory(self):
        short, longer = phase_flip_loads(WAVELENGTH)
        assert longer.cable_length_m > short.cable_length_m


class TestOscillators:
    def test_witag_crystal_microwatts(self):
        """Paper Section 7: 50 kHz clock consumes a few microwatts."""
        osc = witag_crystal_50khz()
        assert osc.nominal_hz == 50e3
        assert osc.power_uw < 5.0

    def test_precision_20mhz_over_1mw(self):
        """Paper Section 7: MHz precision oscillators are > 1 mW."""
        assert precision_oscillator_20mhz().power_uw > 1000.0

    def test_ring_20mhz_tens_of_microwatts(self):
        """Paper Section 7: ring oscillators consume tens of microwatts."""
        power = ring_oscillator_20mhz().power_uw
        assert 10.0 < power < 100.0

    def test_ring_drift_600khz_per_5c(self):
        """Paper footnote 4: 5 degC shifts a ring oscillator by ~600 kHz."""
        ring = ring_oscillator_20mhz()
        shift = ring.frequency_at(30.0) - ring.nominal_hz
        assert shift == pytest.approx(600e3, rel=0.01)

    def test_crystal_stable_over_temperature(self):
        crystal = witag_crystal_50khz()
        assert abs(crystal.frequency_error_ppm(45.0)) < 20.0

    def test_power_scales_with_f_squared(self):
        """Paper Section 7: oscillator power proportional to f^2."""
        p1 = power_vs_frequency_uw(1e6, base_uw=0.0)
        p2 = power_vs_frequency_uw(2e6, base_uw=0.0)
        assert p2 / p1 == pytest.approx(4.0)

    def test_timing_drift_accumulates(self):
        ring = ring_oscillator_20mhz()
        d1 = ring.timing_drift_s(1e-3, 30.0)
        d2 = ring.timing_drift_s(2e-3, 30.0)
        assert d2 == pytest.approx(2 * d1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Oscillator(OscillatorKind.CRYSTAL, 0.0, 1e-10)
        with pytest.raises(ValueError):
            Oscillator(OscillatorKind.CRYSTAL, 1e3, -1.0)
        with pytest.raises(ValueError):
            witag_crystal_50khz().timing_drift_s(-1.0, 25.0)
        with pytest.raises(ValueError):
            power_vs_frequency_uw(0.0)
