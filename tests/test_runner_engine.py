"""Unit tests for the parallel experiment engine's machinery.

Determinism has its own suite (``test_runner_determinism.py``); this
one covers the plumbing: spec validation, chunking edge cases, the
serial fallback, error propagation out of workers, timing counters, and
result rendering.
"""

import pytest

from repro.runner import (
    SweepError,
    SweepSpec,
    UnitContext,
    WorkUnitError,
    run_sessions,
    run_sweep,
    run_units,
)
from repro.runner.engine import _auto_chunk_size, _chunked

pytestmark = pytest.mark.runner


def echo(ctx: UnitContext):
    return ctx.parameters


def double_x(ctx: UnitContext):
    return ctx.parameters["x"] * 2


def boom(ctx: UnitContext):
    if ctx.parameters["x"] == 2:
        raise ValueError("synthetic failure in unit 2")
    return ctx.parameters["x"]


def units(n, seed=0):
    return [
        UnitContext(index=i, parameters={"x": i}, root_seed=seed)
        for i in range(n)
    ]


class TestSweepSpecValidation:
    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec(axes={})

    def test_rejects_empty_axis_values(self):
        with pytest.raises(ValueError, match="has no values"):
            SweepSpec(axes={"x": []})

    def test_rejects_non_sequence_axis(self):
        with pytest.raises(ValueError, match="must be a sequence"):
            SweepSpec(axes={"x": 5})

    def test_rejects_non_string_axis_name(self):
        with pytest.raises(ValueError, match="must be a string"):
            SweepSpec(axes={3: [1]})

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            SweepSpec(axes={"x": [1]}, chunk_size=0)

    def test_grid_order_and_count(self):
        spec = SweepSpec(axes={"a": [1, 2], "b": ["u", "v", "w"]})
        assert spec.n_points == 6
        grid = [u.parameters for u in spec.units()]
        assert grid[0] == {"a": 1, "b": "u"}
        assert grid[1] == {"a": 1, "b": "v"}
        assert grid[-1] == {"a": 2, "b": "w"}


class TestChunking:
    def test_zero_units_runs_empty(self):
        result = run_units(echo, [], n_workers=1)
        assert result.points == ()
        assert result.values == []
        assert result.worker_timings == ()

    def test_chunk_larger_than_total(self):
        result = run_units(echo, units(3), n_workers=1, chunk_size=100)
        assert len(result.values) == 3
        assert result.chunk_size == 100

    def test_uneven_remainder(self):
        batches = _chunked(units(7), 3)
        assert [len(b) for b in batches] == [3, 3, 1]
        result = run_units(double_x, units(7), n_workers=1, chunk_size=3)
        assert result.values == [0, 2, 4, 6, 8, 10, 12]

    def test_auto_chunk_size_bounds(self):
        assert _auto_chunk_size(0, 4) == 1
        assert _auto_chunk_size(1, 4) == 1
        assert _auto_chunk_size(100, 2) == 13  # ceil(100 / 8)
        assert _auto_chunk_size(5, 1) == 2

    def test_rejects_bad_runtime_chunk(self):
        with pytest.raises(ValueError, match="chunk_size"):
            run_units(echo, units(3), n_workers=1, chunk_size=0)


class TestSerialFallback:
    def test_one_worker_is_serial(self):
        result = run_units(echo, units(3), n_workers=1)
        assert result.executor == "serial"
        assert len(result.worker_timings) == 1

    def test_forced_serial_with_many_workers(self):
        result = run_units(echo, units(6), n_workers=4, executor="serial")
        assert result.executor == "serial"
        assert result.values == [{"x": i} for i in range(6)]

    def test_serial_accepts_unpicklable_fn(self):
        captured = []

        def closure(ctx):  # not picklable: local closure
            captured.append(ctx.index)
            return ctx.index

        result = run_units(closure, units(4), n_workers=1)
        assert result.values == [0, 1, 2, 3]
        assert captured == [0, 1, 2, 3]

    def test_rejects_bad_executor_name(self):
        with pytest.raises(ValueError, match="executor"):
            run_units(echo, units(1), executor="threads")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            run_units(echo, units(1), n_workers=0)


class TestErrorPropagation:
    def test_raising_unit_surfaces_serial(self, chaos):
        with pytest.raises(WorkUnitError) as excinfo:
            chaos.run(
                echo, units(5),
                faults=chaos.faults(crash=(2,)), retry=None,
                n_workers=1,
            )
        assert excinfo.value.index == 2
        assert excinfo.value.parameters == {"x": 2}
        assert "injected crash" in str(excinfo.value)
        assert "InjectedFault" in excinfo.value.cause
        assert excinfo.value.attempts == 1

    def test_raising_unit_surfaces_parallel(self, chaos):
        with pytest.raises(WorkUnitError) as excinfo:
            chaos.run(
                echo, units(5),
                faults=chaos.faults(crash=(2,)), retry=None,
                n_workers=3, executor="process", chunk_size=1,
            )
        assert excinfo.value.index == 2
        assert excinfo.value.chunk_index == 2
        assert "worker traceback" in str(excinfo.value)

    def test_user_exception_reaches_coordinator(self):
        # Non-injected failures take the same path as chaos faults.
        with pytest.raises(WorkUnitError) as excinfo:
            run_units(boom, units(5), n_workers=1)
        assert excinfo.value.index == 2
        assert "synthetic failure" in str(excinfo.value)
        assert "ValueError" in excinfo.value.cause

    def test_unpicklable_fn_on_process_pool_is_clear(self):
        def closure(ctx):
            return ctx.index

        with pytest.raises(SweepError):
            run_units(
                closure, units(4), n_workers=2, executor="process"
            )

    def test_work_unit_error_is_sweep_error(self):
        assert issubclass(WorkUnitError, SweepError)


class TestTimingCounters:
    def test_serial_counters_account_for_all_units(self):
        result = run_units(echo, units(9), n_workers=1, chunk_size=4)
        (timing,) = result.worker_timings
        assert timing.n_units == 9
        assert timing.n_chunks == 3
        assert timing.busy_s >= 0.0
        assert result.busy_s == timing.busy_s
        assert result.wall_s >= timing.busy_s

    def test_parallel_counters_cover_every_unit(self):
        result = run_units(
            echo, units(8), n_workers=2, executor="process", chunk_size=2
        )
        assert result.executor == "process"
        assert sum(t.n_units for t in result.worker_timings) == 8
        assert sum(t.n_chunks for t in result.worker_timings) == 4


class TestRunSweepAndResult:
    def test_run_sweep_values_in_grid_order(self):
        spec = SweepSpec(axes={"x": [3, 1, 2]}, seed=0)
        result = run_sweep(double_x, spec, n_workers=1)
        assert result.values == [6, 2, 4]
        assert [p.parameters["x"] for p in result.points] == [3, 1, 2]

    def test_spec_chunk_size_flows_through(self):
        spec = SweepSpec(axes={"x": [1, 2, 3]}, seed=0, chunk_size=2)
        result = run_sweep(double_x, spec, n_workers=1)
        assert result.chunk_size == 2

    def test_table_scalar_values(self):
        spec = SweepSpec(axes={"x": [1, 2]}, seed=0)
        result = run_sweep(double_x, spec, n_workers=1)
        rendered = result.table("demo", value_label="doubled").render()
        assert "doubled" in rendered
        assert "x" in rendered

    def test_table_dict_values_get_columns(self):
        def measure(ctx):
            return {"ber": 0.5, "rate": 1.25}

        spec = SweepSpec(axes={"d": [1.0, 2.0]}, seed=0)
        result = run_sweep(measure, spec, n_workers=1)
        rendered = result.table("demo").render()
        assert "ber" in rendered and "rate" in rendered


def legacy_measure(seed, x):
    return seed * 1000 + x


class TestLegacySweepBridge:
    """ParameterSweep.run_parallel == ParameterSweep.run, same seeds."""

    def test_parallel_path_matches_serial_path(self):
        from repro.analysis.sweep import ParameterSweep

        serial = ParameterSweep(
            axes={"x": [1, 2, 3, 4]}, measure=legacy_measure, base_seed=5
        )
        parallel = ParameterSweep(
            axes={"x": [1, 2, 3, 4]}, measure=legacy_measure, base_seed=5
        )
        a = serial.run()
        b = parallel.run_parallel(n_workers=2, executor="process")
        assert a == b
        assert [p.seed for p in b] == [5, 6, 7, 8]


class TestRunSessionsValidation:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one"):
            run_sessions(echo, 1)
        with pytest.raises(ValueError, match="exactly one"):
            run_sessions(echo, 1, queries=3, duration_s=1.0)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError, match="n_sessions"):
            run_sessions(echo, -1, queries=1)

    def test_zero_sessions_is_empty(self):
        result = run_sessions(echo, 0, queries=1)
        assert result.values == []

    def test_parameters_arity_checked(self):
        with pytest.raises(ValueError, match="one entry per session"):
            run_sessions(echo, 2, queries=1, parameters=[{}])


class TestChunkProgressObserver:
    """The ``on_chunk`` hook: the engine's event-loop drivability."""

    def test_called_once_per_chunk_in_completion_order(self):
        seen = []
        result = run_units(
            double_x,
            units(10),
            chunk_size=3,
            on_chunk=seen.append,
        )
        assert len(seen) == 4  # chunks of 3,3,3,1
        assert [p.chunks_done for p in seen] == [1, 2, 3, 4]
        assert all(p.n_chunks == 4 for p in seen)
        assert sum(p.n_units for p in seen) == 10
        assert not any(p.resumed for p in seen)
        # serial executor resolves chunks in submission order
        assert [p.chunk_index for p in seen] == [0, 1, 2, 3]
        assert [p.first_index for p in seen] == [0, 3, 6, 9]
        assert result.values == [x * 2 for x in range(10)]

    def test_resumed_chunks_reported_first_and_flagged(self, tmp_path):
        checkpoint = tmp_path / "run.ckpt.jsonl"
        run_units(
            double_x,
            units(8),
            chunk_size=2,
            checkpoint=checkpoint,
            on_chunk=lambda p: None,
        )
        seen = []
        resumed_run = run_units(
            double_x,
            units(8),
            chunk_size=2,
            checkpoint=checkpoint,
            resume=True,
            on_chunk=seen.append,
        )
        assert resumed_run.resumed_chunks == 4
        assert [p.resumed for p in seen] == [True] * 4
        # resumed chunks replay in chunk order before any execution
        assert [p.chunk_index for p in seen] == [0, 1, 2, 3]
        assert [p.chunks_done for p in seen] == [1, 2, 3, 4]

    def test_observer_exception_aborts_but_keeps_checkpoint(
        self, tmp_path
    ):
        """Raising from the observer = cooperative cancellation."""
        checkpoint = tmp_path / "cancel.ckpt.jsonl"

        class Stop(Exception):
            pass

        def cancel_after_two(progress):
            if progress.chunks_done == 2:
                raise Stop()

        with pytest.raises(Stop):
            run_units(
                double_x,
                units(10),
                chunk_size=2,
                checkpoint=checkpoint,
                on_chunk=cancel_after_two,
            )
        # the two completed chunks survived; a resume skips them and
        # still produces the full, bit-identical result
        seen = []
        resumed = run_units(
            double_x,
            units(10),
            chunk_size=2,
            checkpoint=checkpoint,
            resume=True,
            on_chunk=seen.append,
        )
        assert resumed.resumed_chunks == 2
        baseline = run_units(double_x, units(10), chunk_size=2)
        assert resumed.values == baseline.values
        assert sum(1 for p in seen if p.resumed) == 2

    def test_run_sweep_and_run_sessions_pass_through(self):
        from repro.runner.workers import SessionSpec

        seen = []
        spec = SweepSpec(axes={"x": [1, 2, 3, 4]}, chunk_size=2)
        run_sweep(double_x, spec, on_chunk=seen.append)
        assert [p.chunks_done for p in seen] == [1, 2]
        seen.clear()
        run_sessions(
            SessionSpec(kind="los"),
            2,
            queries=1,
            chunk_size=1,
            on_chunk=seen.append,
        )
        assert [p.chunks_done for p in seen] == [1, 2]
