"""Unit tests for correlated fading, MIMO fragility and 802.11ax support."""

import numpy as np
import pytest

from repro.phy.fading import CorrelatedFadingChannel, GaussMarkovFading
from repro.phy.he import (
    HE_GI_LONG_S,
    HE_GI_SHORT_S,
    HeMcs,
    he_ppdu_airtime_s,
    he_preamble_s,
    he_symbol_duration_s,
    witag_he_throughput_bps,
)
from repro.phy.mimo import (
    MimoChannelMatrix,
    effective_mismatch_power,
    mimo_fragility_db,
    zf_stream_sinrs,
)


class TestGaussMarkov:
    def test_stationary_unit_variance(self):
        process = GaussMarkovFading(rng=np.random.default_rng(0))
        # Advance by >> tau so samples are effectively independent.
        samples = [process.advance(1.0) for _ in range(5000)]
        power = np.mean(np.abs(samples) ** 2)
        assert power == pytest.approx(1.0, rel=0.1)

    def test_short_steps_highly_correlated(self):
        process = GaussMarkovFading(
            coherence_time_s=0.1, rng=np.random.default_rng(1)
        )
        before = process.state
        after = process.advance(1e-4)  # dt << tau
        assert abs(after - before) < 0.15

    def test_long_steps_decorrelate(self):
        process = GaussMarkovFading(
            coherence_time_s=0.1, rng=np.random.default_rng(2)
        )
        pairs = []
        for _ in range(2000):
            a = process.state
            b = process.advance(1.0)  # dt >> tau
            pairs.append((a, b))
        corr = np.mean([a * np.conj(b) for a, b in pairs])
        assert abs(corr) < 0.1

    def test_correlation_after(self):
        process = GaussMarkovFading(coherence_time_s=0.1)
        assert process.correlation_after(0.0) == 1.0
        assert process.correlation_after(0.1) == pytest.approx(np.exp(-1))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussMarkovFading(coherence_time_s=0.0)
        with pytest.raises(ValueError):
            GaussMarkovFading().advance(-1.0)


class TestCorrelatedFadingChannel:
    def test_mean_powers_preserved(self):
        los = complex(1e-3, 0.0)
        channel = CorrelatedFadingChannel(
            direct_los=los, rng=np.random.default_rng(3)
        )
        direct, tag = [], []
        for _ in range(5000):
            channel.advance(1.0)  # iid samples
            direct.append(channel.direct_gain())
            tag.append(channel.tag_fading())
        assert np.mean(np.abs(direct) ** 2) == pytest.approx(
            abs(los) ** 2, rel=0.1
        )
        assert np.mean(np.abs(tag) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_consecutive_queries_nearly_identical(self):
        channel = CorrelatedFadingChannel(
            direct_los=complex(1e-3, 0.0),
            coherence_time_s=0.1,
            rng=np.random.default_rng(4),
        )
        channel.advance(0.0015)
        first = channel.tag_fading()
        channel.advance(0.0015)  # one query cycle later
        second = channel.tag_fading()
        assert abs(first - second) < 0.1

    def test_fading_disabled(self):
        channel = CorrelatedFadingChannel(
            direct_los=complex(1e-3, 0.0),
            rician_k_db=None,
            tag_rician_k_db=None,
        )
        channel.advance(10.0)
        assert channel.direct_gain() == complex(1e-3, 0.0)
        assert channel.tag_fading() == 1.0 + 0.0j

    def test_end_to_end_session_runs(self):
        from repro.core.session import MeasurementSession
        from repro.sim.scenario import los_scenario

        system, _ = los_scenario(4.0, seed=3, coherence_time_s=0.1)
        assert system.fading_channel is not None
        stats = MeasurementSession(
            system, rng=np.random.default_rng(1)
        ).run_for(0.3)
        assert 0.0 <= stats.ber < 0.3
        assert stats.throughput_bps > 25e3

    def test_correlated_fading_produces_longer_bursts(self):
        """Error-run lengths are longer under correlated fading."""
        from repro.core.session import MeasurementSession
        from repro.sim.scenario import los_scenario

        def mean_bad_run(coherence):
            system, _ = los_scenario(
                4.0, seed=8, coherence_time_s=coherence
            )
            session = MeasurementSession(
                system, rng=np.random.default_rng(2)
            )
            session.run_for(1.5)
            bers = session.per_query_ber()
            runs, current = [], 0
            for b in bers:
                if b > 0.2:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return float(np.mean(runs)) if runs else 0.0

        assert mean_bad_run(0.2) >= mean_bad_run(None or 1e-6)


class TestMimo:
    def test_sample_unit_power(self):
        model = MimoChannelMatrix(3, rng=np.random.default_rng(5))
        powers = [
            np.mean(np.abs(model.sample()) ** 2) for _ in range(500)
        ]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.15)

    def test_perturbation_is_rank_one(self):
        model = MimoChannelMatrix(3, rng=np.random.default_rng(6))
        delta = model.sample_tag_perturbation(0.05)
        singular = np.linalg.svd(delta, compute_uv=False)
        assert singular[0] == pytest.approx(0.05, rel=1e-6)
        assert singular[1] < 1e-12

    def test_fresh_estimate_noise_limited(self):
        model = MimoChannelMatrix(2, rng=np.random.default_rng(7))
        h = model.sample()
        sinrs = zf_stream_sinrs(h, h, 1e4)
        assert np.all(sinrs > 10.0)

    def test_stale_estimate_hurts(self):
        model = MimoChannelMatrix(3, rng=np.random.default_rng(8))
        h = model.sample()
        delta = model.sample_tag_perturbation(0.05)
        fresh = zf_stream_sinrs(h + delta, h + delta, 1e4)
        stale = zf_stream_sinrs(h + delta, h, 1e4)
        assert np.min(stale) < np.min(fresh)

    def test_fragility_grows_with_conditioning(self):
        rich = mimo_fragility_db(3, rician_k_db=5.0, n_trials=150)
        los = mimo_fragility_db(3, rician_k_db=15.0, n_trials=150)
        assert los > rich + 5.0

    def test_3x3_fragility_near_calibration(self):
        """The error model's MIMO share (~10-12 dB) is physically grounded."""
        value = mimo_fragility_db(3, n_trials=300)
        assert 7.0 < value < 14.0

    def test_siso_baseline_is_zero(self):
        assert abs(mimo_fragility_db(1, n_trials=100)) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MimoChannelMatrix(0)
        with pytest.raises(ValueError):
            MimoChannelMatrix(3).sample_tag_perturbation(-1.0)
        with pytest.raises(ValueError):
            zf_stream_sinrs(np.eye(2), np.eye(3), 10.0)
        with pytest.raises(ValueError):
            zf_stream_sinrs(np.eye(2), np.eye(2), 0.0)
        with pytest.raises(ValueError):
            mimo_fragility_db(2, n_trials=0)

    def test_effective_mismatch_zero_for_fresh(self):
        h = MimoChannelMatrix(2, rng=np.random.default_rng(9)).sample()
        assert effective_mismatch_power(h, h) == pytest.approx(0.0)


class TestHe:
    def test_published_rates(self):
        # HE 20 MHz, 1 stream, 0.8 us GI.
        assert HeMcs(0).data_rate_bps() / 1e6 == pytest.approx(8.6, abs=0.05)
        assert HeMcs(7).data_rate_bps() / 1e6 == pytest.approx(86.0, abs=0.5)
        assert HeMcs(11).data_rate_bps() / 1e6 == pytest.approx(143.4, abs=0.5)

    def test_80mhz_rate(self):
        # HE MCS 11, 80 MHz, 2 streams, 0.8 GI = 1201 Mb/s.
        assert HeMcs(11, 2).data_rate_bps(80) / 1e6 == pytest.approx(
            1201.0, abs=2.0
        )

    def test_longer_gi_slower(self):
        fast = HeMcs(7).data_rate_bps(gi_s=HE_GI_SHORT_S)
        slow = HeMcs(7).data_rate_bps(gi_s=HE_GI_LONG_S)
        assert fast > slow

    def test_symbol_duration(self):
        assert he_symbol_duration_s() == pytest.approx(13.6e-6)

    def test_preamble_grows_with_streams(self):
        assert he_preamble_s(2) > he_preamble_s(1)
        assert he_preamble_s(1) == pytest.approx(44e-6)

    def test_airtime_monotone_in_size(self):
        small = he_ppdu_airtime_s(500, HeMcs(7))
        large = he_ppdu_airtime_s(5000, HeMcs(7))
        assert large > small

    def test_witag_on_ax_same_regime(self):
        """Paper Section 4: WiTAG will be compatible with 802.11ax.

        The tag rate stays in the tens of Kbps: the clock, not the PHY
        generation, sets it (HE's 13.6 us symbols make subframes 2 symbols
        for a 50 kHz tag).
        """
        rate = witag_he_throughput_bps()
        assert 25e3 < rate < 45e3

    def test_validation(self):
        with pytest.raises(ValueError):
            HeMcs(12)
        with pytest.raises(ValueError):
            HeMcs(0, spatial_streams=9)
        with pytest.raises(ValueError):
            HeMcs(0).data_rate_bps(gi_s=1e-6)
        with pytest.raises(ValueError):
            HeMcs(0).data_bits_per_symbol(30)
        with pytest.raises(ValueError):
            he_preamble_s(0)
        with pytest.raises(ValueError):
            he_ppdu_airtime_s(-1, HeMcs(0))
