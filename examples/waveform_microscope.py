#!/usr/bin/env python3
"""Under the microscope: watching a tag corrupt OFDM symbols in IQ samples.

Every other example works at frame granularity.  This one zooms all the
way in (`repro.phy.waveform`): actual OFDM symbols through a channel whose
tag flips its reflection phase for a window of symbols, decoded by a
receiver that — like every 802.11 receiver — trusts the channel estimate
it made from the preamble.  The per-symbol error profile shows the paper's
Section 5 mechanism directly, and comparing constellations shows why
queries should use the highest reliable rate (Section 4.1).

Run:
    python examples/waveform_microscope.py
"""

import numpy as np

from repro.phy.waveform import run_corruption_experiment

FLIP = (8, 12)
WIDTH = 40


def bar(value: float) -> str:
    filled = int(round(value * WIDTH))
    return "#" * filled + "." * (WIDTH - filled)


def show_profile(name: str, bits_per_symbol: int) -> None:
    rates = run_corruption_experiment(
        bits_per_symbol=bits_per_symbol, flip_range=FLIP
    )
    print(f"\n{name}: per-OFDM-symbol bit error rate")
    for index, rate in enumerate(rates):
        marker = " <-- tag flipped" if FLIP[0] <= index < FLIP[1] else ""
        print(f"  sym {index:2d} |{bar(rate)}| {rate:5.2f}{marker}")
    window = np.mean(rates[FLIP[0] : FLIP[1]])
    outside = np.mean(
        [r for i, r in enumerate(rates) if not FLIP[0] <= i < FLIP[1]]
    )
    print(f"  mean BER inside flip window: {window:.3f}, outside: {outside:.3f}")


def main() -> None:
    print(
        "One channel estimate from the preamble; the tag flips its phase\n"
        f"during symbols {FLIP[0]}..{FLIP[1] - 1}.  Errors land exactly "
        "there."
    )
    show_profile("16-QAM (dense constellation, what query frames use)", 4)
    show_profile("BPSK (robust constellation, immune to this tag)", 1)
    print(
        "\ntakeaway: the same reflection that shreds 16-QAM does nothing "
        "to BPSK --\nWiTAG queries ride the highest reliable MCS so the "
        "tag's small perturbation\nis enough (paper Sections 4.1 and 5)."
    )


if __name__ == "__main__":
    main()
