#!/usr/bin/env python3
"""Tag power engineering: budgets, harvesting, and temperature limits.

Walks through the paper's Section 7 argument with the library's hardware
models: why channel-shifting tags need >= 20 MHz clocks, what that costs,
whether ambient RF can power each design, and what a warm room does to a
ring-oscillator tag's BER.

Run:
    python examples/power_budget.py
"""

import numpy as np

from repro.core import MeasurementSession
from repro.sim import los_scenario
from repro.tag import (
    RfHarvester,
    TagStateMachine,
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    power_vs_frequency_uw,
    ring_oscillator_20mhz,
    witag_budget,
)


def show_budgets() -> None:
    print("tag power budgets (paper Section 7):\n")
    harvester = RfHarvester()
    for budget in (
        witag_budget(),
        channel_shift_ring_budget(),
        channel_shift_precision_budget(),
    ):
        needed = harvester.min_input_dbm(budget)
        harvest = f"harvestable from {needed:g} dBm RF" if needed is not None \
            else "NOT harvestable"
        print(f"  {budget.name:32s} {budget.total_uw:8.1f} uW   {harvest}")
        for component, draw in sorted(budget.components.items()):
            print(f"      {component:20s} {draw:8.2f} uW")
    print()


def show_frequency_scaling() -> None:
    print("oscillator power ~ f^2 (why 20 MHz clocks hurt):\n")
    for f in (50e3, 500e3, 2e6, 11e6, 20e6):
        power = power_vs_frequency_uw(f)
        bar = "#" * min(60, int(np.log10(max(power, 1)) * 12))
        print(f"  {f / 1e6:6.2f} MHz {power:10.1f} uW {bar}")
    print()


def show_temperature_effect() -> None:
    print("BER vs room temperature, crystal vs ring oscillator tag:\n")
    print(f"  {'temp':>6s} {'crystal-50kHz':>15s} {'ring-20MHz':>12s}")
    for temp in (25.0, 27.0, 30.0):
        row = [f"  {temp:5.0f}C"]
        for name, factory in (
            ("crystal", None),
            ("ring", ring_oscillator_20mhz),
        ):
            tag = (
                TagStateMachine(rng=np.random.default_rng(3))
                if factory is None
                else TagStateMachine(
                    oscillator=factory(), rng=np.random.default_rng(3)
                )
            )
            system, _ = los_scenario(2.0, seed=int(temp), tag=tag)
            system.temperature_c = temp
            stats = MeasurementSession(
                system, rng=np.random.default_rng(int(temp))
            ).run_for(0.3)
            row.append(f"{stats.ber:12.4f}")
        print(" ".join(row))
    print(
        "\npaper footnote 4: a 5 degC change shifts a ring oscillator by "
        "~600 kHz,\nwhich is why channel-shifting tags only work where "
        "temperature is stable."
    )


def main() -> None:
    show_budgets()
    show_frequency_scaling()
    show_temperature_effect()


if __name__ == "__main__":
    main()
