#!/usr/bin/env python3
"""Farm-monitoring sensor network: many tags, one reader, FEC on messages.

The paper motivates backscatter with applications "ranging from implantable
body sensors to farm monitoring" (Section 1).  This example deploys several
moisture sensors at different distances from the reader, polls them
round-robin, and protects each reading with message-level redundancy — the
error control the paper defers to future work (Section 4.1).

Run:
    python examples/sensor_network.py
"""

import numpy as np

from repro.core import TagEncoder, TagMessage, TagReader
from repro.sim import TagPoller, los_scenario

SENSORS = {
    "field-north": 1.5,  # metres from the reader (client)
    "field-east": 3.0,
    "field-middle": 4.0,  # worst spot: reflection minimum
    "field-south": 6.5,
}


def poll_all_sensors() -> None:
    """Round-robin BER/throughput check across all sensor positions."""
    systems = {
        name: los_scenario(distance, seed=hash(name) % 1000)[0]
        for name, distance in SENSORS.items()
    }
    poller = TagPoller(systems, dwell_s=0.2, rng=np.random.default_rng(1))
    print("polling all sensors (0.2 s dwell, 2 rounds)...\n")
    results = poller.run_rounds(2)
    print(f"{'sensor':14s} {'BER':>8s} {'rate (Kbps)':>12s} {'queries':>8s}")
    for result in results:
        stats = result.stats
        print(
            f"{result.tag_name:14s} {stats.ber:8.4f} "
            f"{stats.throughput_bps / 1e3:12.1f} {stats.queries:8d}"
        )


def transfer_protected_readings() -> None:
    """Send framed readings, protected by ARQ-style retransmission.

    WiTAG's errors arrive as whole-query bursts (a deep fade of the tag's
    reflected path kills corruption for one A-MPDU at a time), so the
    effective protection is to send each CRC-framed reading twice and let
    the reader's frame scanner pick a clean copy — see
    benchmarks/test_ablation_fec.py for the measurement behind this
    choice.
    """
    encoder = TagEncoder()
    print("\ntransferring readings (ARQ: retransmit until CRC-clean)...\n")
    for name, distance in SENSORS.items():
        system, _ = los_scenario(distance, seed=500 + int(distance * 10))
        reading = f"{name}:moisture=0.{np.random.default_rng(0).integers(10, 99)}"
        message = TagMessage(payload=reading.encode())
        reader = TagReader(encoder=encoder)
        queries = 0
        delivered = False
        attempts = 0
        while not delivered and attempts < 8:
            attempts += 1
            system.load_tag_bits(encoder.encode(message.to_bits()))
            while system.tag.pending_bits and not delivered:
                result = system.run_query()
                reader.ingest(result.block_ack, result.query)
                queries += 1
                delivered = any(
                    m.payload == message.payload for m in reader.messages()
                )
        status = reading if delivered else "LOST"
        print(
            f"  {name:14s} ({distance:g} m): {status} after {queries} "
            f"queries ({attempts} attempts)"
        )


def main() -> None:
    poll_all_sensors()
    transfer_protected_readings()


if __name__ == "__main__":
    main()
