#!/usr/bin/env python3
"""Quickstart: a tag sends one sensor reading through an unmodified AP.

Reproduces the paper's Figure 2 loop end to end:

1. a WiFi client transmits query A-MPDUs;
2. a battery-free tag corrupts chosen subframes to spell out its bits;
3. the (completely standard) AP answers with block ACKs;
4. the client reads the tag's framed message out of the bitmaps.

Run:
    python examples/quickstart.py
"""

from repro.core import TagEncoder, TagMessage, TagReader
from repro.sim import los_scenario


def main() -> None:
    # A lab deployment: AP and client 8 m apart, tag 2 m from the client.
    system, info = los_scenario(tag_from_client_m=2.0, seed=7)
    print(f"scenario: {info.name}")
    print(f"  link SNR:    {info.link_snr_db:.1f} dB -> query MCS {info.mcs_index}")
    print(f"  tag clock:   {info.tag_clock_hz / 1e3:g} kHz")
    print(f"  rx at tag:   {system.rx_power_at_tag_dbm:.1f} dBm")

    # The tag wants to send one framed sensor reading.
    message = TagMessage(payload=b"temperature=23.5C")
    encoder = TagEncoder()
    system.load_tag_bits(encoder.encode(message.to_bits()))
    print(f"\nqueued {message.framed_bits} framed bits on the tag")

    # The client queries until the message arrives.
    reader = TagReader(encoder=encoder)
    queries = 0
    while not reader.messages() and queries < 20:
        result = system.run_query()
        reader.ingest(result.block_ack, result.query)
        queries += 1
        print(
            f"query {queries}: bitmap {result.block_ack.bitmap:016x} "
            f"({result.n_bits} tag bits, {result.bit_errors} errors, "
            f"{result.cycle_s * 1e3:.2f} ms)"
        )

    for received in reader.messages():
        print(f"\nrecovered tag message: {received.payload.decode()!r}")
    if not reader.messages():
        raise SystemExit("message did not arrive -- try another seed")

    rate = message.framed_bits / (queries * result.cycle_s)
    print(f"effective rate: {rate / 1e3:.1f} Kbps over {queries} queries")


if __name__ == "__main__":
    main()
