#!/usr/bin/env python3
"""Inventory wall: many tags, one reader, addressed triggers.

Extends the paper's single-tag design the way its trigger mechanism (§7)
invites: different known trigger patterns select different tags, so a
reader can inventory a shelf of battery-free tags one addressed query at
a time.  Also demonstrates what goes wrong *without* addressing — every
tag answers a broadcast query at once and their corruption collides.

Run:
    python examples/multitag_inventory.py
"""

import numpy as np

from repro.core import MultiTagCell, TagEndpoint, WiTagConfig
from repro.core.framing import TagMessage
from repro.sim import los_scenario
from repro.tag.state_machine import TagStateMachine

SHELF = {
    "pallet-01": 1.2,
    "pallet-02": 2.8,
    "pallet-03": 4.5,
    "pallet-04": 6.3,
}


def build_cell() -> MultiTagCell:
    endpoints = {}
    for i, (name, distance) in enumerate(SHELF.items()):
        system, _ = los_scenario(distance, seed=300 + i)
        endpoints[name] = TagEndpoint(
            name=name,
            tag=TagStateMachine(rng=np.random.default_rng(400 + i)),
            error_model=system.error_model,
            rx_power_dbm=system.rx_power_at_tag_dbm,
        )
    return MultiTagCell(
        config=WiTagConfig(),
        endpoints=endpoints,
        rng=np.random.default_rng(500),
    )


def inventory_round(cell: MultiTagCell) -> None:
    print("addressed inventory round:\n")
    for i, name in enumerate(sorted(SHELF)):
        payload = f"{name}:count={17 + i}".encode()
        bits = TagMessage(payload=payload).to_bits()
        cell.load_bits(name, bits + [1] * (62 - len(bits) % 62))
    for name, result in cell.poll_round().items():
        sent = result.per_tag_sent.get(name, ())
        errors = sum(a != b for a, b in zip(sent, result.raw_bits))
        print(
            f"  {name}: {len(sent)} bits, {errors} errors, "
            f"responders={list(result.responded)}"
        )


def broadcast_collision(cell: MultiTagCell) -> None:
    print("\nwhat happens without addressing (broadcast query):\n")
    rng = np.random.default_rng(600)
    for endpoint in cell.endpoints.values():
        endpoint.tag.data_queue.clear()  # drop leftovers from the round
    for name in SHELF:
        # Each tag wants to send its own (random) data simultaneously.
        cell.load_bits(name, [int(b) for b in rng.integers(0, 2, 62)])
    result = cell.run_query()  # broadcast: everyone answers
    total_errors = 0
    observed = 0
    for name, sent in result.per_tag_sent.items():
        errors = sum(a != b for a, b in zip(sent, result.raw_bits))
        total_errors += errors
        observed += len(sent)
    print(
        f"  responders: {list(result.responded)}; "
        f"{total_errors}/{observed} bits garbled by collision"
    )
    print("  -> a deployment polls tags with addressed triggers instead")


def main() -> None:
    cell = build_cell()
    inventory_round(cell)
    broadcast_collision(cell)


if __name__ == "__main__":
    main()
