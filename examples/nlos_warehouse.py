#!/usr/bin/env python3
"""Non-line-of-sight deployment: tags reaching an AP through walls.

Recreates the paper's Figure 6 scenario as an application: a warehouse
reader polls tags whose AP sits one or several rooms away, behind wooden
walls, concrete and metal cabinets (the paper's Figure 4 floor plan).
Prints the per-run BER distribution the paper plots as a CDF.

Run:
    python examples/nlos_warehouse.py
"""

import numpy as np

from repro.analysis import EmpiricalCdf
from repro.core import MeasurementSession
from repro.sim import nlos_scenario, paper_testbed


def describe_floorplan() -> None:
    plan = paper_testbed()
    print(f"floor plan: {plan.name} ({plan.width_m:g} x {plan.height_m:g} m)")
    for location in ("A", "B"):
        link = plan.link(f"client_{location}", "ap")
        print(
            f"  location {location}: {link.distance_m:.1f} m from AP, "
            f"{link.walls_crossed} obstacles, "
            f"{link.obstruction_db:g} dB wall loss"
        )
    print()


def measure(location: str, runs: int = 8, seconds: float = 0.5) -> EmpiricalCdf:
    bers = []
    for run in range(runs):
        system, info = nlos_scenario(location, seed=2000 + run)
        session = MeasurementSession(
            system, rng=np.random.default_rng(run)
        )
        stats = session.run_for(seconds)
        bers.append(stats.ber)
    print(
        f"location {location}: MCS {info.mcs_index}, link SNR "
        f"{info.link_snr_db:.1f} dB, {runs} runs x {seconds:g} s"
    )
    return EmpiricalCdf.from_samples(bers)


def main() -> None:
    describe_floorplan()
    cdfs = {location: measure(location) for location in ("A", "B")}
    print()
    print(f"{'location':10s} {'median BER':>12s} {'90th pct':>10s} {'max':>10s}")
    for location, cdf in cdfs.items():
        print(
            f"{location:10s} {cdf.median:12.4f} "
            f"{cdf.percentile(90):10.4f} {cdf.percentile(100):10.4f}"
        )
    print(
        "\npaper Figure 6: 90th-percentile BER 0.007 at A, 0.018 at B; "
        "'performance is very stable ... even when the AP and client "
        "device are 17 meters apart and the line of sight is completely "
        "blocked'"
    )


if __name__ == "__main__":
    main()
