#!/usr/bin/env python3
"""WiTAG on a WPA2-encrypted network — and why prior systems cannot follow.

The paper's sharpest claim (Section 1): because the tag corrupts whole
(encrypted) MAC subframes instead of rewriting PHY symbols, WiTAG works
unchanged on WPA/WEP networks.  This example runs the same tag message
over an open and a WPA2-CCMP network, then demonstrates the failure mode
of symbol-rewriting systems: one flipped ciphertext bit destroys the MIC.

Run:
    python examples/encrypted_network.py
"""

from repro.core import EncryptionMode, TagEncoder, TagMessage, TagReader
from repro.mac.security.ccmp import CcmpContext, MicError
from repro.phy.channel import ChannelGeometry
from repro.sim import build_system

KEY = b"witag-example-k!"


def transfer_over(mode: EncryptionMode, key: bytes | None) -> int:
    system, info = build_system(
        ChannelGeometry.on_line(8.0, 2.0),
        encryption=mode,
        encryption_key=key,
        seed=11,
    )
    encoder = TagEncoder()
    message = TagMessage(payload=b"badge=4711;door=open")
    system.load_tag_bits(encoder.encode(message.to_bits()))
    reader = TagReader(encoder=encoder)
    queries = 0
    while not reader.messages() and queries < 20:
        result = system.run_query()
        reader.ingest(result.block_ack, result.query)
        queries += 1
    received = reader.messages()
    label = mode.value
    if received:
        print(
            f"  {label:10s}: delivered {received[0].payload.decode()!r} "
            f"in {queries} queries"
        )
    else:
        print(f"  {label:10s}: FAILED")
    return queries


def show_symbol_rewrite_failure() -> None:
    """What happens to a HitchHike-style tag on this network."""
    print("\nwhy symbol-rewriting backscatter cannot do this:")
    ccmp = CcmpContext(KEY)
    protected, _ = ccmp.encrypt(b"an encrypted WiFi frame", b"\x02" * 6)
    # A codeword-translating tag flips payload bits in flight.
    rewritten = bytearray(protected)
    rewritten[12] ^= 0x0F
    try:
        CcmpContext(KEY).decrypt(bytes(rewritten), b"\x02" * 6)
        print("  (unexpectedly decrypted!)")
    except MicError:
        print(
            "  flipping ciphertext bits -> CCMP MIC failure -> the AP "
            "drops the frame;\n  the embedded tag data is unreachable "
            "(paper Section 2, HitchHike limitation 1)"
        )


def main() -> None:
    print("same tag, same message, two networks:\n")
    transfer_over(EncryptionMode.OPEN, None)
    transfer_over(EncryptionMode.WPA2_CCMP, KEY)
    show_symbol_rewrite_failure()
    print(
        "\nWiTAG never reads or writes frame contents -- it only decides "
        "which\nsubframes survive -- so ciphertext is as good as plaintext."
    )


if __name__ == "__main__":
    main()
