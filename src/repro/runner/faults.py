"""Deterministic fault injection and retry policy for the engine.

Long sweeps meet real adversity: a worker process dies, a chunk hangs
on a pathological parameter point, a result comes back mangled.  The
paper family this repo reproduces treats reliability-under-adversity as
a first-class concern (GuardRider's RS coding over uncontrolled WiFi
traffic, CRC-signalled retransmission on WiTAG-style corruption), and
the execution layer should meet the same bar: degrade gracefully, retry
deterministically, never lose finished work.

Two pieces live here:

* :class:`FaultSpec` — a picklable description of *injected* faults.
  The engine consults it at seeded points (a unit index plus the
  chunk's attempt number), so a test — or ``repro sweep
  --inject-faults`` — can make specific units crash, hang, return a
  corrupt payload, or kill their worker process outright, and the fault
  pattern replays identically on every run.
* :class:`RetryPolicy` — how the engine *tolerates* faults: per-chunk
  retry budget, exponential backoff with deterministic jitter, an
  in-worker chunk deadline, and a circuit breaker that abandons the
  process pool for the always-correct serial executor when the
  executor itself keeps failing.

Both compose with the determinism contract rather than fighting it:
work functions draw all randomness from their :class:`UnitContext`, so
a retried, resumed, or serial-fallback chunk recomputes bit-identical
values, and backoff jitter derives from :func:`repro.seeding.derived_seed`
rather than wall-clock entropy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..seeding import derived_seed

__all__ = [
    "CorruptPayload",
    "FaultSpec",
    "InjectedFault",
    "RetryEvent",
    "RetryPolicy",
]


class InjectedFault(RuntimeError):
    """Raised by an injected crash (or an exit fault downgraded to one)."""


@dataclass(frozen=True)
class CorruptPayload:
    """Marker wrapping a unit value an injected fault corrupted.

    The coordinator's integrity check treats any :class:`CorruptPayload`
    in a chunk's values as a chunk failure — the engine-level analogue
    of a CRC catching a mangled frame — so corruption is detected and
    retried instead of silently landing in a :class:`SweepResult`.
    """

    value: Any


#: Fault kinds in the priority order applied when one unit is named by
#: several (the most disruptive wins).
_FAULT_KINDS = ("exit", "crash", "hang", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault plan keyed on ``(unit index, attempt)``.

    Attributes:
        crash: unit indices that raise :class:`InjectedFault` before
            their work function runs.
        hang: unit indices that sleep :attr:`hang_s` before running
            (long enough to trip a :class:`RetryPolicy` chunk deadline).
        corrupt: unit indices whose return value is wrapped in
            :class:`CorruptPayload` (detected coordinator-side).
        exit: unit indices that kill their worker process with
            ``os._exit`` — the process pool sees a dead worker, not an
            exception.  In the serial executor (same pid as the
            coordinator) the fault downgrades to a crash so injection
            never kills the caller's interpreter.
        failures: how many attempts of a faulty unit's chunk actually
            fault; attempt numbers ``>= failures`` run clean, so a
            retried chunk deterministically succeeds.  Set it above the
            retry budget to model a permanent fault.
        hang_s: how long a hang sleeps.
        coordinator_pid: captured at construction; distinguishes the
            serial executor from worker processes for ``exit`` faults.
    """

    crash: tuple[int, ...] = ()
    hang: tuple[int, ...] = ()
    corrupt: tuple[int, ...] = ()
    exit: tuple[int, ...] = ()
    failures: int = 1
    hang_s: float = 0.05
    coordinator_pid: int = field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        if self.failures < 0:
            raise ValueError("failures must be >= 0")
        if self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")
        for kind in _FAULT_KINDS:
            object.__setattr__(
                self, kind, tuple(int(i) for i in getattr(self, kind))
            )

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_units: int,
        *,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        exit_rate: float = 0.0,
        failures: int = 1,
        hang_s: float = 0.05,
    ) -> "FaultSpec":
        """Draw fault points from a seeded substream (reproducible chaos).

        Each unit independently gains each fault kind with the given
        probability, using a generator derived from ``seed`` alone — the
        same seed always injects the same faults at the same units.
        """
        rates = (exit_rate, crash_rate, hang_rate, corrupt_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("fault rates must be in [0, 1]")
        rng = np.random.default_rng(
            np.random.SeedSequence(derived_seed(seed, 0xFA017))
        )
        picks: dict[str, tuple[int, ...]] = {}
        for kind, rate in zip(_FAULT_KINDS, rates):
            draws = rng.random(n_units)
            picks[kind] = tuple(int(i) for i in np.flatnonzero(draws < rate))
        return cls(
            crash=picks["crash"],
            hang=picks["hang"],
            corrupt=picks["corrupt"],
            exit=picks["exit"],
            failures=failures,
            hang_s=hang_s,
        )

    @classmethod
    def parse(cls, text: str, **overrides: Any) -> "FaultSpec":
        """Parse the CLI grammar ``kind:i,j;kind:k`` into a spec.

        Kinds are ``crash``, ``hang``, ``corrupt`` and ``exit``;
        indices are comma-separated unit positions.  Example:
        ``crash:0,3;corrupt:2``.
        """
        picks: dict[str, tuple[int, ...]] = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, indices = clause.partition(":")
            kind = kind.strip()
            if kind not in _FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(_FAULT_KINDS)})"
                )
            try:
                parsed = tuple(
                    int(i) for i in indices.split(",") if i.strip()
                )
            except ValueError:
                raise ValueError(
                    f"bad unit indices for fault kind {kind!r}: "
                    f"{indices!r}"
                ) from None
            if not parsed:
                raise ValueError(f"fault kind {kind!r} names no units")
            picks[kind] = picks.get(kind, ()) + parsed
        if not picks:
            raise ValueError(f"no faults in spec {text!r}")
        return cls(
            crash=picks.get("crash", ()),
            hang=picks.get("hang", ()),
            corrupt=picks.get("corrupt", ()),
            exit=picks.get("exit", ()),
            **overrides,
        )

    @property
    def faulty_units(self) -> tuple[int, ...]:
        """All unit indices named by any fault kind, sorted."""
        indices: set[int] = set()
        for kind in _FAULT_KINDS:
            indices.update(getattr(self, kind))
        return tuple(sorted(indices))

    def action(self, index: int, attempt: int) -> str | None:
        """The fault (if any) for unit ``index`` on chunk ``attempt``.

        Returns one of ``"exit"``, ``"crash"``, ``"hang"``,
        ``"corrupt"`` or ``None``; deterministic in its arguments.
        """
        if attempt >= self.failures:
            return None
        for kind in _FAULT_KINDS:
            if index in getattr(self, kind):
                return kind
        return None

    def apply_before(self, index: int, attempt: int) -> None:
        """Trigger pre-execution faults (exit, crash, hang) for a unit."""
        action = self.action(index, attempt)
        if action == "exit":
            if os.getpid() != self.coordinator_pid:
                os._exit(13)
            raise InjectedFault(
                f"injected worker exit at unit {index} "
                f"(attempt {attempt}; serial executor downgrades to crash)"
            )
        if action == "crash":
            raise InjectedFault(
                f"injected crash at unit {index} (attempt {attempt})"
            )
        if action == "hang":
            import time

            time.sleep(self.hang_s)

    def apply_after(self, index: int, attempt: int, value: Any) -> Any:
        """Apply post-execution faults (payload corruption) to a value."""
        if self.action(index, attempt) == "corrupt":
            return CorruptPayload(value)
        return value


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine tolerates chunk and executor failures.

    Attributes:
        max_attempts: attempts per chunk before its first failing unit
            is raised as a terminal :class:`WorkUnitError`.  Executor
            breakdowns (a worker process dying mid-chunk) do not count
            against this — they count against the circuit breaker.
        timeout_s: per-chunk deadline enforced *inside* the executing
            process via ``SIGALRM``; a chunk that exceeds it fails with
            a timeout and is retried like any other failure.  ``None``
            disables the deadline.  (POSIX main-thread only; elsewhere
            the deadline is silently unavailable.)
        backoff_s: base coordinator-side sleep before a retry round;
            attempt ``k`` waits ``backoff_s * backoff_factor**(k-1)``
            (capped at ``backoff_max_s``) plus jitter.  The default of 0
            keeps tests instant.
        backoff_factor: exponential growth per attempt.
        backoff_max_s: cap on a single backoff sleep.
        jitter: fraction of the computed delay added as deterministic
            jitter drawn from ``derived_seed(seed, chunk, attempt)`` —
            retries desynchronize without wall-clock randomness.
        breaker_failures: executor-level failures (broken process pool,
            unpicklable work function) tolerated before the circuit
            breaker trips and the run falls back to the serial executor
            for all unfinished chunks.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.1
    breaker_failures: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")

    def backoff_delay(
        self, attempt: int, *, seed: int = 0, chunk_index: int = 0
    ) -> float:
        """Seconds to wait before retry ``attempt`` (>= 1) of a chunk.

        Deterministic in its arguments: the exponential schedule plus a
        jitter fraction drawn from a substream keyed on
        ``(seed, chunk_index, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        delay = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if delay <= 0 or self.jitter == 0:
            return delay
        rng = np.random.default_rng(
            np.random.SeedSequence(
                seed, spawn_key=(0xBAC0FF, chunk_index, attempt)
            )
        )
        return delay * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class RetryEvent:
    """One fault-tolerance decision made by the engine's scheduler.

    Attributes:
        chunk_index: which chunk (position in the run's chunk list).
        first_unit: the chunk's first unit index (stable across runs).
        attempt: the attempt that failed (0-based).
        reason: ``"unit-error"``, ``"timeout"``, ``"corrupt"`` or
            ``"executor"`` (worker process died / pool unusable).
        action: ``"retry"``, ``"serial-fallback"`` or ``"failed"``
            (terminal — the retry budget is exhausted).
    """

    chunk_index: int
    first_unit: int
    attempt: int
    reason: str
    action: str
