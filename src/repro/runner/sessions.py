"""Run many measurement sessions through the parallel engine.

A :class:`repro.core.session.MeasurementSession` is inherently
sequential *inside* (each query cycle mutates tag and channel state),
but independent sessions — repeated runs, per-seed Monte-Carlo
repetitions, per-scenario measurements — parallelize perfectly.  Each
session is one work unit: the builder reconstructs the system inside
the worker from the unit's seed, so no simulator state ever crosses a
process boundary.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable

from ..core.session import MeasurementSession, SessionStats
from ..obs.runtime import attach_active
from ..obs.telemetry import TelemetrySpec
from .engine import ChunkProgress, SweepResult, UnitContext, run_units
from .faults import FaultSpec, RetryPolicy

__all__ = ["run_sessions"]

SessionBuilder = Callable[[UnitContext], MeasurementSession]

#: Default telemetry for session runs: no metric families, but stage
#: counters are always snapshotted and merged, so ``result.telemetry``
#: can answer "where did worker time go?" after a parallel run.
_STAGE_COUNTERS_ONLY = TelemetrySpec(metrics=False)


def _session_unit(
    ctx: UnitContext,
    build: SessionBuilder,
    queries: int | None,
    duration_s: float | None,
    session_fast_path: bool | None,
) -> SessionStats:
    session = build(ctx)
    attach_active(session.system)
    if session_fast_path is not None:
        session.session_fast_path = session_fast_path
    if queries is not None:
        return session.run_queries(queries)
    assert duration_s is not None
    return session.run_for(duration_s)


def run_sessions(
    build: SessionBuilder,
    n_sessions: int,
    *,
    queries: int | None = None,
    duration_s: float | None = None,
    seed: int = 0,
    parameters: list[dict[str, Any]] | None = None,
    n_workers: int = 1,
    chunk_size: int | None = None,
    executor: str = "auto",
    session_fast_path: bool | None = None,
    telemetry: TelemetrySpec | None = _STAGE_COUNTERS_ONLY,
    retry: RetryPolicy | None = None,
    faults: FaultSpec | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = True,
    on_chunk: Callable[[ChunkProgress], None] | None = None,
    transport: str = "auto",
    pool: Any | None = None,
) -> SweepResult:
    """Run ``n_sessions`` independent sessions; values are SessionStats.

    Args:
        build: called once per unit *inside the worker* with the unit's
            :class:`UnitContext`; must return a ready
            :class:`MeasurementSession` and be picklable for the process
            executor.  Derive all randomness from the context
            (``ctx.seed`` / ``ctx.rng(...)``) to keep the determinism
            contract.  Prefer shipping a plain config-style callable
            (e.g. :class:`repro.runner.workers.SessionSpec`) rather
            than closing over live simulator objects: configs pickle
            small and rebuild fresh state inside the worker.
        session_fast_path: when not ``None``, override each built
            session's ``session_fast_path`` flag, so callers can force
            every worker through the batched engine (or the scalar
            reference) without changing the builder.
        n_sessions: number of sessions (0 is allowed: empty result).
        queries: run exactly this many query cycles per session...
        duration_s: ...or this much simulated time (exactly one of the
            two must be given).
        seed: root seed for the per-session substreams.
        parameters: optional per-session parameter dicts (len must be
            ``n_sessions``) carried into ``ctx.parameters`` and the
            result points; defaults to ``{"session": i}``.
        n_workers / chunk_size / executor: see
            :func:`repro.runner.engine.run_units`.
        telemetry: per-chunk :class:`repro.obs.TelemetrySpec`.  The
            default collects stage counters only (near-zero cost) so
            ``result.telemetry.stage_timings()`` reports merged worker
            time after parallel runs; pass ``TelemetrySpec()`` for full
            metrics, or ``None`` to leave a caller-activated live
            telemetry (e.g. a tracing one) in charge.
        retry / faults / checkpoint / resume: fault tolerance, fault
            injection and chunk-granular checkpoint/resume — see
            :func:`repro.runner.engine.run_units` and
            ``docs/fault_tolerance.md``.  Session results resume
            bit-identically because each session rebuilds from its
            unit's seed.
        on_chunk: per-chunk progress observer
            (:class:`repro.runner.engine.ChunkProgress`); see
            :func:`repro.runner.engine.run_units`.
        transport / pool: chunk payload codec and optional persistent
            :class:`repro.runner.warm.WarmPool`; see
            :func:`repro.runner.engine.run_units`.  Pair a caller-owned
            pool with :class:`repro.runner.workers.SessionSpec`
            (``warm=True``) so workers keep session caches across jobs.
    """
    if n_sessions < 0:
        raise ValueError("n_sessions must be >= 0")
    if (queries is None) == (duration_s is None):
        raise ValueError("give exactly one of queries / duration_s")
    if parameters is not None and len(parameters) != n_sessions:
        raise ValueError("parameters must have one entry per session")
    units = [
        UnitContext(
            index=i,
            parameters=(
                parameters[i] if parameters is not None else {"session": i}
            ),
            root_seed=seed,
        )
        for i in range(n_sessions)
    ]
    fn = functools.partial(
        _session_unit,
        build=build,
        queries=queries,
        duration_s=duration_s,
        session_fast_path=session_fast_path,
    )
    return run_units(
        fn,
        units,
        seed=seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        executor=executor,
        telemetry=telemetry,
        retry=retry,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        on_chunk=on_chunk,
        transport=transport,
        pool=pool,
    )
