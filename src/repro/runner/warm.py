"""Persistent warm worker pool for the parallel engine.

The process executor (:class:`concurrent.futures.ProcessPoolExecutor`)
builds a *fresh* pool per scheduling round, and a fresh pool means
cold workers: every process pays interpreter + import start-up, and —
far more expensive on this codebase — the first chunk it runs pays the
process-global PHY warm-up (the interpolated coded-BER table fill) and
a per-spec session/cache build.  A sweep service dispatching many
small jobs (see :mod:`repro.serve`) repays those costs on every job.

:class:`WarmPool` keeps a fixed set of worker processes alive across
rounds *and across engine runs*.  Workers run a tiny recv/execute/send
loop over a duplex pipe; the chunk body is the engine's own
``_run_chunk_wire``, so in-worker deadlines (``SIGALRM``), fault
injection, telemetry snapshots, and transport encoding behave exactly
as they do on the one-shot pool.  Determinism is untouched: workers
never share randomness, they only execute the same pure-per-unit
chunks, so results stay bit-identical to the serial and process
executors.

Failure semantics mirror the process executor: a worker that dies
mid-chunk (crash, ``os._exit`` fault, OOM kill) surfaces as an
executor-eaten chunk — the engine's circuit breaker and retry
machinery decide what happens next — and the pool respawns the dead
slot (cold again, warm after its next chunk) so the round can finish.

Use it through the engine::

    with WarmPool(n_workers=4) as pool:
        for job in jobs:
            result = run_units(fn, units, pool=pool, ...)

or let ``run_units(executor="warm")`` manage a pool for one run.
Warm *state* (sessions, channel caches, memoized frames) lives in the
work functions themselves — see
:class:`repro.runner.workers.SessionSpec` with ``warm=True``.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import Any

from .transport import ensure_tracker

__all__ = ["WarmPool"]


def _pick_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _warm_worker_main(conn) -> None:
    """Worker loop: receive ``(key, args)`` jobs until ``None``.

    ``args`` are the positional arguments of
    :func:`repro.runner.engine._run_chunk_wire`; running on the worker
    *main thread* keeps the ``SIGALRM`` chunk deadline armable, exactly
    like a process-pool worker.
    """
    from .engine import _run_chunk_wire

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        key, args = message
        outcome = _run_chunk_wire(*args)
        try:
            conn.send((key, outcome))
        except (BrokenPipeError, OSError):  # coordinator went away
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass


class _WorkerHandle:
    """One pool slot: a live process, its pipe, and its in-flight job."""

    def __init__(self, context, slot: int) -> None:
        self.slot = slot
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_warm_worker_main,
            args=(child_conn,),
            name=f"repro-warm-{slot}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.job: Any = None  # key of the in-flight chunk, or None

    def reap(self) -> None:
        """Close the pipe and collect the process (best effort)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


class WarmPool:
    """A fixed-size pool of persistent worker processes.

    Args:
        n_workers: worker processes to keep alive.
        context: optional multiprocessing start method ("fork",
            "spawn", "forkserver"); defaults to fork where available,
            matching the process executor.

    The pool is *not* thread-safe: one ``run_round`` at a time.  It is
    reusable across any number of engine runs until :meth:`close`.
    """

    def __init__(self, n_workers: int, *, context: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._method = context if context is not None else _pick_start_method()
        self._ctx = multiprocessing.get_context(self._method)
        # Workers inherit the coordinator's resource tracker so their
        # shm registrations and our unlinks hit the same bookkeeping
        # (see repro.runner.transport.ensure_tracker).
        ensure_tracker()
        self._closed = False
        self.respawns = 0
        self._workers: list[_WorkerHandle] = [
            _WorkerHandle(self._ctx, slot) for slot in range(n_workers)
        ]

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """Current worker pids (changes when a dead slot respawns)."""
        return [w.process.pid for w in self._workers]

    def close(self) -> None:
        """Shut down all workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            worker.reap()
        self._workers = []

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch -------------------------------------------------------

    def _respawn(self, worker: _WorkerHandle) -> _WorkerHandle:
        worker.reap()
        replacement = _WorkerHandle(self._ctx, worker.slot)
        self._workers[self._workers.index(worker)] = replacement
        self.respawns += 1
        return replacement

    def _dispatch(self, worker: _WorkerHandle, item) -> bool:
        """Send one job; False (job eaten) when the worker is gone."""
        key, args = item
        try:
            worker.conn.send((key, args))
        except (BrokenPipeError, OSError):
            return False
        worker.job = key
        return True

    def run_round(
        self, jobs: dict[Any, tuple]
    ) -> tuple[dict[Any, Any], bool]:
        """Execute one round of chunk jobs across the warm workers.

        ``jobs`` maps an opaque key (the engine uses the chunk index)
        to the positional args of ``_run_chunk_wire``.  Jobs are dealt
        dynamically — each worker gets a new chunk the moment it
        returns one — so stragglers do not idle the pool.

        Returns ``(results, died)``: outcomes keyed like ``jobs``
        (missing keys = eaten by a dead worker), and whether any worker
        died this round.  Dead slots are respawned before returning.
        """
        if self._closed:
            raise RuntimeError("WarmPool is closed")
        queue = deque(jobs.items())  # insertion order = engine's order
        results: dict[Any, Any] = {}
        died = False

        for worker in list(self._workers):
            if not queue:
                break
            item = queue.popleft()
            if not self._dispatch(worker, item):
                died = True
                self._respawn(worker)
        while any(w.job is not None for w in self._workers):
            busy = {
                w.conn: w for w in self._workers if w.job is not None
            }
            ready = _connection_wait(list(busy))
            for conn in ready:
                worker = busy[conn]
                try:
                    key, outcome = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-chunk: the chunk is executor-eaten
                    # (the engine's retry path owns what happens next);
                    # refill the slot so the round can continue warm-ish.
                    died = True
                    worker.job = None
                    worker = self._respawn(worker)
                else:
                    results[key] = outcome
                    worker.job = None
                if queue:
                    item = queue.popleft()
                    if not self._dispatch(worker, item):
                        died = True
                        self._respawn(worker)
        return results, died
