"""Parallel experiment engine: deterministic multi-process sweeps.

Public surface:

* :class:`SweepSpec` / :class:`SweepResult` — declarative sweep grid
  and ordered results with per-worker timing counters.
* :func:`run_sweep` — evaluate a work function at every grid point.
* :func:`run_sessions` — run many measurement sessions as work units.
* :func:`run_units` — the raw primitive beneath both.
* :class:`UnitContext` — per-unit seeding handle (the determinism
  contract lives here: derive *all* randomness from it).

Fault tolerance (see ``docs/fault_tolerance.md``):

* :class:`RetryPolicy` — retries, backoff, chunk deadline, circuit
  breaker; thread through ``run_units`` / ``run_sweep`` /
  ``run_sessions`` via ``retry=``.
* :class:`FaultSpec` — deterministic fault injection for tests and
  ``repro sweep --inject-faults``.
* :func:`load_checkpoint` / :func:`checkpoint_fingerprint` — the
  chunk-granular checkpoint files written by ``checkpoint=``.

See ``docs/running_experiments.md`` for usage and the determinism
contract, and :mod:`repro.runner.workers` for ready-made picklable
work functions.
"""

from ..obs.aggregate import TelemetryAggregate
from ..obs.telemetry import TelemetrySpec
from .checkpoint import (
    CheckpointError,
    CheckpointState,
    checkpoint_fingerprint,
    load_checkpoint,
)
from .engine import (
    ChunkProgress,
    SweepError,
    SweepResult,
    SweepSpec,
    UnitContext,
    WorkerTiming,
    WorkUnitError,
    resolve_executor,
    run_sweep,
    run_units,
)
from .faults import (
    CorruptPayload,
    FaultSpec,
    InjectedFault,
    RetryEvent,
    RetryPolicy,
)
from .sessions import run_sessions
from .transport import (
    EncodedChunk,
    TransportError,
    TransportEvent,
    resolve_transport,
)
from .warm import WarmPool
from .workers import FleetSpec, SessionSpec

__all__ = [
    "CheckpointError",
    "ChunkProgress",
    "CheckpointState",
    "CorruptPayload",
    "EncodedChunk",
    "FaultSpec",
    "FleetSpec",
    "InjectedFault",
    "RetryEvent",
    "RetryPolicy",
    "SessionSpec",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "TelemetryAggregate",
    "TelemetrySpec",
    "TransportError",
    "TransportEvent",
    "UnitContext",
    "WarmPool",
    "WorkUnitError",
    "WorkerTiming",
    "checkpoint_fingerprint",
    "load_checkpoint",
    "resolve_executor",
    "resolve_transport",
    "run_sessions",
    "run_sweep",
    "run_units",
]
