"""Parallel experiment engine: deterministic multi-process sweeps.

Public surface:

* :class:`SweepSpec` / :class:`SweepResult` — declarative sweep grid
  and ordered results with per-worker timing counters.
* :func:`run_sweep` — evaluate a work function at every grid point.
* :func:`run_sessions` — run many measurement sessions as work units.
* :func:`run_units` — the raw primitive beneath both.
* :class:`UnitContext` — per-unit seeding handle (the determinism
  contract lives here: derive *all* randomness from it).

See ``docs/running_experiments.md`` for usage and the determinism
contract, and :mod:`repro.runner.workers` for ready-made picklable
work functions.
"""

from ..obs.aggregate import TelemetryAggregate
from ..obs.telemetry import TelemetrySpec
from .engine import (
    SweepError,
    SweepResult,
    SweepSpec,
    UnitContext,
    WorkerTiming,
    WorkUnitError,
    resolve_executor,
    run_sweep,
    run_units,
)
from .sessions import run_sessions
from .workers import SessionSpec

__all__ = [
    "SessionSpec",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "TelemetryAggregate",
    "TelemetrySpec",
    "UnitContext",
    "WorkUnitError",
    "WorkerTiming",
    "resolve_executor",
    "run_sessions",
    "run_sweep",
    "run_units",
]
