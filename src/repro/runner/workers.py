"""Reusable, picklable work functions for common experiments.

Process-pool work functions must be importable top-level callables;
this module collects the ones shared by the CLI, the benchmarks and the
scaling tests so every consumer parallelizes the same physics.  All of
them draw randomness exclusively from their :class:`UnitContext`, so
any sweep built on them inherits the engine's determinism contract.
"""

from __future__ import annotations

from typing import Any

from ..core.session import MeasurementSession
from ..sim.scenario import los_scenario, nlos_scenario
from .engine import UnitContext

__all__ = ["los_ber_point", "nlos_session_stats"]


def los_ber_point(
    ctx: UnitContext, *, sim_seconds: float = 1.0, phy_fast_path: bool = True
) -> dict[str, Any]:
    """One Figure-5-style LOS point: BER/throughput at a tag distance.

    Expects ``ctx.parameters["distance_m"]``.  Scenario and data-bit
    streams derive from the unit's substreams, so the same root seed
    reproduces the same point bit-for-bit on any worker layout.
    ``phy_fast_path=False`` selects the scalar PHY reference loop — the
    fast-path benchmarks sweep the same physics both ways through the
    engine.
    """
    distance_m = float(ctx.parameters["distance_m"])
    system, info = los_scenario(
        distance_m, seed=ctx.seed, phy_fast_path=phy_fast_path
    )
    session = MeasurementSession(system, rng=ctx.rng(1))
    stats = session.run_for(sim_seconds)
    return {
        "distance_m": distance_m,
        "ber": stats.ber,
        "throughput_kbps": stats.throughput_bps / 1e3,
        "queries": stats.queries,
        "missed_triggers": stats.missed_triggers,
        "link_snr_db": info.link_snr_db,
    }


def nlos_session_stats(
    ctx: UnitContext, *, sim_seconds: float = 0.5
) -> dict[str, Any]:
    """One Figure-6-style NLOS run at ``ctx.parameters["location"]``."""
    location = str(ctx.parameters["location"])
    system, info = nlos_scenario(location, seed=ctx.seed)
    session = MeasurementSession(system, rng=ctx.rng(1))
    stats = session.run_for(sim_seconds)
    return {
        "location": location,
        "ber": stats.ber,
        "throughput_kbps": stats.throughput_bps / 1e3,
        "queries": stats.queries,
        "link_snr_db": info.link_snr_db,
    }
