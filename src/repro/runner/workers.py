"""Reusable, picklable work functions for common experiments.

Process-pool work functions must be importable top-level callables;
this module collects the ones shared by the CLI, the benchmarks and the
scaling tests so every consumer parallelizes the same physics.  All of
them draw randomness exclusively from their :class:`UnitContext`, so
any sweep built on them inherits the engine's determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.fleet import TagFleet
from ..core.session import MeasurementSession
from ..obs.runtime import attach_active, attach_active_fleet
from ..sim.scenario import los_scenario, nlos_scenario
from .engine import UnitContext

__all__ = [
    "AdaptiveLinkSpec",
    "FleetSpec",
    "SessionSpec",
    "adaptive_link_stats",
    "fleet_poll_stats",
    "los_ber_point",
    "nlos_session_stats",
    "reset_warm_caches",
    "rng_probe",
]

# ---------------------------------------------------------------------------
# Warm-worker donor registries (process-local).
#
# A persistent worker (repro.runner.warm.WarmPool) rebuilds a session per
# unit but keeps the *process* alive across chunks, so memoized pure
# state can survive from one build to the next.  Three caches qualify:
#
# * ``QueryBuilder._templates`` / ``_schedule`` / ``_frame_memo`` —
#   deterministic functions of the (config, client, ap) triple; guarded
#   by config/address equality and shared live (the memo keeps filling
#   across sessions).
# * ``TagStateMachine._align_cache`` — self-keyed by every timing and
#   oscillator parameter the cached vectors depend on, so the dict is
#   shareable between any two tag FSMs unconditionally.
# * ``BackscatterChannel._static_vectors`` — pure given the channel's
#   LOS phases, which are *seed-dependent* random draws; donors are
#   therefore keyed by seed as well, and injection is additionally
#   guarded by bitwise equality of the derived phase terms.
#
# None of these touch generator state or per-session dynamics, so a warm
# rebuild stays bit-identical to a cold one — asserted by the warm-pool
# equivalence tests.

#: scenario key -> donor WiTagSystem (for seed-independent caches).
_WARM_DONORS: dict[tuple, Any] = {}
#: (scenario key, seed) -> donor BackscatterChannel.
_WARM_CHANNELS: dict[tuple, Any] = {}
_WARM_CHANNELS_MAX = 128
#: Process-wide tag alignment cache shared by warm fleet builds.  The
#: cache is self-keyed by every timing/oscillator parameter the vectors
#: depend on, so sharing one dict across fleets is unconditionally safe
#: (same argument as ``TagStateMachine._align_cache`` above).
_WARM_FLEET_ALIGN: dict[tuple, Any] = {}


def reset_warm_caches() -> None:
    """Drop this process's warm donor registries (tests / leak checks)."""
    _WARM_DONORS.clear()
    _WARM_CHANNELS.clear()
    _WARM_FLEET_ALIGN.clear()


def _adopt_warm_caches(key: tuple, seed: int, system: Any) -> None:
    """Transplant memoized pure state from donors into ``system``."""
    donor = _WARM_DONORS.get(key)
    if donor is not None:
        if (
            donor.config == system.config
            and donor.client == system.client
            and donor.ap == system.ap
        ):
            if (
                system.builder._templates is None
                and donor.builder._templates is not None
            ):
                system.builder._templates = donor.builder._templates
                system.builder._schedule = donor.builder._schedule
            system.builder._frame_memo = donor.builder._frame_memo
        donor_align = getattr(donor.tag, "_align_cache", None)
        if donor_align is not None:
            system.tag._align_cache = donor_align
    channel_key = key + (seed,)
    donor_channel = _WARM_CHANNELS.get(channel_key)
    if donor_channel is not None:
        channel = system.error_model.channel
        if (
            donor_channel._h_direct_los == channel._h_direct_los
            and donor_channel._h_tag_los == channel._h_tag_los
            and np.array_equal(
                donor_channel._tag_rotation, channel._tag_rotation
            )
        ):
            channel._static_vectors = donor_channel._static_vectors
    _WARM_DONORS[key] = system
    while len(_WARM_CHANNELS) >= _WARM_CHANNELS_MAX:
        _WARM_CHANNELS.pop(next(iter(_WARM_CHANNELS)))
    _WARM_CHANNELS[channel_key] = system.error_model.channel


@dataclass(frozen=True)
class SessionSpec:
    """Picklable session description for process-pool workers.

    The parallel engine rebuilds every session inside its worker; the
    cheapest thing to ship across the process boundary is a plain
    config, not a live simulator object graph (generators, cached
    channel vectors and memoized frames neither pickle small nor
    should they be shared).  A ``SessionSpec`` is exactly that config:
    calling it with a :class:`UnitContext` builds a fresh
    :class:`MeasurementSession` from scenario parameters and the
    context's substreams, so it can be passed directly as the
    ``build`` argument of :func:`repro.runner.run_sessions` /
    :func:`repro.core.session.run_parallel_sessions`.

    Attributes:
        kind: ``"los"`` (paper Fig. 5 geometry; reads
            ``tag_from_client_m`` from ``ctx.parameters["distance_m"]``
            when present, else :attr:`distance_m`) or ``"nlos"``
            (Fig. 6 locations via :attr:`location` /
            ``ctx.parameters["location"]``).
        distance_m: default LOS tag-from-client distance.
        location: default NLOS location key.
        phy_fast_path: per-A-MPDU vectorized decode flag.
        session_fast_path: batched session engine flag.
        batch_queries: session-engine chunk size.
        data_stream: context substream index for the session's random
            data bits.
        kernel_tier: decode kernel implementation
            (``"auto"``/``"numpy"``/``"numba"``, see
            :mod:`repro.phy.kernels`); bitwise identical across tiers.
        warm: reuse memoized pure state (frame templates, alignment
            vectors, static channel vectors) from previous builds of the
            same scenario in this process.  Only useful under a
            persistent worker (:class:`repro.runner.warm.WarmPool`) or a
            serial run; results are bit-identical either way.
    """

    kind: str = "los"
    distance_m: float = 4.0
    location: str = "A"
    phy_fast_path: bool = True
    session_fast_path: bool = True
    batch_queries: int = 256
    data_stream: int = 1
    kernel_tier: str = "auto"
    warm: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("los", "nlos"):
            raise ValueError(f"kind must be 'los' or 'nlos', got {self.kind}")

    def _scenario_key(self, ctx: UnitContext) -> tuple:
        if self.kind == "los":
            where: tuple = (
                "los",
                float(ctx.parameters.get("distance_m", self.distance_m)),
            )
        else:
            where = (
                "nlos",
                str(ctx.parameters.get("location", self.location)),
            )
        return where + (self.phy_fast_path, self.kernel_tier)

    def __call__(self, ctx: UnitContext) -> MeasurementSession:
        if self.kind == "los":
            distance_m = float(
                ctx.parameters.get("distance_m", self.distance_m)
            )
            system, _info = los_scenario(
                distance_m,
                seed=ctx.seed,
                phy_fast_path=self.phy_fast_path,
                kernel_tier=self.kernel_tier,
            )
        else:
            location = str(ctx.parameters.get("location", self.location))
            system, _info = nlos_scenario(
                location,
                seed=ctx.seed,
                phy_fast_path=self.phy_fast_path,
                kernel_tier=self.kernel_tier,
            )
        if self.warm:
            _adopt_warm_caches(self._scenario_key(ctx), ctx.seed, system)
        return MeasurementSession(
            system,
            rng=ctx.rng(self.data_stream),
            session_fast_path=self.session_fast_path,
            batch_queries=self.batch_queries,
        )


@dataclass(frozen=True)
class FleetSpec:
    """Picklable fleet description for process-pool workers.

    The fleet analogue of :class:`SessionSpec`: calling it with a
    :class:`UnitContext` builds a fresh
    :class:`repro.core.fleet.TagFleet` inside the worker — tag
    positions drawn uniformly over a warehouse floorplan from the
    context's position substream, link/tag/error streams derived from
    ``ctx.seed`` by ``TagFleet.build`` — so fleet workloads ride the
    same engine machinery (process pools, warm pool, shm chunk
    transport, checkpoint/resume) as session workloads.

    Attributes:
        n_tags: fleet size.
        floor_m: ``(width, height)`` of the floorplan; tags land
            uniformly in ``[1, width] x [-height/2, height/2]`` (the
            1 m standoff keeps every tag clear of the reader antennas
            on the ``y = 0`` axis).
        client_xy / ap_xy: reader antenna positions.
        batch_tags: decode chunk size (memory bound; results are
            bit-identical for any value).
        kernel_tier: decode kernel implementation (bitwise identical
            across tiers).
        phy_exact_coding: exact per-subframe coded BER instead of the
            interpolation table (bitwise-matches the scalar reference).
        position_stream: context substream index for tag placement.
        warm: share the process-wide tag alignment cache across fleet
            builds (useful under :class:`repro.runner.warm.WarmPool`);
            bit-identical either way.
    """

    n_tags: int = 100
    floor_m: tuple[float, float] = (30.0, 20.0)
    client_xy: tuple[float, float] = (0.0, 0.0)
    ap_xy: tuple[float, float] = (8.0, 0.0)
    batch_tags: int = 256
    kernel_tier: str = "auto"
    phy_exact_coding: bool = False
    position_stream: int = 2
    warm: bool = False

    def __post_init__(self) -> None:
        if self.n_tags < 1:
            raise ValueError("n_tags must be >= 1")
        if min(self.floor_m) <= 0:
            raise ValueError("floorplan dimensions must be positive")

    def __call__(self, ctx: UnitContext) -> TagFleet:
        n_tags = int(ctx.parameters.get("n_tags", self.n_tags))
        rng = ctx.rng(self.position_stream)
        width, height = self.floor_m
        positions = np.column_stack(
            [
                rng.uniform(1.0, width, n_tags),
                rng.uniform(-height / 2.0, height / 2.0, n_tags),
            ]
        )
        fleet = TagFleet.build(
            positions,
            client_xy=self.client_xy,
            ap_xy=self.ap_xy,
            seed=ctx.seed,
            batch_tags=self.batch_tags,
            kernel_tier=self.kernel_tier,
            phy_exact_coding=self.phy_exact_coding,
        )
        if self.warm:
            # Merge this fleet's (empty) cache into the process-wide
            # one and share it, so later builds reuse alignment vectors.
            for fsm in fleet._fsms:
                fsm._align_cache = _WARM_FLEET_ALIGN
        return fleet


def fleet_poll_stats(
    ctx: UnitContext,
    *,
    spec: FleetSpec | None = None,
    rounds: int = 1,
    bits_per_tag: int = 64,
    data_stream: int = 1,
) -> dict[str, Any]:
    """One fleet polling workload: ``rounds`` addressed rounds per unit.

    Builds the unit's fleet from ``spec`` (default :class:`FleetSpec`),
    queues ``bits_per_tag`` random bits on every tag from the unit's
    data substream, polls, and returns JSON-safe aggregates.
    """
    fleet = (spec or FleetSpec())(ctx)
    attach_active_fleet(fleet)
    data_rng = ctx.rng(data_stream)
    for name in fleet.names:
        fleet.load_bits(
            name, [int(b) for b in data_rng.integers(0, 2, bits_per_tag)]
        )
    queries = responded = bits_sent = bit_errors = 0
    for _ in range(rounds):
        for name, result in fleet.poll_round().items():
            queries += 1
            if name in result.per_tag_sent:
                responded += 1
                sent = result.per_tag_sent[name]
                received = result.raw_bits[: len(sent)]
                bits_sent += len(sent)
                bit_errors += sum(
                    1 for s, r in zip(sent, received) if s != r
                )
    return {
        "index": ctx.index,
        "seed": ctx.seed,
        "n_tags": fleet.n_tags,
        "rounds": rounds,
        "queries": queries,
        "responded": responded,
        "bits_sent": bits_sent,
        "bit_errors": bit_errors,
    }


@dataclass(frozen=True)
class AdaptiveLinkSpec:
    """Picklable adaptive-FEC-link description for pool workers.

    The traffic-aware analogue of :class:`SessionSpec`: calling it with
    a :class:`UnitContext` builds a complete
    :class:`repro.traffic.AdaptiveFecLink` — LOS scenario, bursty
    ON/OFF ambient traffic, predictive opportunity scheduler, energy
    simulator and redundancy controller — entirely from the context's
    substreams, so a sweep of adaptive links is bit-identical between
    serial and process-pool execution and between the scalar and batch
    session engines (the adaptive bench's equivalence gate pins this).

    With ``adaptive=False`` the same machinery runs the static-paper
    baseline: the scheduler rides every window
    (``ride_threshold=1.0``) and the controller is a single fixed rung
    (``static_nsym`` parity symbols), so the two legs differ only in
    policy.

    Attributes:
        adaptive: traffic-aware scheduling + feedback-driven redundancy
            (True) or the ride-everything fixed-redundancy baseline.
        distance_m: LOS tag-from-client distance.
        n_contenders: contending CSMA stations in the scenario.
        rate_fps: ambient frame rate during traffic bursts.
        mean_on_s / mean_off_s: mean ON/OFF sojourn durations.
        window_s: transmission-opportunity window duration.
        ride_threshold: forecast busy fraction at or below which the
            scheduler rides (adaptive leg).
        block_k: Reed-Solomon data bytes per FEC block.
        levels: redundancy ladder (RS parity counts) for the adaptive
            controller.
        static_nsym: the static leg's fixed parity count.
        increase_threshold: block corruption that steps the ladder up.
            The default sits *above* the erasure floor from unavoidable
            burst-onset mispredictions (exponential OFF sojourns are
            memoryless, so onsets cannot be forecast causally) — extra
            parity cannot fix a window destroyed by collisions, so the
            controller must not chase that corruption.
        decrease_after_clean: clean rounds before easing a rung down.
        session_fast_path: batched session engine flag.
    """

    adaptive: bool = True
    distance_m: float = 2.0
    n_contenders: int = 4
    rate_fps: float = 600.0
    mean_on_s: float = 0.30
    mean_off_s: float = 0.45
    window_s: float = 0.02
    ride_threshold: float = 0.35
    block_k: int = 8
    levels: tuple[int, ...] = (2, 4, 8, 16)
    static_nsym: int = 8
    increase_threshold: float = 0.25
    decrease_after_clean: int = 2
    session_fast_path: bool = True

    def __call__(self, ctx: UnitContext) -> Any:
        from ..core.rate_control import RedundancyController
        from ..tag.energy import EnergySimulator
        from ..traffic import (
            AdaptiveFecLink,
            HoltPredictor,
            OnOffTraffic,
            OpportunityScheduler,
            ScheduledSession,
        )

        system, _info = los_scenario(
            float(ctx.parameters.get("distance_m", self.distance_m)),
            seed=ctx.seed,
            n_contenders=self.n_contenders,
        )
        # The equivalence gate flips session_fast_path; exact coding
        # makes the batch engine bitwise-match the scalar loop.
        system.phy_exact_coding = True
        session = MeasurementSession(
            system,
            rng=ctx.rng(1),
            session_fast_path=self.session_fast_path,
        )
        traffic = OnOffTraffic(
            rate_fps=self.rate_fps,
            mean_on_s=self.mean_on_s,
            mean_off_s=self.mean_off_s,
            rng=ctx.rng(3),
        )
        if self.adaptive:
            scheduler = OpportunityScheduler(
                predictor=HoltPredictor(),
                ride_threshold=self.ride_threshold,
            )
            controller = RedundancyController(
                levels=self.levels,
                increase_threshold=self.increase_threshold,
                decrease_after_clean=self.decrease_after_clean,
            )
        else:
            scheduler = OpportunityScheduler(
                predictor=HoltPredictor(), ride_threshold=1.0
            )
            controller = RedundancyController(levels=(self.static_nsym,))
        scheduled = ScheduledSession(
            session,
            traffic,
            scheduler=scheduler,
            window_s=self.window_s,
            interference_rng=ctx.rng(4),
            energy=EnergySimulator(),
        )
        return AdaptiveFecLink(
            scheduled,
            controller=controller,
            block_k=self.block_k,
            message_rng=ctx.rng(5),
            adaptive=self.adaptive,
        )


def adaptive_link_stats(
    ctx: UnitContext,
    *,
    spec: AdaptiveLinkSpec | None = None,
    rounds: int = 6,
    windows_per_round: int = 100,
) -> dict[str, Any]:
    """One adaptive-link workload: ``rounds`` feedback rounds per unit.

    Builds the unit's link from ``spec`` (default
    :class:`AdaptiveLinkSpec`), runs it, and returns JSON-safe
    aggregates — including the per-round redundancy-rung trajectory and
    ride/skip decision digest the equivalence gate compares across
    execution tiers.
    """
    link = (spec or AdaptiveLinkSpec())(ctx)
    report = link.run(rounds, windows_per_round)
    decisions = link.scheduled.decisions
    return {
        "index": ctx.index,
        "seed": ctx.seed,
        "adaptive": link.adaptive,
        "windows": len(decisions),
        "rides": sum(1 for d in decisions if d.ride),
        "decision_bits": "".join("1" if d.ride else "0" for d in decisions),
        "rungs": [r.nsym for r in report.rounds],
        "message_bits": report.message_bits,
        "delivered_bits": report.delivered_bits,
        "block_error_rate": report.block_error_rate,
        "goodput_bps": report.goodput_bps,
        "elapsed_s": report.elapsed_s,
        "energy_j": report.energy_j,
        "energy_per_bit_uj": report.energy_per_bit_uj,
    }


def rng_probe(ctx: UnitContext) -> dict[str, Any]:
    """A cheap physics-free unit: the unit's first few substream draws.

    Useful wherever a sweep's *execution* is under test rather than its
    physics — fault-injection suites, checkpoint/resume roundtrips, the
    engine-overhead benchmark.  The values are a pure function of
    ``(root_seed, index)``, so any retried, resumed or rescheduled run
    must reproduce them bit-for-bit; any drift is an engine bug, not a
    simulator change.
    """
    draws = ctx.rng(0).random(4)
    return {
        "index": ctx.index,
        "seed": ctx.seed,
        "draws": [float(d) for d in draws],
    }


def los_ber_point(
    ctx: UnitContext,
    *,
    sim_seconds: float = 1.0,
    phy_fast_path: bool = True,
    session_fast_path: bool = True,
    kernel_tier: str = "auto",
    warm: bool = False,
) -> dict[str, Any]:
    """One Figure-5-style LOS point: BER/throughput at a tag distance.

    Expects ``ctx.parameters["distance_m"]``.  Scenario and data-bit
    streams derive from the unit's substreams, so the same root seed
    reproduces the same point bit-for-bit on any worker layout.
    ``phy_fast_path=False`` selects the scalar PHY reference loop — the
    fast-path benchmarks sweep the same physics both ways through the
    engine; ``session_fast_path`` likewise selects between the batched
    session engine and the scalar per-query loop; ``kernel_tier``
    selects the decode kernel implementation and ``warm`` reuses
    memoized pure state from prior builds in the same process
    (bitwise-identical results in every combination).
    """
    distance_m = float(ctx.parameters["distance_m"])
    system, info = los_scenario(
        distance_m,
        seed=ctx.seed,
        phy_fast_path=phy_fast_path,
        kernel_tier=kernel_tier,
    )
    if warm:
        _adopt_warm_caches(
            ("los", distance_m, phy_fast_path, kernel_tier), ctx.seed, system
        )
    attach_active(system)
    session = MeasurementSession(
        system, rng=ctx.rng(1), session_fast_path=session_fast_path
    )
    stats = session.run_for(sim_seconds)
    return {
        "distance_m": distance_m,
        "ber": stats.ber,
        "throughput_kbps": stats.throughput_bps / 1e3,
        "queries": stats.queries,
        "missed_triggers": stats.missed_triggers,
        "link_snr_db": info.link_snr_db,
    }


def nlos_session_stats(
    ctx: UnitContext, *, sim_seconds: float = 0.5
) -> dict[str, Any]:
    """One Figure-6-style NLOS run at ``ctx.parameters["location"]``."""
    location = str(ctx.parameters["location"])
    system, info = nlos_scenario(location, seed=ctx.seed)
    attach_active(system)
    session = MeasurementSession(system, rng=ctx.rng(1))
    stats = session.run_for(sim_seconds)
    return {
        "location": location,
        "ber": stats.ber,
        "throughput_kbps": stats.throughput_bps / 1e3,
        "queries": stats.queries,
        "link_snr_db": info.link_snr_db,
    }
