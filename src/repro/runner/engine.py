"""Parallel experiment engine with deterministic seeding.

Every BER/throughput experiment in this repo reduces to "evaluate many
independent work units": the points of a parameter sweep, repeated
measurement sessions, Monte-Carlo repetitions.  This module executes
those units across worker processes while guaranteeing a hard
determinism contract:

    **A sweep's results are bit-identical regardless of worker count,
    chunking, or scheduling order.**

The contract holds because randomness is never shared between units.
Work unit ``index`` of a sweep seeded with ``seed`` draws all of its
randomness from ``numpy`` SeedSequence children keyed ``(index, ...)``
(see :mod:`repro.sim.rng`), which depend only on the root seed and the
unit's position — not on which process runs it, how units are batched
into tasks, or how many siblings exist.  Workers therefore never
communicate randomness; they only return values, which the coordinator
reassembles in unit order.

Units are batched into *chunks* (several units per submitted task) to
amortize inter-process pickling overhead; chunking is a pure scheduling
concern and cannot affect results.  A serial executor runs everything
in-process for ``n_workers=1``, for platforms without ``fork``-style
multiprocessing, and for work functions that cannot be pickled.

Fault tolerance extends the contract rather than weakening it.  With a
:class:`repro.runner.faults.RetryPolicy`, failed chunks are retried
(exponential backoff, deterministic jitter), hung chunks are cut off by
an in-worker deadline, corrupt payloads are detected by the
coordinator's integrity check, and repeated executor breakdowns trip a
circuit breaker onto the serial executor — and because every unit's
values are a pure function of its :class:`UnitContext`, a retried,
resumed (see :mod:`repro.runner.checkpoint`), or serial-fallback run
produces a bit-identical :class:`SweepResult`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import secrets
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

import numpy as np

from ..analysis.reporting import Table
from ..analysis.sweep import SweepPoint
from ..obs.aggregate import TelemetryAggregate
from ..obs.runtime import activate as _activate_telemetry
from ..obs.runtime import active as _active_telemetry
from ..obs.telemetry import TelemetrySpec
from ..seeding import derived_seed
from .checkpoint import (
    CheckpointError,
    CheckpointWriter,
    CompletedChunk,
    checkpoint_fingerprint,
    load_checkpoint,
)
from .faults import CorruptPayload, FaultSpec, RetryEvent, RetryPolicy
from .transport import (
    EncodedChunk,
    TransportError,
    TransportEvent,
    cleanup_segment,
    decode_payload,
    encode_chunk,
    ensure_tracker,
    fetch_payload,
    payload_digest,
    resolve_transport,
    segment_name,
)

__all__ = [
    "ChunkProgress",
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "UnitContext",
    "WorkUnitError",
    "WorkerTiming",
    "resolve_executor",
    "run_sweep",
    "run_units",
]


class SweepError(RuntimeError):
    """The engine could not complete a sweep."""


class WorkUnitError(SweepError):
    """A work function raised inside a worker.

    Carries enough context to debug without the worker's interpreter:
    the unit index and parameters, the number of attempts the retry
    policy granted the chunk, plus the formatted remote traceback
    (exception objects themselves may not survive pickling).
    """

    def __init__(
        self,
        index: int,
        parameters: dict[str, Any],
        cause: str,
        remote_traceback: str,
        attempts: int = 1,
        chunk_index: int = -1,
        retries: tuple = (),
    ) -> None:
        self.index = index
        self.parameters = parameters
        self.cause = cause
        self.remote_traceback = remote_traceback
        self.attempts = attempts
        self.chunk_index = chunk_index
        self.retries = retries
        super().__init__(
            f"work unit {index} (parameters {parameters!r}) failed after "
            f"{attempts} attempt(s): {cause}"
            f"\n--- worker traceback ---\n{remote_traceback}"
        )


class _ChunkTimeout(Exception):
    """Raised inside a worker when a chunk exceeds its deadline."""


@dataclass(frozen=True)
class UnitContext:
    """Everything a work function may depend on for one unit.

    Work functions receive exactly one :class:`UnitContext` and must
    derive all randomness from it — that is what makes results
    independent of scheduling.

    Attributes:
        index: the unit's position in the sweep (0-based, stable).
        parameters: the unit's parameter-axis values.
        root_seed: the sweep's root seed.
    """

    index: int
    parameters: dict[str, Any]
    root_seed: int

    @property
    def seed(self) -> int:
        """Derived integer seed for APIs that take ``seed: int``."""
        return derived_seed(self.root_seed, self.index)

    def rng(self, stream: int = 0) -> np.random.Generator:
        """An independent generator for this unit.

        Distinct ``stream`` values give statistically independent
        generators, so one unit can feed several stochastic components.
        """
        if stream < 0:
            raise ValueError("stream must be >= 0")
        sequence = np.random.SeedSequence(
            self.root_seed, spawn_key=(self.index, stream)
        )
        return np.random.default_rng(sequence)


@dataclass(frozen=True)
class WorkerTiming:
    """Per-worker progress/timing counters (observability hook).

    Attributes:
        worker: OS pid of the worker process ("serial" runs report the
            coordinator's own pid; resumed chunks report the pid that
            originally computed them).
        n_chunks: tasks the worker executed.
        n_units: work units the worker executed.
        busy_s: wall-clock the worker spent inside work functions.
    """

    worker: int
    n_chunks: int
    n_units: int
    busy_s: float


@dataclass(frozen=True)
class ChunkProgress:
    """One chunk's completion, as reported to an ``on_chunk`` observer.

    The coordinator invokes the observer on its own thread, once per
    resolved chunk: first for every chunk restored from a checkpoint
    (``resumed=True``, in chunk order, before any execution starts),
    then for each freshly executed chunk in completion order.  This is
    the hook that makes the engine drivable from an event loop — a
    server can forward each report into an ``asyncio`` queue and stream
    live progress without polling (see :mod:`repro.serve`).

    An exception raised by the observer aborts the run and propagates
    to the caller; completed chunks stay spilled in the checkpoint, so
    observers may raise deliberately to implement cooperative
    cancellation at chunk granularity.

    Attributes:
        chunk_index: position in the run's chunk list.
        n_chunks: total chunks in the run.
        chunks_done: chunks resolved so far, this one included.
        first_index: the chunk's first unit index.
        n_units: units the chunk holds.
        worker: pid that computed the chunk (original pid for resumed).
        busy_s: wall-clock spent inside the chunk's work functions.
        resumed: the chunk came from a checkpoint, not execution.
    """

    chunk_index: int
    n_chunks: int
    chunks_done: int
    first_index: int
    n_units: int
    worker: int
    busy_s: float
    resumed: bool = False


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a Cartesian parameter sweep.

    Attributes:
        axes: name -> values; the grid is the Cartesian product in axis
            insertion order (same convention as
            :class:`repro.analysis.sweep.ParameterSweep`).
        seed: root seed; unit ``i`` derives its streams from
            ``SeedSequence(seed, spawn_key=(i, ...))``.
        chunk_size: units per submitted task; ``None`` picks a size that
            gives each worker a few tasks.
    """

    axes: dict[str, list[Any]]
    seed: int = 0
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.axes, dict) or not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"axis name {name!r} must be a string")
            try:
                n = len(values)
            except TypeError:
                raise ValueError(
                    f"axis {name!r} values must be a sequence"
                ) from None
            if n == 0:
                raise ValueError(f"axis {name!r} has no values")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def n_points(self) -> int:
        """Number of grid points."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def units(self) -> list[UnitContext]:
        """The sweep's work units, in grid order."""
        names = list(self.axes)
        return [
            UnitContext(
                index=index,
                parameters=dict(zip(names, combo)),
                root_seed=self.seed,
            )
            for index, combo in enumerate(
                itertools.product(*(self.axes[n] for n in names))
            )
        ]


@dataclass(frozen=True)
class SweepResult:
    """Results plus execution metadata for one engine run.

    ``points`` is always in unit (grid) order — never in completion
    order — which is half of the determinism contract; the other half is
    the per-unit seeding described in the module docstring.
    """

    points: tuple[SweepPoint, ...]
    seed: int
    n_workers: int
    chunk_size: int
    executor: str
    wall_s: float
    worker_timings: tuple[WorkerTiming, ...]
    #: Merged worker telemetry (metric snapshots + stage counters) when
    #: the run was launched with a :class:`repro.obs.TelemetrySpec`;
    #: ``None`` otherwise.  Merging happens in chunk-index order, so two
    #: runs with the same units and ``chunk_size`` — serial or parallel,
    #: any worker count, with or without retries — expose identical
    #: aggregated metric values.
    telemetry: TelemetryAggregate | None = None
    #: Fault-tolerance decisions the scheduler made, in the order they
    #: happened (empty for a clean run).
    retries: tuple[RetryEvent, ...] = ()
    #: Chunks restored from a checkpoint instead of being re-run.
    resumed_chunks: int = 0
    #: Transport codec chunk payloads crossed the process boundary
    #: with ("pickle" or "shm"); "none" for in-process serial runs,
    #: where values never leave the coordinator.
    transport: str = "none"

    @property
    def values(self) -> list[Any]:
        """The work functions' return values, in unit order."""
        return [point.value for point in self.points]

    @property
    def busy_s(self) -> float:
        """Total time spent inside work functions, across all workers."""
        return sum(t.busy_s for t in self.worker_timings)

    def retry_summary(self) -> dict[str, int]:
        """Retry event counts by ``reason`` (empty for a clean run)."""
        summary: dict[str, int] = {}
        for event in self.retries:
            summary[event.reason] = summary.get(event.reason, 0) + 1
        return summary

    def table(self, title: str, value_label: str = "value") -> Table:
        """Render the sweep as a text table.

        Dict-valued results get one column per key (all values must then
        share the same keys); any other value type gets a single column.
        """
        axis_names: list[str] = []
        for point in self.points:
            for name in point.parameters:
                if name not in axis_names:
                    axis_names.append(name)
        first = self.points[0].value if self.points else None
        if isinstance(first, dict):
            value_names = [
                k for k in first if k not in axis_names
            ]
            table = Table(title, axis_names + value_names)
            for point in self.points:
                table.add_row(
                    [point.parameters.get(n, "") for n in axis_names]
                    + [point.value[k] for k in value_names]
                )
        else:
            table = Table(title, axis_names + [value_label])
            for point in self.points:
                table.add_row(
                    [point.parameters.get(n, "") for n in axis_names]
                    + [point.value]
                )
        return table


@dataclass(frozen=True)
class _UnitFailure:
    index: int
    parameters: dict[str, Any]
    cause: str
    remote_traceback: str
    reason: str = "unit-error"


@dataclass(frozen=True)
class _ChunkOutcome:
    first_index: int
    values: list[Any]
    failure: _UnitFailure | None
    worker: int
    busy_s: float
    telemetry: dict[str, Any] | None = None
    #: Wire form: the payload as encoded by the worker (values and
    #: telemetry are then empty until the coordinator materializes it).
    encoded: EncodedChunk | None = None
    #: Coordinator-side: the decoded payload's ``(codec, raw bytes)``,
    #: kept alive exactly long enough for the checkpoint writer to
    #: spill the same stream (the single-encode contract), then
    #: stripped before the outcome is stored.
    stream: tuple[str, Any] | None = None


@contextmanager
def _chunk_deadline(timeout_s: float | None) -> Iterator[None]:
    """Arm a ``SIGALRM``-based deadline around a chunk's unit loop.

    Enforced *inside* the executing process (worker or serial
    coordinator), so a hung chunk surfaces as an ordinary
    :class:`_ChunkTimeout` failure through the normal result channel —
    no executor-level future babysitting, and the same mechanism covers
    both executors.  Silently unavailable off the POSIX main thread.
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise _ChunkTimeout(
            f"chunk exceeded its {timeout_s:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_chunk(
    fn: Callable[[UnitContext], Any],
    units: list[UnitContext],
    telemetry_spec: TelemetrySpec | None = None,
    faults: FaultSpec | None = None,
    attempt: int = 0,
    timeout_s: float | None = None,
) -> _ChunkOutcome:
    """Execute one chunk of units; never raises (failures are data).

    Returning failures instead of raising keeps tracebacks readable
    across the process boundary and lets the coordinator attribute the
    error to a specific unit.

    When a :class:`TelemetrySpec` is given, a fresh per-chunk
    :class:`repro.obs.Telemetry` is activated around the unit loop
    (work functions pick it up via
    :func:`repro.obs.runtime.attach_active`) and its snapshot rides
    back on the outcome — this is the cross-process telemetry channel.
    A spec of ``None`` leaves any caller-activated live telemetry in
    place (the serial tracing flow).

    ``faults`` and ``attempt`` drive deterministic fault injection
    (:class:`repro.runner.faults.FaultSpec`); ``timeout_s`` arms the
    in-process chunk deadline.
    """
    start = time.perf_counter()
    values: list[Any] = []
    failure = None

    def run() -> None:
        nonlocal failure
        for ctx in units:
            try:
                if faults is not None:
                    faults.apply_before(ctx.index, attempt)
                value = fn(ctx)
                if faults is not None:
                    value = faults.apply_after(ctx.index, attempt, value)
                values.append(value)
            except _ChunkTimeout as exc:
                failure = _UnitFailure(
                    index=ctx.index,
                    parameters=ctx.parameters,
                    cause=f"{type(exc).__name__}: {exc}",
                    remote_traceback=traceback.format_exc(),
                    reason="timeout",
                )
                break
            except Exception as exc:  # noqa: BLE001 - crossing processes
                failure = _UnitFailure(
                    index=ctx.index,
                    parameters=ctx.parameters,
                    cause=f"{type(exc).__name__}: {exc}",
                    remote_traceback=traceback.format_exc(),
                )
                break

    def run_with_deadline() -> None:
        nonlocal failure
        try:
            with _chunk_deadline(timeout_s):
                run()
        except _ChunkTimeout as exc:
            # The alarm fired outside the unit loop's try (bookkeeping
            # between units); attribute it to the chunk's first unit.
            if failure is None:
                failure = _UnitFailure(
                    index=units[0].index,
                    parameters=units[0].parameters,
                    cause=f"{type(exc).__name__}: {exc}",
                    remote_traceback=traceback.format_exc(),
                    reason="timeout",
                )

    snapshot = None
    if telemetry_spec is None:
        run_with_deadline()
    else:
        telemetry = telemetry_spec.build()
        with _activate_telemetry(telemetry):
            run_with_deadline()
        snapshot = telemetry.chunk_snapshot()
    return _ChunkOutcome(
        first_index=units[0].index,
        values=values,
        failure=failure,
        worker=os.getpid(),
        busy_s=time.perf_counter() - start,
        telemetry=snapshot,
    )


def _run_chunk_wire(
    fn: Callable[[UnitContext], Any],
    units: list[UnitContext],
    telemetry_spec: TelemetrySpec | None = None,
    faults: FaultSpec | None = None,
    attempt: int = 0,
    timeout_s: float | None = None,
    codec: str | None = None,
    segment: str | None = None,
) -> _ChunkOutcome:
    """Run a chunk and encode its payload for the result channel.

    The worker-side entry point for the pooled executors: the chunk
    body is :func:`_run_chunk` unchanged, but a successful outcome's
    ``(values, telemetry)`` payload is encoded *once* here — inline
    bytes for the ``pickle`` codec, a named shared-memory segment for
    ``shm`` — instead of riding the executor's own pickler.  Failed
    chunks return as-is (their partial values are never used).  A
    failed ``shm`` encode (segment limit, stale name) falls back to
    inline pickle rather than failing the chunk; the coordinator reads
    the codec from the outcome, not the request.
    """
    outcome = _run_chunk(fn, units, telemetry_spec, faults, attempt, timeout_s)
    if codec is None or outcome.failure is not None:
        return outcome
    start = time.perf_counter()
    try:
        encoded = encode_chunk(
            outcome.values,
            outcome.telemetry,
            codec,
            segment=segment if codec == "shm" else None,
        )
    except Exception:  # noqa: BLE001 - shm exhaustion must not kill the chunk
        encoded = encode_chunk(outcome.values, outcome.telemetry, "pickle")
    encode_s = time.perf_counter() - start
    return replace(
        outcome,
        values=[],
        telemetry=None,
        encoded=replace(encoded, encode_s=encode_s),
    )


def _chunked(
    units: list[UnitContext], chunk_size: int
) -> list[list[UnitContext]]:
    return [
        units[i : i + chunk_size]
        for i in range(0, len(units), chunk_size)
    ]


def _auto_chunk_size(n_units: int, n_workers: int) -> int:
    """A few tasks per worker: parallel slack without per-unit IPC."""
    if n_units == 0:
        return 1
    return max(1, -(-n_units // max(1, 4 * n_workers)))


def resolve_executor(requested: str, n_workers: int) -> str:
    """The executor ``run_units`` will actually use for a request.

    Mirrors the engine's silent serial fallbacks (``n_workers == 1``,
    or ``auto`` on platforms without a fork-style start method) so
    callers — e.g. the session layer's small-workload fallback, or
    tests asserting dispatch behaviour — can predict them without
    duplicating the policy.
    """
    if requested not in ("auto", "serial", "process", "warm"):
        raise ValueError(
            f"executor must be 'auto', 'serial', 'process' or 'warm', "
            f"got {requested!r}"
        )
    if requested == "warm":
        # A warm pool is explicitly requested persistence: even a
        # single worker is worth keeping alive across runs, so no
        # silent serial fallback here.
        return "warm"
    if requested == "serial" or n_workers == 1:
        return "serial"
    if requested == "auto":
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods and "forkserver" not in methods:
            # No fork-style start method (e.g. some embedded platforms):
            # spawn requires importable work functions, so default to the
            # always-correct serial path; "process" forces the pool.
            return "serial"
    return "process"


#: Backwards-compatible alias (pre-rename internal name).
_pick_executor = resolve_executor


def _first_corrupt(outcome: _ChunkOutcome) -> int | None:
    """Unit index of the first corrupt payload in a chunk, if any."""
    for offset, value in enumerate(outcome.values):
        if isinstance(value, CorruptPayload):
            return outcome.first_index + offset
    return None


class _ChunkScheduler:
    """Runs chunks under a retry policy; the fault-tolerance core.

    Process-executor rounds: all unresolved chunks are submitted to a
    fresh pool, successful outcomes are kept, failed chunks queue for
    the next round (with backoff), and executor-level failures — a
    worker killed mid-chunk, an unpicklable work function — count
    against the circuit breaker, which falls back to the always-correct
    serial executor when it trips.  Chunk failures (unit errors,
    timeouts, corrupt payloads) count against the per-chunk
    ``max_attempts`` budget instead; exhausting it makes the failure
    terminal.  Without a :class:`RetryPolicy` the scheduler reproduces
    the engine's historical strict behaviour: one attempt per chunk and
    an immediate :class:`SweepError` on executor failure.
    """

    def __init__(
        self,
        fn: Callable[[UnitContext], Any],
        chunks: list[list[UnitContext]],
        executor_kind: str,
        n_workers: int,
        telemetry_spec: TelemetrySpec | None,
        retry: RetryPolicy | None,
        faults: FaultSpec | None,
        seed: int,
        on_complete: Callable[[int, _ChunkOutcome], None] | None = None,
        codec: str | None = None,
        pool: Any | None = None,
        token: str = "",
    ) -> None:
        self.fn = fn
        self.chunks = chunks
        self.executor_kind = executor_kind
        self.n_workers = n_workers
        self.telemetry_spec = telemetry_spec
        self.tolerant = retry is not None
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=1, breaker_failures=1, jitter=0.0
        )
        self.faults = faults
        self.seed = seed
        self.on_complete = on_complete
        self.outcomes: dict[int, _ChunkOutcome] = {}
        self.attempts: dict[int, int] = {}
        self.terminal: dict[int, _UnitFailure] = {}
        self.events: list[RetryEvent] = []
        self.pool_breaks = 0
        #: Transport codec for pooled rounds (None = serial, in-process).
        self.codec = codec
        #: Optional :class:`repro.runner.warm.WarmPool` ("warm" rounds).
        self.pool = pool
        self.token = token
        self.transport_events: list[TransportEvent] = []
        #: Segment names issued to in-flight shm chunks, keyed by
        #: (chunk_index, attempt) — the coordinator can clean these up
        #: even when the worker that owned them died silently.
        self.issued_segments: dict[tuple[int, int], str] = {}

    # -- event plumbing -------------------------------------------------

    def _emit(
        self, chunk_index: int, attempt: int, reason: str, action: str
    ) -> None:
        first_unit = (
            self.chunks[chunk_index][0].index if chunk_index >= 0 else -1
        )
        event = RetryEvent(
            chunk_index=chunk_index,
            first_unit=first_unit,
            attempt=attempt,
            reason=reason,
            action=action,
        )
        self.events.append(event)
        live = _active_telemetry()
        if live is not None:
            live.on_chunk_retry(event)

    # -- transport ------------------------------------------------------

    def _wire_args(self, chunk_index: int) -> tuple:
        """Positional args of :func:`_run_chunk_wire` for one chunk."""
        attempt = self.attempts.get(chunk_index, 0)
        segment = None
        if self.codec == "shm":
            segment = segment_name(self.token, chunk_index, attempt)
            self.issued_segments[(chunk_index, attempt)] = segment
        return (
            self.fn,
            self.chunks[chunk_index],
            self.telemetry_spec,
            self.faults,
            attempt,
            self.retry.timeout_s,
            self.codec,
            segment,
        )

    def _reclaim_segment(self, chunk_index: int) -> None:
        """Unlink whatever segment this chunk's current attempt holds.

        Safe in every state: not yet created (worker died early, or the
        worker's shm encode fell back to pickle), created but orphaned
        (worker died after writing), or already consumed and unlinked
        by :func:`fetch_payload` — cleanup is a no-op then.
        """
        attempt = self.attempts.get(chunk_index, 0)
        name = self.issued_segments.pop((chunk_index, attempt), None)
        if name is not None:
            cleanup_segment(name)

    def _materialize(
        self, chunk_index: int, outcome: _ChunkOutcome
    ) -> _ChunkOutcome:
        """Decode a wire outcome into a settleable one.

        Fetches the encoded stream (unlinking its segment), verifies
        the digest, decodes values + telemetry, and records the
        transport event.  A transport failure becomes an ordinary
        chunk failure (reason ``transport``) charged against the retry
        budget — the chunk's work is repeatable, so re-running it is
        strictly better than dying.
        """
        if outcome.encoded is None:
            return outcome
        encoded = outcome.encoded
        start = time.perf_counter()
        try:
            try:
                raw = fetch_payload(encoded)
                if payload_digest(raw) != encoded.digest:
                    raise TransportError(
                        "chunk stream failed its integrity check"
                    )
                values, telemetry = decode_payload(raw, encoded.codec)
            except TransportError as exc:
                first = self.chunks[chunk_index][0]
                return replace(
                    outcome,
                    encoded=None,
                    failure=_UnitFailure(
                        index=first.index,
                        parameters=first.parameters,
                        cause=f"{type(exc).__name__}: {exc}",
                        remote_traceback=(
                            "(chunk payload could not be fetched or "
                            "decoded; no remote traceback)\n"
                        ),
                        reason="transport",
                    ),
                )
        finally:
            self._reclaim_segment(chunk_index)
        event = TransportEvent(
            chunk_index=chunk_index,
            codec=encoded.codec,
            nbytes=encoded.nbytes,
            encode_s=encoded.encode_s,
            decode_s=time.perf_counter() - start,
        )
        self.transport_events.append(event)
        live = _active_telemetry()
        if live is not None:
            live.on_chunk_transport(event)
        return replace(
            outcome,
            values=values,
            telemetry=telemetry,
            encoded=None,
            stream=(encoded.codec, raw),
        )

    # -- classification -------------------------------------------------

    def _classify(
        self, chunk_index: int, outcome: _ChunkOutcome
    ) -> _UnitFailure | None:
        """``None`` for a good outcome, else the failure to charge."""
        if outcome.failure is not None:
            return outcome.failure
        corrupt = _first_corrupt(outcome)
        if corrupt is not None:
            ctx = self.chunks[chunk_index][
                corrupt - outcome.first_index
            ]
            return _UnitFailure(
                index=corrupt,
                parameters=ctx.parameters,
                cause=(
                    "corrupt payload detected by the coordinator's "
                    "integrity check"
                ),
                remote_traceback="(payload failed validation; no remote "
                "traceback)\n",
                reason="corrupt",
            )
        return None

    def _settle(self, chunk_index: int, outcome: _ChunkOutcome) -> bool:
        """Accept or charge one executed chunk; True when resolved."""
        failure = self._classify(chunk_index, outcome)
        if failure is None:
            if self.on_complete is not None:
                self.on_complete(chunk_index, outcome)
            if outcome.stream is not None:
                # The spill consumed the encoded bytes; do not keep a
                # second copy of every chunk's payload for the run's
                # lifetime.
                outcome = replace(outcome, stream=None)
            self.outcomes[chunk_index] = outcome
            return True
        failed_attempt = self.attempts.get(chunk_index, 0)
        self.attempts[chunk_index] = failed_attempt + 1
        if self.attempts[chunk_index] >= self.retry.max_attempts:
            self.terminal[chunk_index] = failure
            self._emit(chunk_index, failed_attempt, failure.reason, "failed")
            return True
        self._emit(chunk_index, failed_attempt, failure.reason, "retry")
        return False

    def _backoff(self, chunk_ids: list[int]) -> None:
        delay = max(
            (
                self.retry.backoff_delay(
                    max(self.attempts.get(i, 0), 1),
                    seed=self.seed,
                    chunk_index=i,
                )
                for i in chunk_ids
            ),
            default=0.0,
        )
        if delay > 0:
            time.sleep(delay)

    # -- executors ------------------------------------------------------

    def _run_serial(self, pending: list[int]) -> None:
        for i in pending:
            while i not in self.outcomes and i not in self.terminal:
                outcome = _run_chunk(
                    self.fn,
                    self.chunks[i],
                    self.telemetry_spec,
                    self.faults,
                    self.attempts.get(i, 0),
                    self.retry.timeout_s,
                )
                if not self._settle(i, outcome):
                    self._backoff([i])

    def _run_process_round(self, pending: list[int]) -> list[int]:
        """One pool round; returns the chunks still unresolved."""
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(method)
        collected: dict[int, _ChunkOutcome] = {}
        broken: Exception | None = None
        with ProcessPoolExecutor(
            max_workers=self.n_workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(_run_chunk_wire, *self._wire_args(i)): i
                for i in pending
            }
            for future, i in futures.items():
                try:
                    collected[i] = future.result()
                except Exception as exc:  # pool break / unpicklable fn
                    broken = exc
                    if not self.tolerant:
                        for other in futures:
                            other.cancel()
                        raise SweepError(
                            f"executor failed before the work function "
                            f"could report: {type(exc).__name__}: {exc} "
                            f"(unpicklable work function or crashed "
                            f"worker process?)"
                        ) from exc
        unresolved = self._resolve_round(pending, collected)
        if broken is not None:
            self.pool_breaks += 1
        return unresolved

    def _resolve_round(
        self, pending: list[int], collected: dict[int, _ChunkOutcome]
    ) -> list[int]:
        """Settle a pooled round's outcomes; returns unresolved chunks."""
        unresolved: list[int] = []
        for i in pending:
            if i in collected:
                if not self._settle(i, self._materialize(i, collected[i])):
                    unresolved.append(i)
            else:
                # The executor ate this chunk (its worker died, or the
                # pool broke before it ran).  That is an executor
                # failure, not the chunk's: it does not spend the
                # chunk's retry budget, only the circuit breaker's.
                # The worker may have died *after* creating the chunk's
                # shm segment, so reclaim it before the retry reissues.
                self._reclaim_segment(i)
                self._emit(
                    i, self.attempts.get(i, 0), "executor", "retry"
                )
                unresolved.append(i)
        return unresolved

    def _run_warm_round(self, pending: list[int]) -> list[int]:
        """One round on the persistent warm pool (see ``warm.py``)."""
        jobs = {i: self._wire_args(i) for i in pending}
        try:
            collected, died = self.pool.run_round(jobs)
        except Exception as exc:  # pool torn down / coordinator-side error
            if not self.tolerant:
                raise SweepError(
                    f"warm pool failed before the work function could "
                    f"report: {type(exc).__name__}: {exc}"
                ) from exc
            collected, died = {}, True
        if died and not self.tolerant:
            eaten = [i for i in pending if i not in collected]
            raise SweepError(
                f"warm worker died while executing chunk(s) {eaten} "
                f"(crashed worker process?)"
            )
        unresolved = self._resolve_round(pending, collected)
        if died:
            self.pool_breaks += 1
        return unresolved

    # -- entry point ----------------------------------------------------

    def execute(self) -> str:
        """Run all chunks; returns the executor the run ended on."""
        executor_used = self.executor_kind
        pending = list(range(len(self.chunks)))
        # Chunks resolved from a checkpoint arrive pre-populated.
        pending = [i for i in pending if i not in self.outcomes]
        while pending:
            if executor_used == "serial":
                self._run_serial(pending)
                break
            if executor_used == "warm":
                pending = self._run_warm_round(pending)
            else:
                pending = self._run_process_round(pending)
            pending = [
                i
                for i in pending
                if i not in self.outcomes and i not in self.terminal
            ]
            if not pending:
                break
            if self.pool_breaks >= self.retry.breaker_failures:
                executor_used = "serial"
                self._emit(
                    pending[0], self.pool_breaks, "executor",
                    "serial-fallback",
                )
                continue
            self._backoff(pending)
        return executor_used


def run_units(
    fn: Callable[[UnitContext], Any],
    units: list[UnitContext],
    *,
    seed: int = 0,
    n_workers: int = 1,
    chunk_size: int | None = None,
    executor: str = "auto",
    telemetry: TelemetrySpec | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultSpec | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = True,
    on_chunk: Callable[[ChunkProgress], None] | None = None,
    transport: str = "auto",
    pool: Any | None = None,
) -> SweepResult:
    """Execute arbitrary work units; the primitive under :func:`run_sweep`.

    Args:
        fn: work function, called once per unit with its
            :class:`UnitContext`.  Must be picklable (a module-level
            function or :func:`functools.partial` of one) to run on the
            process executor.
        units: the units to execute; results come back in this order.
        seed: recorded in the result (the units already carry theirs);
            also keys backoff jitter and the checkpoint fingerprint.
        n_workers: worker processes; 1 means in-process serial.
        chunk_size: units per task; ``None`` auto-sizes.  Telemetry
            callers comparing serial vs. parallel aggregates should pin
            this: the auto size depends on ``n_workers``, and chunking
            decides how worker registries partition before the merge.
            Checkpoint users resuming under a different worker count
            must pin it too (the fingerprint refuses a resize).
        executor: "auto" (process pool when possible), "serial", or
            "process" (force a pool even for one worker).
        telemetry: optional :class:`repro.obs.TelemetrySpec`; each chunk
            then runs with a fresh activated telemetry whose snapshot is
            shipped back and merged (in chunk order) into
            ``result.telemetry``.  Work functions opt in by calling
            :func:`repro.obs.runtime.attach_active` on the systems they
            build — the bundled :mod:`repro.runner.workers` functions
            and :func:`repro.runner.run_sessions` already do.
        retry: optional :class:`repro.runner.faults.RetryPolicy`
            enabling chunk retries, the in-worker chunk deadline, and
            the circuit-breaker serial fallback.  ``None`` preserves the
            strict historical behaviour (one attempt, executor failures
            raise immediately).
        faults: optional :class:`repro.runner.faults.FaultSpec`
            injecting deterministic crash/hang/corrupt/exit faults —
            the test harness behind ``repro sweep --inject-faults``.
        checkpoint: optional JSONL path; every completed chunk spills
            here (values + telemetry snapshot), and a restart with
            ``resume=True`` skips the chunks the file already holds.
        resume: when a checkpoint file exists, load it (default) rather
            than truncating and starting over.  A checkpoint written
            for a different ``(seed, n_units, chunk_size)`` raises
            :class:`SweepError` instead of silently mixing runs.
        on_chunk: optional observer called on the coordinator thread
            with one :class:`ChunkProgress` per resolved chunk (resumed
            chunks first, then executed chunks in completion order).
            Raising from the observer aborts the run — the cooperative
            cancellation point for callers driving the engine from an
            event loop.
        transport: chunk payload codec for pooled executors — "auto"
            (zero-copy shared memory where available), "pickle", or
            "shm" (see :mod:`repro.runner.transport`).  A pure
            scheduling concern: results are bit-identical across
            codecs, and the checkpoint spills whichever stream carried
            the chunk, so values are encoded once per chunk.  Serial
            runs never encode (but still spill with the resolved
            codec).
        pool: optional :class:`repro.runner.warm.WarmPool` of
            persistent workers to dispatch on instead of a fresh
            process pool — the caller owns its lifetime, so session
            caches built by warm work functions (e.g.
            ``SessionSpec(warm=True)``) survive across runs.  Passing a
            pool forces the "warm" executor; ``executor="warm"`` with
            no pool spins up a pool for just this run.

    Returns:
        A :class:`SweepResult`; ``values`` are in unit order and
        bit-identical whether or not chunks were retried, resumed from
        a checkpoint, or finished on the circuit breaker's serial
        fallback.

    Raises:
        WorkUnitError: a work function raised (or kept failing past the
            retry budget); the earliest failing unit is reported.
        SweepError: the executor itself failed (e.g. unpicklable fn)
            with no retry policy, or the checkpoint refused to resume.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    executor_kind = resolve_executor(executor, n_workers)
    if pool is not None:
        executor_kind = "warm"
    resolved_codec = resolve_transport(transport)
    codec = resolved_codec if executor_kind in ("process", "warm") else None
    if codec == "shm":
        ensure_tracker()
    own_pool = None
    if executor_kind == "warm" and pool is None:
        from .warm import WarmPool

        own_pool = WarmPool(n_workers)
        pool = own_pool
    if chunk_size is None:
        chunk_size = _auto_chunk_size(len(units), n_workers)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    start = time.perf_counter()
    chunks = _chunked(units, chunk_size)

    checkpoint_writer: CheckpointWriter | None = None
    resumed: dict[int, _ChunkOutcome] = {}
    if checkpoint is not None:
        checkpoint = os.fspath(checkpoint)
        fingerprint = checkpoint_fingerprint(
            seed, len(units), chunk_size
        )
        exists = (
            os.path.exists(checkpoint)
            and os.path.getsize(checkpoint) > 0
        )
        if exists and resume:
            try:
                state = load_checkpoint(checkpoint)
            except CheckpointError as error:
                raise SweepError(str(error)) from error
            if state.fingerprint() != fingerprint:
                raise SweepError(
                    f"checkpoint {checkpoint} was written for a "
                    f"different run (seed/units/chunking changed); "
                    f"refusing to resume from it"
                )
            for chunk_index, done in state.chunks.items():
                if chunk_index >= len(chunks):
                    continue
                expected = chunks[chunk_index]
                if (
                    done.first_index != expected[0].index
                    or done.n_units != len(expected)
                ):
                    continue
                resumed[chunk_index] = _ChunkOutcome(
                    first_index=done.first_index,
                    values=done.values,
                    failure=None,
                    worker=done.worker,
                    busy_s=done.busy_s,
                    telemetry=done.telemetry,
                )
        elif exists and not resume:
            os.remove(checkpoint)
        checkpoint_writer = CheckpointWriter(
            checkpoint,
            {
                "seed": seed,
                "n_units": len(units),
                "chunk_size": chunk_size,
                "fingerprint": fingerprint,
            },
        )

    n_chunks = len(chunks)
    chunks_done = 0

    def report(
        chunk_index: int, outcome: _ChunkOutcome, was_resumed: bool
    ) -> None:
        nonlocal chunks_done
        chunks_done += 1
        if on_chunk is not None:
            on_chunk(
                ChunkProgress(
                    chunk_index=chunk_index,
                    n_chunks=n_chunks,
                    chunks_done=chunks_done,
                    first_index=outcome.first_index,
                    n_units=len(outcome.values),
                    worker=outcome.worker,
                    busy_s=outcome.busy_s,
                    resumed=was_resumed,
                )
            )

    def spill(chunk_index: int, outcome: _ChunkOutcome) -> None:
        if checkpoint_writer is not None:
            checkpoint_writer.record_chunk(
                CompletedChunk(
                    chunk_index=chunk_index,
                    first_index=outcome.first_index,
                    n_units=len(outcome.values),
                    worker=outcome.worker,
                    busy_s=outcome.busy_s,
                    values=outcome.values,
                    telemetry=outcome.telemetry,
                    codec=(
                        outcome.stream[0]
                        if outcome.stream is not None
                        else resolved_codec
                    ),
                ),
                # Reuse the exact bytes that crossed the process
                # boundary; only serial chunks (no boundary) encode
                # here.
                encoded=outcome.stream,
            )
        report(chunk_index, outcome, False)

    scheduler = _ChunkScheduler(
        fn,
        chunks,
        executor_kind,
        n_workers,
        telemetry,
        retry,
        faults,
        seed,
        on_complete=spill,
        codec=codec,
        pool=pool,
        token=secrets.token_hex(4),
    )
    scheduler.outcomes.update(resumed)
    try:
        for chunk_index in sorted(resumed):
            report(chunk_index, resumed[chunk_index], True)
        executor_used = scheduler.execute()
    finally:
        if checkpoint_writer is not None:
            checkpoint_writer.close()
        # Belt and braces: no shm segment outlives the run, even when
        # the scheduler raised with chunks in flight.
        for name in scheduler.issued_segments.values():
            cleanup_segment(name)
        scheduler.issued_segments.clear()
        if own_pool is not None:
            own_pool.close()
    wall_s = time.perf_counter() - start

    events = tuple(scheduler.events)
    if scheduler.terminal:
        chunk_index, first = min(
            scheduler.terminal.items(), key=lambda item: item[1].index
        )
        raise WorkUnitError(
            first.index,
            first.parameters,
            first.cause,
            first.remote_traceback,
            attempts=scheduler.attempts.get(chunk_index, 1),
            chunk_index=chunk_index,
            retries=events,
        )

    outcomes = [
        scheduler.outcomes[i] for i in sorted(scheduler.outcomes)
    ]
    values: dict[int, Any] = {}
    for outcome in outcomes:
        for offset, value in enumerate(outcome.values):
            values[outcome.first_index + offset] = value
    points = tuple(
        SweepPoint(
            parameters=ctx.parameters,
            value=values[ctx.index],
            seed=ctx.seed,
        )
        for ctx in units
    )

    by_worker: dict[int, list[_ChunkOutcome]] = {}
    for outcome in outcomes:
        by_worker.setdefault(outcome.worker, []).append(outcome)
    timings = tuple(
        WorkerTiming(
            worker=worker,
            n_chunks=len(worker_outcomes),
            n_units=sum(len(o.values) for o in worker_outcomes),
            busy_s=sum(o.busy_s for o in worker_outcomes),
        )
        for worker, worker_outcomes in sorted(by_worker.items())
    )
    aggregate = None
    if telemetry is not None:
        aggregate = TelemetryAggregate.from_chunks(
            outcome.telemetry
            for outcome in sorted(outcomes, key=lambda o: o.first_index)
            if outcome.telemetry is not None
        )
        if events:
            aggregate.record_retries(events)
        if scheduler.transport_events:
            aggregate.record_transport(scheduler.transport_events)
    return SweepResult(
        points=points,
        seed=seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        executor=executor_used,
        wall_s=wall_s,
        worker_timings=timings,
        telemetry=aggregate,
        retries=events,
        resumed_chunks=len(resumed),
        transport=codec if codec is not None else "none",
    )


def run_sweep(
    measure: Callable[[UnitContext], Any],
    spec: SweepSpec,
    *,
    n_workers: int = 1,
    chunk_size: int | None = None,
    executor: str = "auto",
    telemetry: TelemetrySpec | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultSpec | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = True,
    on_chunk: Callable[[ChunkProgress], None] | None = None,
    transport: str = "auto",
    pool: Any | None = None,
) -> SweepResult:
    """Evaluate ``measure`` at every grid point of ``spec``.

    ``measure`` receives one :class:`UnitContext` per point and must
    take all randomness from it (``ctx.rng(...)`` / ``ctx.seed``); under
    that discipline the result is bit-identical for any ``n_workers``,
    ``chunk_size`` and ``executor`` choice — and, with ``retry`` /
    ``checkpoint``, identical again under retries, serial fallback, and
    checkpoint resume (see ``docs/fault_tolerance.md``).
    """
    return run_units(
        measure,
        spec.units(),
        seed=spec.seed,
        n_workers=n_workers,
        chunk_size=chunk_size if chunk_size is not None else spec.chunk_size,
        executor=executor,
        telemetry=telemetry,
        retry=retry,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        on_chunk=on_chunk,
        transport=transport,
        pool=pool,
    )
