"""Parallel experiment engine with deterministic seeding.

Every BER/throughput experiment in this repo reduces to "evaluate many
independent work units": the points of a parameter sweep, repeated
measurement sessions, Monte-Carlo repetitions.  This module executes
those units across worker processes while guaranteeing a hard
determinism contract:

    **A sweep's results are bit-identical regardless of worker count,
    chunking, or scheduling order.**

The contract holds because randomness is never shared between units.
Work unit ``index`` of a sweep seeded with ``seed`` draws all of its
randomness from ``numpy`` SeedSequence children keyed ``(index, ...)``
(see :mod:`repro.sim.rng`), which depend only on the root seed and the
unit's position — not on which process runs it, how units are batched
into tasks, or how many siblings exist.  Workers therefore never
communicate randomness; they only return values, which the coordinator
reassembles in unit order.

Units are batched into *chunks* (several units per submitted task) to
amortize inter-process pickling overhead; chunking is a pure scheduling
concern and cannot affect results.  A serial executor runs everything
in-process for ``n_workers=1``, for platforms without ``fork``-style
multiprocessing, and for work functions that cannot be pickled.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..analysis.reporting import Table
from ..analysis.sweep import SweepPoint
from ..obs.aggregate import TelemetryAggregate
from ..obs.runtime import activate as _activate_telemetry
from ..obs.telemetry import TelemetrySpec
from ..seeding import derived_seed

__all__ = [
    "SweepError",
    "SweepResult",
    "SweepSpec",
    "UnitContext",
    "WorkUnitError",
    "WorkerTiming",
    "resolve_executor",
    "run_sweep",
    "run_units",
]


class SweepError(RuntimeError):
    """The engine could not complete a sweep."""


class WorkUnitError(SweepError):
    """A work function raised inside a worker.

    Carries enough context to debug without the worker's interpreter:
    the unit index and parameters, plus the formatted remote traceback
    (exception objects themselves may not survive pickling).
    """

    def __init__(
        self,
        index: int,
        parameters: dict[str, Any],
        cause: str,
        remote_traceback: str,
    ) -> None:
        self.index = index
        self.parameters = parameters
        self.cause = cause
        self.remote_traceback = remote_traceback
        super().__init__(
            f"work unit {index} (parameters {parameters!r}) failed: "
            f"{cause}\n--- worker traceback ---\n{remote_traceback}"
        )


@dataclass(frozen=True)
class UnitContext:
    """Everything a work function may depend on for one unit.

    Work functions receive exactly one :class:`UnitContext` and must
    derive all randomness from it — that is what makes results
    independent of scheduling.

    Attributes:
        index: the unit's position in the sweep (0-based, stable).
        parameters: the unit's parameter-axis values.
        root_seed: the sweep's root seed.
    """

    index: int
    parameters: dict[str, Any]
    root_seed: int

    @property
    def seed(self) -> int:
        """Derived integer seed for APIs that take ``seed: int``."""
        return derived_seed(self.root_seed, self.index)

    def rng(self, stream: int = 0) -> np.random.Generator:
        """An independent generator for this unit.

        Distinct ``stream`` values give statistically independent
        generators, so one unit can feed several stochastic components.
        """
        if stream < 0:
            raise ValueError("stream must be >= 0")
        sequence = np.random.SeedSequence(
            self.root_seed, spawn_key=(self.index, stream)
        )
        return np.random.default_rng(sequence)


@dataclass(frozen=True)
class WorkerTiming:
    """Per-worker progress/timing counters (observability hook).

    Attributes:
        worker: OS pid of the worker process ("serial" runs report the
            coordinator's own pid).
        n_chunks: tasks the worker executed.
        n_units: work units the worker executed.
        busy_s: wall-clock the worker spent inside work functions.
    """

    worker: int
    n_chunks: int
    n_units: int
    busy_s: float


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a Cartesian parameter sweep.

    Attributes:
        axes: name -> values; the grid is the Cartesian product in axis
            insertion order (same convention as
            :class:`repro.analysis.sweep.ParameterSweep`).
        seed: root seed; unit ``i`` derives its streams from
            ``SeedSequence(seed, spawn_key=(i, ...))``.
        chunk_size: units per submitted task; ``None`` picks a size that
            gives each worker a few tasks.
    """

    axes: dict[str, list[Any]]
    seed: int = 0
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.axes, dict) or not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"axis name {name!r} must be a string")
            try:
                n = len(values)
            except TypeError:
                raise ValueError(
                    f"axis {name!r} values must be a sequence"
                ) from None
            if n == 0:
                raise ValueError(f"axis {name!r} has no values")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def n_points(self) -> int:
        """Number of grid points."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def units(self) -> list[UnitContext]:
        """The sweep's work units, in grid order."""
        names = list(self.axes)
        return [
            UnitContext(
                index=index,
                parameters=dict(zip(names, combo)),
                root_seed=self.seed,
            )
            for index, combo in enumerate(
                itertools.product(*(self.axes[n] for n in names))
            )
        ]


@dataclass(frozen=True)
class SweepResult:
    """Results plus execution metadata for one engine run.

    ``points`` is always in unit (grid) order — never in completion
    order — which is half of the determinism contract; the other half is
    the per-unit seeding described in the module docstring.
    """

    points: tuple[SweepPoint, ...]
    seed: int
    n_workers: int
    chunk_size: int
    executor: str
    wall_s: float
    worker_timings: tuple[WorkerTiming, ...]
    #: Merged worker telemetry (metric snapshots + stage counters) when
    #: the run was launched with a :class:`repro.obs.TelemetrySpec`;
    #: ``None`` otherwise.  Merging happens in chunk-index order, so two
    #: runs with the same units and ``chunk_size`` — serial or parallel,
    #: any worker count — expose identical aggregated metric values.
    telemetry: TelemetryAggregate | None = None

    @property
    def values(self) -> list[Any]:
        """The work functions' return values, in unit order."""
        return [point.value for point in self.points]

    @property
    def busy_s(self) -> float:
        """Total time spent inside work functions, across all workers."""
        return sum(t.busy_s for t in self.worker_timings)

    def table(self, title: str, value_label: str = "value") -> Table:
        """Render the sweep as a text table.

        Dict-valued results get one column per key (all values must then
        share the same keys); any other value type gets a single column.
        """
        axis_names: list[str] = []
        for point in self.points:
            for name in point.parameters:
                if name not in axis_names:
                    axis_names.append(name)
        first = self.points[0].value if self.points else None
        if isinstance(first, dict):
            value_names = [
                k for k in first if k not in axis_names
            ]
            table = Table(title, axis_names + value_names)
            for point in self.points:
                table.add_row(
                    [point.parameters.get(n, "") for n in axis_names]
                    + [point.value[k] for k in value_names]
                )
        else:
            table = Table(title, axis_names + [value_label])
            for point in self.points:
                table.add_row(
                    [point.parameters.get(n, "") for n in axis_names]
                    + [point.value]
                )
        return table


@dataclass(frozen=True)
class _UnitFailure:
    index: int
    parameters: dict[str, Any]
    cause: str
    remote_traceback: str


@dataclass(frozen=True)
class _ChunkOutcome:
    first_index: int
    values: list[Any]
    failure: _UnitFailure | None
    worker: int
    busy_s: float
    telemetry: dict[str, Any] | None = None


def _run_chunk(
    fn: Callable[[UnitContext], Any],
    units: list[UnitContext],
    telemetry_spec: TelemetrySpec | None = None,
) -> _ChunkOutcome:
    """Execute one chunk of units; never raises (failures are data).

    Returning failures instead of raising keeps tracebacks readable
    across the process boundary and lets the coordinator attribute the
    error to a specific unit.

    When a :class:`TelemetrySpec` is given, a fresh per-chunk
    :class:`repro.obs.Telemetry` is activated around the unit loop
    (work functions pick it up via
    :func:`repro.obs.runtime.attach_active`) and its snapshot rides
    back on the outcome — this is the cross-process telemetry channel.
    A spec of ``None`` leaves any caller-activated live telemetry in
    place (the serial tracing flow).
    """
    start = time.perf_counter()
    values: list[Any] = []
    failure = None

    def run() -> None:
        nonlocal failure
        for ctx in units:
            try:
                values.append(fn(ctx))
            except Exception as exc:  # noqa: BLE001 - crossing processes
                failure = _UnitFailure(
                    index=ctx.index,
                    parameters=ctx.parameters,
                    cause=f"{type(exc).__name__}: {exc}",
                    remote_traceback=traceback.format_exc(),
                )
                break

    snapshot = None
    if telemetry_spec is None:
        run()
    else:
        telemetry = telemetry_spec.build()
        with _activate_telemetry(telemetry):
            run()
        snapshot = telemetry.chunk_snapshot()
    return _ChunkOutcome(
        first_index=units[0].index,
        values=values,
        failure=failure,
        worker=os.getpid(),
        busy_s=time.perf_counter() - start,
        telemetry=snapshot,
    )


def _chunked(
    units: list[UnitContext], chunk_size: int
) -> list[list[UnitContext]]:
    return [
        units[i : i + chunk_size]
        for i in range(0, len(units), chunk_size)
    ]


def _auto_chunk_size(n_units: int, n_workers: int) -> int:
    """A few tasks per worker: parallel slack without per-unit IPC."""
    if n_units == 0:
        return 1
    return max(1, -(-n_units // max(1, 4 * n_workers)))


def resolve_executor(requested: str, n_workers: int) -> str:
    """The executor ``run_units`` will actually use for a request.

    Mirrors the engine's silent serial fallbacks (``n_workers == 1``,
    or ``auto`` on platforms without a fork-style start method) so
    callers — e.g. the session layer's small-workload fallback, or
    tests asserting dispatch behaviour — can predict them without
    duplicating the policy.
    """
    if requested not in ("auto", "serial", "process"):
        raise ValueError(
            f"executor must be 'auto', 'serial' or 'process', "
            f"got {requested!r}"
        )
    if requested == "serial" or n_workers == 1:
        return "serial"
    if requested == "auto":
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods and "forkserver" not in methods:
            # No fork-style start method (e.g. some embedded platforms):
            # spawn requires importable work functions, so default to the
            # always-correct serial path; "process" forces the pool.
            return "serial"
    return "process"


#: Backwards-compatible alias (pre-rename internal name).
_pick_executor = resolve_executor


def _collect_outcomes(
    fn: Callable[[UnitContext], Any],
    chunks: list[list[UnitContext]],
    executor_kind: str,
    n_workers: int,
    telemetry_spec: TelemetrySpec | None = None,
) -> list[_ChunkOutcome]:
    if executor_kind == "serial":
        return [_run_chunk(fn, chunk, telemetry_spec) for chunk in chunks]
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else methods[0]
    context = multiprocessing.get_context(method)
    outcomes: list[_ChunkOutcome] = []
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=context
    ) as pool:
        futures = [
            pool.submit(_run_chunk, fn, chunk, telemetry_spec)
            for chunk in chunks
        ]
        wait(futures, return_when=FIRST_EXCEPTION)
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:
                for other in futures:
                    other.cancel()
                raise SweepError(
                    f"executor failed before the work function could "
                    f"report: {type(exc).__name__}: {exc} (unpicklable "
                    f"work function or crashed worker process?)"
                ) from exc
    return outcomes


def run_units(
    fn: Callable[[UnitContext], Any],
    units: list[UnitContext],
    *,
    seed: int = 0,
    n_workers: int = 1,
    chunk_size: int | None = None,
    executor: str = "auto",
    telemetry: TelemetrySpec | None = None,
) -> SweepResult:
    """Execute arbitrary work units; the primitive under :func:`run_sweep`.

    Args:
        fn: work function, called once per unit with its
            :class:`UnitContext`.  Must be picklable (a module-level
            function or :func:`functools.partial` of one) to run on the
            process executor.
        units: the units to execute; results come back in this order.
        seed: recorded in the result (the units already carry theirs).
        n_workers: worker processes; 1 means in-process serial.
        chunk_size: units per task; ``None`` auto-sizes.  Telemetry
            callers comparing serial vs. parallel aggregates should pin
            this: the auto size depends on ``n_workers``, and chunking
            decides how worker registries partition before the merge.
        executor: "auto" (process pool when possible), "serial", or
            "process" (force a pool even for one worker).
        telemetry: optional :class:`repro.obs.TelemetrySpec`; each chunk
            then runs with a fresh activated telemetry whose snapshot is
            shipped back and merged (in chunk order) into
            ``result.telemetry``.  Work functions opt in by calling
            :func:`repro.obs.runtime.attach_active` on the systems they
            build — the bundled :mod:`repro.runner.workers` functions
            and :func:`repro.runner.run_sessions` already do.

    Returns:
        A :class:`SweepResult`; ``values`` are in unit order.

    Raises:
        WorkUnitError: a work function raised; the earliest failing unit
            is reported and remaining work is abandoned.
        SweepError: the executor itself failed (e.g. unpicklable fn).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    executor_kind = resolve_executor(executor, n_workers)
    if chunk_size is None:
        chunk_size = _auto_chunk_size(len(units), n_workers)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    start = time.perf_counter()
    chunks = _chunked(units, chunk_size)
    outcomes = _collect_outcomes(
        fn, chunks, executor_kind, n_workers, telemetry
    )
    wall_s = time.perf_counter() - start

    failures = [o.failure for o in outcomes if o.failure is not None]
    if failures:
        first = min(failures, key=lambda f: f.index)
        raise WorkUnitError(
            first.index, first.parameters, first.cause,
            first.remote_traceback,
        )

    values: dict[int, Any] = {}
    for outcome in outcomes:
        for offset, value in enumerate(outcome.values):
            values[outcome.first_index + offset] = value
    points = tuple(
        SweepPoint(
            parameters=ctx.parameters,
            value=values[ctx.index],
            seed=ctx.seed,
        )
        for ctx in units
    )

    by_worker: dict[int, list[_ChunkOutcome]] = {}
    for outcome in outcomes:
        by_worker.setdefault(outcome.worker, []).append(outcome)
    timings = tuple(
        WorkerTiming(
            worker=worker,
            n_chunks=len(worker_outcomes),
            n_units=sum(len(o.values) for o in worker_outcomes),
            busy_s=sum(o.busy_s for o in worker_outcomes),
        )
        for worker, worker_outcomes in sorted(by_worker.items())
    )
    aggregate = None
    if telemetry is not None:
        aggregate = TelemetryAggregate.from_chunks(
            outcome.telemetry
            for outcome in sorted(outcomes, key=lambda o: o.first_index)
            if outcome.telemetry is not None
        )
    return SweepResult(
        points=points,
        seed=seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        executor=executor_kind,
        wall_s=wall_s,
        worker_timings=timings,
        telemetry=aggregate,
    )


def run_sweep(
    measure: Callable[[UnitContext], Any],
    spec: SweepSpec,
    *,
    n_workers: int = 1,
    chunk_size: int | None = None,
    executor: str = "auto",
    telemetry: TelemetrySpec | None = None,
) -> SweepResult:
    """Evaluate ``measure`` at every grid point of ``spec``.

    ``measure`` receives one :class:`UnitContext` per point and must
    take all randomness from it (``ctx.rng(...)`` / ``ctx.seed``); under
    that discipline the result is bit-identical for any ``n_workers``,
    ``chunk_size`` and ``executor`` choice.
    """
    return run_units(
        measure,
        spec.units(),
        seed=spec.seed,
        n_workers=n_workers,
        chunk_size=chunk_size if chunk_size is not None else spec.chunk_size,
        executor=executor,
        telemetry=telemetry,
    )
