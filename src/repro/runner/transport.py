"""Chunk payload codecs for the runner's result and checkpoint channels.

Every chunk a worker completes has to cross two boundaries: the
process boundary back to the coordinator, and (optionally) the spill
boundary into a checkpoint file.  Historically both crossings pickled
independently — the pool channel pickled the values inside the chunk
outcome, and the checkpoint writer pickled them *again* into a base64
payload.  This module gives both crossings one codec:

* ``pickle`` — the portable fallback: one explicit
  ``pickle.dumps((values, telemetry))`` byte stream, shipped inline
  through the executor's result channel.
* ``shm`` — the zero-copy path: the same logical payload serialized
  with pickle protocol 5, but with every contiguous buffer (numpy
  arrays dominate) split out-of-band and memcpy'd into a named
  POSIX shared-memory segment the worker creates and the coordinator
  maps.  Array bytes cross the process boundary through the kernel's
  page cache instead of the executor's pipe, and the coordinator's
  copy of the stream is handed unchanged to the checkpoint writer —
  values are encoded exactly once per chunk no matter how many
  boundaries they cross.

Both codecs produce a self-contained byte stream, so a checkpoint
record can be decoded regardless of which channel originally carried
it, and cross-codec equivalence is property-testable
(``decode(encode(x, "shm")) == decode(encode(x, "pickle"))``
bit-for-bit).

Segment lifecycle (the part that must not leak):

1. The *coordinator* calls :func:`ensure_tracker` before starting any
   workers, so every process shares one ``resource_tracker``.
2. The worker creates the segment under a coordinator-chosen
   deterministic name (:func:`segment_name`), writes the stream, and
   closes its mapping.  Creation registers the name with the shared
   tracker.
3. The coordinator attaches, copies the stream into process-owned
   memory, closes, and unlinks — which unregisters the same tracker
   entry.  Decoded arrays alias the coordinator's own copy, never the
   (by then unlinked) segment.
4. If the worker dies mid-chunk the coordinator still knows the name
   it assigned and calls :func:`cleanup_segment`; if the *coordinator*
   dies, the shared tracker unlinks leftovers at shutdown.  Either
   way ``/dev/shm`` ends empty (asserted by the chaos tests).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "EncodedChunk",
    "SEGMENT_PREFIX",
    "TRANSPORT_CODECS",
    "TransportError",
    "TransportEvent",
    "cleanup_segment",
    "decode_payload",
    "encode_chunk",
    "ensure_tracker",
    "fetch_payload",
    "leaked_segments",
    "payload_digest",
    "resolve_transport",
    "segment_name",
    "shm_available",
]

try:  # POSIX shared memory; absent on some embedded platforms.
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without _posixshmem
    _resource_tracker = None
    _shared_memory = None

#: Codecs a chunk payload may be encoded with.
TRANSPORT_CODECS = ("pickle", "shm")

#: Every segment this module creates starts with this prefix, so tests
#: (and operators) can audit ``/dev/shm`` for leaks without false
#: positives from other tenants.
SEGMENT_PREFIX = "rpr-"

_MAGIC = b"RPC1"  # repro chunk stream, layout version 1
_ALIGN = 16
_DIGEST_BYTES = 16
_HEADER = struct.Struct("<4sIQ")  # magic, n_buffers, meta_len
_U64 = struct.Struct("<Q")


class TransportError(RuntimeError):
    """A chunk payload could not be encoded, fetched, or decoded."""


def shm_available() -> bool:
    """Whether the zero-copy ``shm`` codec can run on this platform."""
    return _shared_memory is not None


def resolve_transport(requested: str) -> str:
    """The codec the engine will actually use for a request.

    ``auto`` prefers the zero-copy ``shm`` codec and falls back to
    ``pickle`` where POSIX shared memory is unavailable; asking for
    ``shm`` explicitly on such a platform is an error rather than a
    silent downgrade.
    """
    if requested not in ("auto", "pickle", "shm"):
        raise ValueError(
            f"transport must be 'auto', 'pickle' or 'shm', "
            f"got {requested!r}"
        )
    if requested == "auto":
        return "shm" if shm_available() else "pickle"
    if requested == "shm" and not shm_available():
        raise TransportError(
            "shared-memory transport is unavailable on this platform"
        )
    return requested


def ensure_tracker() -> None:
    """Start the coordinator's resource tracker before forking workers.

    Workers inherit the tracker's pipe, so a segment registered by a
    worker's ``create`` and unregistered by the coordinator's
    ``unlink`` hit the *same* tracker — without this, each side spawns
    its own tracker and both sides warn about the other's bookkeeping.
    """
    if _resource_tracker is not None:
        _resource_tracker.ensure_running()


def segment_name(token: str, chunk_index: int, attempt: int) -> str:
    """Deterministic segment name for one (chunk, attempt).

    The coordinator picks the name *before* dispatching the chunk, so
    it can clean the segment up even when the worker dies between
    creating it and reporting back.
    """
    return f"{SEGMENT_PREFIX}{token}-c{chunk_index}a{attempt}"


@dataclass(frozen=True)
class EncodedChunk:
    """One chunk payload, encoded but not yet crossed to the coordinator.

    Attributes:
        codec: ``"pickle"`` or ``"shm"``.
        payload: the byte stream, inline (``pickle`` codec, or ``shm``
            encoded without a segment); ``None`` when the stream lives
            in a named segment instead.
        segment: shared-memory segment holding the stream, or ``None``.
        nbytes: length of the stream in bytes.
        digest: BLAKE2b hexdigest of the stream (integrity check; the
            checkpoint layer reuses it verbatim).
        encode_s: wall-clock seconds spent encoding.
    """

    codec: str
    payload: bytes | None
    segment: str | None
    nbytes: int
    digest: str
    encode_s: float


@dataclass(frozen=True)
class TransportEvent:
    """One chunk payload's trip across the process boundary.

    Collected by the coordinator as it decodes chunk outcomes; feeds
    ``runner_chunk_bytes_total{codec}`` and
    ``runner_chunk_encode_seconds`` through
    :meth:`repro.obs.aggregate.TelemetryAggregate.record_transport`
    and the live :meth:`repro.obs.telemetry.Telemetry.on_chunk_transport`
    hook.
    """

    chunk_index: int
    codec: str
    nbytes: int
    encode_s: float
    decode_s: float


def payload_digest(raw: bytes | bytearray | memoryview) -> str:
    """BLAKE2b integrity digest of an encoded stream."""
    return hashlib.blake2b(raw, digest_size=_DIGEST_BYTES).hexdigest()


def _shm_parts(
    values: list[Any], telemetry: dict[str, Any] | None
) -> tuple[list[bytes], list[memoryview], int]:
    """Serialize to (header parts, out-of-band buffers, total size).

    ``meta`` is a protocol-5 pickle whose contiguous buffers (numpy
    array data) are split out via ``buffer_callback`` — they are
    *views* of the live arrays, not copies.  The caller memcpys each
    part into its destination (segment or bytearray); that single copy
    is the only time array bytes are touched.
    """
    pickle_buffers: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(
        (values, telemetry),
        protocol=5,
        buffer_callback=pickle_buffers.append,
    )
    views: list[memoryview] = []
    for buf in pickle_buffers:
        view = buf.raw()
        if not view.contiguous:  # pragma: no cover - raw() is contiguous
            view = memoryview(bytes(view))
        views.append(view.cast("B"))
    header = bytearray(_HEADER.pack(_MAGIC, len(views), len(meta)))
    for view in views:
        header += _U64.pack(view.nbytes)
    total = len(header) + len(meta)
    for view in views:
        total = _aligned(total) + view.nbytes
    return [bytes(header), meta], views, total


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _write_stream(
    target: memoryview | bytearray,
    head: list[bytes],
    views: list[memoryview],
) -> None:
    """memcpy header + meta + aligned buffers into ``target``.

    Alignment gaps are left as the target's existing bytes — zero for
    both a fresh segment (the kernel zero-fills) and a fresh
    ``bytearray`` — so the stream is byte-deterministic.
    """
    mv = memoryview(target)
    pos = 0
    for part in head:
        mv[pos : pos + len(part)] = part
        pos += len(part)
    for view in views:
        pos = _aligned(pos)
        mv[pos : pos + view.nbytes] = view
        pos += view.nbytes


def _decode_stream(
    raw: bytes | bytearray,
) -> tuple[list[Any], dict[str, Any] | None]:
    mv = memoryview(raw)
    if len(mv) < _HEADER.size:
        raise TransportError("chunk stream truncated before header")
    magic, n_buffers, meta_len = _HEADER.unpack_from(mv, 0)
    if magic != _MAGIC:
        raise TransportError(
            f"bad chunk stream magic {bytes(magic)!r}"
        )
    pos = _HEADER.size
    lengths = []
    for _ in range(n_buffers):
        lengths.append(_U64.unpack_from(mv, pos)[0])
        pos += _U64.size
    meta = bytes(mv[pos : pos + meta_len])
    if len(meta) != meta_len:
        raise TransportError("chunk stream truncated inside metadata")
    pos += meta_len
    buffers: list[memoryview] = []
    for length in lengths:
        pos = _aligned(pos)
        if pos + length > len(mv):
            raise TransportError("chunk stream truncated inside buffer")
        buffers.append(mv[pos : pos + length])
        pos += length
    return pickle.loads(meta, buffers=buffers)


def encode_chunk(
    values: list[Any],
    telemetry: dict[str, Any] | None,
    codec: str,
    *,
    segment: str | None = None,
) -> EncodedChunk:
    """Encode one chunk payload with ``codec``.

    With ``codec="shm"`` and a ``segment`` name the stream is written
    directly into a freshly created shared-memory segment (the
    worker-side path); without a name it is returned inline (the
    checkpoint re-encode path).  Digests are computed over the full
    stream either way, so the two forms are interchangeable.
    """
    start = time.perf_counter()
    if codec == "pickle":
        raw = pickle.dumps(
            (values, telemetry), protocol=pickle.HIGHEST_PROTOCOL
        )
        return EncodedChunk(
            codec="pickle",
            payload=raw,
            segment=None,
            nbytes=len(raw),
            digest=payload_digest(raw),
            encode_s=time.perf_counter() - start,
        )
    if codec != "shm":
        raise ValueError(f"unknown transport codec {codec!r}")
    head, views, total = _shm_parts(values, telemetry)
    if segment is None:
        stream = bytearray(total)
        _write_stream(stream, head, views)
        return EncodedChunk(
            codec="shm",
            payload=bytes(stream),
            segment=None,
            nbytes=total,
            digest=payload_digest(stream),
            encode_s=time.perf_counter() - start,
        )
    if _shared_memory is None:
        raise TransportError(
            "shared-memory transport is unavailable on this platform"
        )
    shm = _shared_memory.SharedMemory(
        name=segment, create=True, size=max(total, 1)
    )
    try:
        _write_stream(shm.buf, head, views)
        digest = payload_digest(shm.buf[:total])
    finally:
        shm.close()
    return EncodedChunk(
        codec="shm",
        payload=None,
        segment=segment,
        nbytes=total,
        digest=digest,
        encode_s=time.perf_counter() - start,
    )


def fetch_payload(encoded: EncodedChunk) -> bytes | bytearray:
    """Bring an encoded stream into coordinator-owned memory.

    For the ``shm`` codec this attaches the worker's segment, copies
    the stream into a ``bytearray`` the coordinator owns, then closes
    *and unlinks* the segment — after this call no shared memory
    remains, and decoded arrays alias the returned buffer instead of a
    vanished mapping.  Inline payloads are returned as-is.
    """
    if encoded.payload is not None:
        return encoded.payload
    if encoded.segment is None:
        raise TransportError("encoded chunk carries no payload")
    if _shared_memory is None:  # pragma: no cover - guarded upstream
        raise TransportError("shared-memory transport is unavailable")
    try:
        shm = _shared_memory.SharedMemory(name=encoded.segment)
    except FileNotFoundError as exc:
        raise TransportError(
            f"chunk segment {encoded.segment!r} vanished before the "
            f"coordinator could map it"
        ) from exc
    try:
        raw = bytearray(shm.buf[: encoded.nbytes])
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
    return raw


def decode_payload(
    raw: bytes | bytearray, codec: str
) -> tuple[list[Any], dict[str, Any] | None]:
    """Decode a stream produced by :func:`encode_chunk`."""
    if codec == "pickle":
        values, telemetry = pickle.loads(raw)
        return values, telemetry
    if codec != "shm":
        raise ValueError(f"unknown transport codec {codec!r}")
    return _decode_stream(raw)


def cleanup_segment(name: str) -> bool:
    """Unlink a segment that may or may not exist; True if it did.

    The coordinator calls this for every segment it assigned to a
    chunk the executor ate (worker killed mid-chunk): the worker may
    have died before creating it, after creating it, or after the
    coordinator already consumed it — all three are fine.
    """
    if _shared_memory is None:
        return False
    try:
        shm = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        return False
    return True


def leaked_segments(token: str | None = None) -> list[str]:
    """Names of live repro segments (test/audit helper).

    Scans ``/dev/shm`` for :data:`SEGMENT_PREFIX` entries, optionally
    narrowed to one run's ``token``.  Returns an empty list on
    platforms without a visible shm filesystem.
    """
    import os

    prefix = SEGMENT_PREFIX if token is None else f"{SEGMENT_PREFIX}{token}-"
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))
