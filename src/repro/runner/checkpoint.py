"""Chunk-granular checkpoint/resume for the parallel engine.

A long sweep should never lose finished work to a crash.  The engine
spills every completed chunk — its values, worker attribution, busy
time and telemetry snapshot — to an append-only JSONL checkpoint file,
and a restarted run loads the file, skips the chunks it already holds,
and executes only the remainder.  Because each chunk's values are a
pure function of its units' :class:`~repro.runner.engine.UnitContext`
substreams, a resumed run's :class:`~repro.runner.engine.SweepResult`
is bit-identical to an uninterrupted one.

File format (one JSON object per line):

* ``header`` — schema version, producing ``repro`` version, and the
  run *fingerprint*: a digest of ``(seed, n_units, chunk_size)``.  The
  fingerprint guards resumes: a checkpoint written for a different
  seed, grid, or chunking refuses to resume rather than silently
  mixing results.
* ``chunk`` — one completed chunk: its index, unit span, worker pid,
  busy seconds, and a base64 chunk stream of ``(values,
  telemetry_snapshot)`` guarded by a BLAKE2b digest.  The stream is
  encoded by :mod:`repro.runner.transport` — the *same* codec that
  carried the chunk across the process boundary, so spilling reuses
  the worker's bytes instead of re-pickling (schema 2 records carry
  the ``codec`` name and the stream's ``payload_bytes``; schema 1
  records, plain base64 pickles, still load).  Values are serialized
  (not JSON) because work functions return arbitrary Python objects
  (``SessionStats``, numpy scalars, dataclasses) and resume must
  reproduce them bit-identically.

Torn writes — a run killed mid-line — are expected: loading skips any
line that fails to parse or whose payload digest mismatches, so a
checkpoint survives the very crashes it exists for.  Chunks re-recorded
after a partial retry simply overwrite on load (last record wins).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any

from .transport import (
    TransportError,
    decode_payload,
    encode_chunk,
    payload_digest,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointState",
    "CheckpointWriter",
    "CompletedChunk",
    "checkpoint_fingerprint",
    "load_checkpoint",
]

#: Checkpoint record schema version (the ``schema`` field of each line).
#: Schema 2 added the per-chunk ``codec`` and ``payload_bytes`` fields;
#: schema-1 files (implicit pickle codec) remain loadable.
CHECKPOINT_SCHEMA = 2

#: Schemas :func:`load_checkpoint` accepts.
_COMPATIBLE_SCHEMAS = (1, 2)

_DIGEST_BYTES = 16


class CheckpointError(RuntimeError):
    """A checkpoint file cannot be used (mismatched run or bad header)."""


def checkpoint_fingerprint(
    seed: int, n_units: int, chunk_size: int
) -> str:
    """Digest identifying the run shape a checkpoint belongs to.

    Covers exactly the knobs that decide chunk boundaries and unit
    seeding; a resume with any of them changed is a different run and
    must be refused.  Worker count and executor choice are deliberately
    absent — they cannot affect results, so a sweep interrupted on 8
    workers may resume on 2 (or serially).
    """
    payload = f"{seed}:{n_units}:{chunk_size}".encode("utf-8")
    return hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).hexdigest()


@dataclass(frozen=True)
class CompletedChunk:
    """One chunk restored from (or recorded to) a checkpoint.

    ``codec`` names the :mod:`repro.runner.transport` codec the spilled
    stream used and ``payload_bytes`` its encoded size — the
    measurability hook for the one-codec spill path (schema-1 records
    load as ``codec="pickle"`` with ``payload_bytes=0``).
    """

    chunk_index: int
    first_index: int
    n_units: int
    worker: int
    busy_s: float
    values: list[Any]
    telemetry: dict[str, Any] | None
    codec: str = "pickle"
    payload_bytes: int = 0


@dataclass(frozen=True)
class CheckpointState:
    """A loaded checkpoint: header metadata plus completed chunks."""

    meta: dict[str, Any]
    chunks: dict[int, CompletedChunk]
    skipped_lines: int

    def fingerprint(self) -> str:
        return str(self.meta.get("fingerprint", ""))


def _encode_payload(
    values: list[Any],
    telemetry: dict[str, Any] | None,
    codec: str = "pickle",
) -> tuple[str, str, int]:
    """Encode a payload for spilling; returns (base64, digest, nbytes).

    Delegates to :func:`repro.runner.transport.encode_chunk` so the
    spill format is the transport format — one codec for both
    boundaries.
    """
    encoded = encode_chunk(values, telemetry, codec)
    raw = encoded.payload
    return (
        base64.b64encode(raw).decode("ascii"),
        encoded.digest,
        encoded.nbytes,
    )


def _decode_payload(
    encoded: str, digest: str, codec: str = "pickle"
) -> tuple[list[Any], dict[str, Any] | None]:
    raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    if payload_digest(raw) != digest:
        raise ValueError("chunk payload digest mismatch")
    return decode_payload(raw, codec)


class CheckpointWriter:
    """Append-only JSONL writer for completed chunks.

    Each :meth:`record_chunk` writes one line and flushes, so a run
    killed between chunks loses at most the line being written — which
    :func:`load_checkpoint` then skips as torn.
    """

    def __init__(self, path: str | os.PathLike, meta: dict[str, Any]) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fresh = (
            not os.path.exists(self.path)
            or os.path.getsize(self.path) == 0
        )
        torn_tail = False
        if not fresh:
            with open(self.path, "rb") as peek:
                peek.seek(-1, os.SEEK_END)
                torn_tail = peek.read(1) != b"\n"
        self._handle = open(self.path, "a", encoding="utf-8")
        if torn_tail:
            # The previous run died mid-line; start on a fresh line so
            # the next record is not glued onto the torn one (the torn
            # fragment itself stays and is skipped on load).
            self._handle.write("\n")
            self._handle.flush()
        self.records_written = 0
        if fresh:
            from .. import __version__

            self._write_line(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "kind": "header",
                    "producer": "repro",
                    "version": __version__,
                    **meta,
                }
            )

    def _write_line(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        self.records_written += 1

    def record_chunk(
        self,
        chunk: CompletedChunk,
        encoded: tuple[str, bytes | bytearray] | None = None,
    ) -> None:
        """Persist one completed chunk (values + telemetry snapshot).

        ``encoded`` is the fix for the historical double-encoding: when
        the chunk already crossed the process boundary as a
        ``(codec, stream)`` pair, the coordinator hands those bytes in
        verbatim and the writer spills them without re-serializing the
        values.  Serial runs (no boundary crossed) encode here, once.
        """
        if encoded is not None:
            codec, raw = encoded
            payload = base64.b64encode(raw).decode("ascii")
            digest = payload_digest(raw)
            nbytes = len(raw)
        else:
            codec = chunk.codec
            payload, digest, nbytes = _encode_payload(
                chunk.values, chunk.telemetry, codec
            )
        self._write_line(
            {
                "schema": CHECKPOINT_SCHEMA,
                "kind": "chunk",
                "chunk": chunk.chunk_index,
                "first_index": chunk.first_index,
                "n_units": chunk.n_units,
                "worker": chunk.worker,
                "busy_s": chunk.busy_s,
                "codec": codec,
                "payload_bytes": nbytes,
                "payload": payload,
                "digest": digest,
            }
        )

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_checkpoint(path: str | os.PathLike) -> CheckpointState:
    """Read a checkpoint file, skipping torn or corrupt lines.

    Raises :class:`CheckpointError` when the file's first intact record
    is not a compatible header (wrong schema, or not a checkpoint file
    at all); individual bad chunk lines are counted in
    ``skipped_lines`` and otherwise ignored.
    """
    path = os.fspath(path)
    meta: dict[str, Any] | None = None
    chunks: dict[int, CompletedChunk] = {}
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            kind = record.get("kind")
            if kind == "header":
                if record.get("schema") not in _COMPATIBLE_SCHEMAS:
                    raise CheckpointError(
                        f"{path}: unsupported checkpoint schema "
                        f"{record.get('schema')!r}"
                    )
                if meta is None:
                    meta = record
                continue
            if kind != "chunk":
                skipped += 1
                continue
            try:
                codec = str(record.get("codec", "pickle"))
                values, telemetry = _decode_payload(
                    record["payload"], record["digest"], codec
                )
                chunk = CompletedChunk(
                    chunk_index=int(record["chunk"]),
                    first_index=int(record["first_index"]),
                    n_units=int(record["n_units"]),
                    worker=int(record["worker"]),
                    busy_s=float(record["busy_s"]),
                    values=values,
                    telemetry=telemetry,
                    codec=codec,
                    payload_bytes=int(record.get("payload_bytes", 0)),
                )
            except (
                KeyError,
                ValueError,
                TypeError,
                pickle.PickleError,
                TransportError,
            ):
                skipped += 1
                continue
            if len(chunk.values) != chunk.n_units:
                skipped += 1
                continue
            chunks[chunk.chunk_index] = chunk
    if meta is None:
        raise CheckpointError(f"{path}: no intact checkpoint header")
    return CheckpointState(meta=meta, chunks=chunks, skipped_lines=skipped)
