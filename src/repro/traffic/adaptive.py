"""Adaptive FEC over a scheduled session: the full closed loop.

This is where the tentpole pieces meet: a message stream is encoded
with a Reed–Solomon code whose redundancy a
:class:`repro.core.rate_control.RedundancyController` tunes to the
block corruption the decoder actually observes, and the coded bits
ride the transmission opportunities a
:class:`repro.traffic.scheduler.ScheduledSession` picks out of the
ambient traffic.  Runs proceed in feedback *rounds*: plan the next
batch of windows, size a coded payload to the exact ride count, load
it on the tag, execute, decode, feed the corruption back.

The same machinery runs the paper-static baseline — a scheduler that
rides every window plus a single-rung controller — so the adaptive
vs static bench comparison differs only in policy, never in plumbing.

Everything here is deterministic given the component streams, so the
adaptive bench leg inherits the simulator's equivalence contract:
same seed, same trace → bit-identical reports across scalar/batch
tiers and serial/process-pool execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.fec import ReedSolomonCode
from ..core.rate_control import RedundancyController
from ..seeding import component_rng
from .scheduler import ScheduledSession

__all__ = ["AdaptiveFecLink", "LinkReport", "RoundReport"]


@dataclass(frozen=True)
class RoundReport:
    """One feedback round of the adaptive link.

    Attributes:
        round_index: ordinal of the round.
        nsym: Reed-Solomon parity symbols used this round.
        windows: transmission opportunities planned.
        rides: windows the tag rode.
        blocks: FEC blocks fully received and decoded.
        failed_blocks: blocks that decoded wrong (flagged uncorrectable,
            or silently miscorrected — measured against ground truth).
        message_bits: message bits carried by decoded blocks.
        delivered_bits: message bits from blocks decoded correctly.
    """

    round_index: int
    nsym: int
    windows: int
    rides: int
    blocks: int
    failed_blocks: int
    message_bits: int
    delivered_bits: int


@dataclass(frozen=True)
class LinkReport:
    """Aggregate outcome of an adaptive-link run.

    Attributes:
        rounds: per-round records, in order.
        elapsed_s: simulated time spanned by all windows (ridden query
            cycles plus skipped sleep), the goodput denominator.
        energy_j: tag energy consumed, when an energy simulator was
            attached (None otherwise).
    """

    rounds: tuple[RoundReport, ...]
    elapsed_s: float
    energy_j: float | None

    @property
    def message_bits(self) -> int:
        """Message bits across all decoded blocks."""
        return sum(r.message_bits for r in self.rounds)

    @property
    def delivered_bits(self) -> int:
        """Correctly decoded message bits."""
        return sum(r.delivered_bits for r in self.rounds)

    @property
    def goodput_bps(self) -> float:
        """Correct message bits per second of tag existence."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.delivered_bits / self.elapsed_s

    @property
    def block_error_rate(self) -> float:
        """Fraction of decoded FEC blocks that came out wrong."""
        blocks = sum(r.blocks for r in self.rounds)
        if not blocks:
            return 0.0
        return sum(r.failed_blocks for r in self.rounds) / blocks

    @property
    def energy_per_bit_uj(self) -> float | None:
        """Microjoules consumed per correctly delivered message bit."""
        if self.energy_j is None or not self.delivered_bits:
            return None
        return self.energy_j * 1e6 / self.delivered_bits


@dataclass
class AdaptiveFecLink:
    """Feedback-round driver tying scheduler, codec and controller.

    Attributes:
        scheduled: the traffic-aware session the coded bits ride.
        controller: redundancy ladder; its ``levels`` are RS parity
            counts.  With ``adaptive=False`` it is never consulted for
            movement — the current rung stays fixed (the static-paper
            baseline).
        block_k: RS data bytes per block.
        message_rng: generator for the message stream (its own stream,
            like every other component).
        adaptive: feed block corruption back into the controller.
    """

    scheduled: ScheduledSession
    controller: RedundancyController = field(
        default_factory=RedundancyController
    )
    block_k: int = 8
    message_rng: np.random.Generator = field(
        default_factory=lambda: component_rng("message")
    )
    adaptive: bool = True
    reports: list[RoundReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.block_k < 1:
            raise ValueError("block_k must be >= 1")

    def run_round(self, windows: int) -> RoundReport:
        """One feedback round over ``windows`` opportunities."""
        plan = self.scheduled.plan_windows(windows)
        rides = sum(1 for d in plan if d.ride)
        system = self.scheduled.session.system
        bits_per_query = system.config.bits_per_query
        budget = rides * bits_per_query

        nsym = int(self.controller.level)
        code = ReedSolomonCode(k=self.block_k, nsym=nsym)
        block_coded = 8 * (self.block_k + nsym)
        n_blocks = budget // block_coded
        message: list[int] = []
        payload: list[int] = []
        if n_blocks:
            message = [
                int(b)
                for b in self.message_rng.integers(
                    0, 2, size=n_blocks * 8 * self.block_k
                )
            ]
            payload = code.encode(message)
        payload = payload + [0] * (budget - len(payload))

        # The tag queue must start empty so the coded stream aligns
        # with the concatenated sent bits (missed triggers keep bits
        # queued, never drop them — see TagStateMachine.process_query).
        start = len(self.scheduled.results)
        system.tag.data_queue.clear()
        if payload:
            system.load_tag_bits(payload)
        self.scheduled.execute_plan(plan)
        system.tag.data_queue.clear()

        received: list[int] = []
        for result in self.scheduled.results[start:]:
            received.extend(result.received_bits)
        usable = min(len(received), n_blocks * block_coded)
        usable -= usable % block_coded
        blocks = usable // block_coded
        failed = 0
        delivered = 0
        if blocks:
            decoded, flags = code.decode_blocks(received[:usable])
            bits_per_block = 8 * self.block_k
            for b in range(blocks):
                chunk = decoded[b * bits_per_block : (b + 1) * bits_per_block]
                truth = message[b * bits_per_block : (b + 1) * bits_per_block]
                if flags[b] and chunk == truth:
                    delivered += bits_per_block
                else:
                    failed += 1
        if self.adaptive:
            self.controller.observe_corruption(failed, blocks)

        report = RoundReport(
            round_index=len(self.reports),
            nsym=nsym,
            windows=windows,
            rides=rides,
            blocks=blocks,
            failed_blocks=failed,
            message_bits=blocks * 8 * self.block_k,
            delivered_bits=delivered,
        )
        self.reports.append(report)
        return report

    def run(self, rounds: int, windows_per_round: int) -> LinkReport:
        """Run ``rounds`` feedback rounds; returns the aggregate report."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        for _ in range(rounds):
            self.run_round(windows_per_round)
        energy = self.scheduled.energy
        return LinkReport(
            rounds=tuple(self.reports),
            elapsed_s=self.scheduled._elapsed_s,
            energy_j=None if energy is None else energy.consumed_j,
        )
