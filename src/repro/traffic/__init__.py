"""Ambient-traffic modelling and predictive opportunity scheduling.

The dynamic-load layer of the simulator (ROADMAP: "Traffic-aware
scheduling and adaptive/rateless FEC"): models of the ambient WiFi
load a WiTAG tag piggybacks on (:mod:`repro.traffic.models`), and the
predictive scheduler that decides which transmission opportunities the
tag rides versus sleeps through (:mod:`repro.traffic.scheduler`).
See ``docs/adaptive.md`` for the end-to-end tour.
"""

from .adaptive import AdaptiveFecLink, LinkReport, RoundReport
from .models import (
    MarkovTraffic,
    OnOffTraffic,
    TraceReplayTraffic,
    TrafficModel,
)
from .scheduler import (
    EwmaPredictor,
    HoltPredictor,
    OpportunityScheduler,
    ScheduledFleetPoller,
    ScheduledSession,
    WindowDecision,
)

__all__ = [
    "AdaptiveFecLink",
    "EwmaPredictor",
    "HoltPredictor",
    "LinkReport",
    "MarkovTraffic",
    "OnOffTraffic",
    "OpportunityScheduler",
    "RoundReport",
    "ScheduledFleetPoller",
    "ScheduledSession",
    "TraceReplayTraffic",
    "TrafficModel",
    "WindowDecision",
]
