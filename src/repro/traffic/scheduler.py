"""Predictive opportunity scheduling: which frames the tag rides.

FlexScatter's observation (arXiv 2412.08982) applied to WiTAG: ambient
traffic is bursty, and a tag that modulates through a congested window
mostly produces collisions — subframes destroyed by *other* stations
read as raw 0s at the AP, indistinguishable from tag corruption.  A tag
that instead sleeps through predicted-busy windows and rides
predicted-quiet ones converts wasted active time into energy savings
and delivers more correct bits per second.

The pieces, bottom-up:

* :class:`EwmaPredictor` / :class:`HoltPredictor` — one-step busy
  forecasts (exponentially weighted mean, and Holt's double-exponential
  level+trend variant that tracks ramps).
* :class:`OpportunityScheduler` — the causal decide-then-observe loop:
  before each window it forecasts from *past* observations and decides
  ride vs skip; after the window it feeds the realised busy fraction
  back.  Pure float arithmetic — no randomness — so decisions are a
  deterministic function of the traffic trace.
* :class:`ScheduledSession` — wraps a :class:`MeasurementSession`,
  stepping a traffic model once per window, pushing each ridden
  window's busy fraction into the CSMA layer
  (:meth:`ContentionModel.push_activity`), riding via the session's
  scalar or batch engine, then applying collision interference to the
  ridden queries.  Because the decisions depend only on the traffic
  stream and the interference draws happen per ridden query in window
  order, the whole construction inherits the simulator's bitwise
  tier-equivalence contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np

from ..core.session import MeasurementSession, SessionStats
from ..seeding import component_rng
from ..tag.energy import EnergySimulator
from .models import TrafficModel

__all__ = [
    "EwmaPredictor",
    "HoltPredictor",
    "OpportunityScheduler",
    "ScheduledFleetPoller",
    "ScheduledSession",
    "WindowDecision",
]


class Predictor(Protocol):
    """One-step-ahead forecaster for the window busy fraction."""

    def predict(self) -> float:
        """Forecast the next window's busy fraction from past data."""
        ...  # pragma: no cover - protocol

    def observe(self, busy: float) -> None:
        """Feed the realised busy fraction of the window just past."""
        ...  # pragma: no cover - protocol


@dataclass
class EwmaPredictor:
    """Exponentially weighted moving average forecast.

    ``predict`` returns the current level (0 before any observation —
    an empty channel is the optimistic prior, so the first window is
    always ridden and the predictor bootstraps from real feedback).
    """

    alpha: float = 0.3
    level: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def predict(self) -> float:
        return self.level if self.level is not None else 0.0

    def observe(self, busy: float) -> None:
        if self.level is None:
            self.level = float(busy)
        else:
            self.level = self.alpha * busy + (1.0 - self.alpha) * self.level


@dataclass
class HoltPredictor:
    """Holt double-exponential smoothing: level + trend.

    Tracks ramps an EWMA lags behind — when a burst builds over several
    windows the trend term pushes the forecast ahead of the level, so
    the scheduler backs off *before* the peak.  Forecasts are clamped
    to [0, 1] (a busy fraction).
    """

    alpha: float = 0.4
    beta: float = 0.2
    level: float | None = None
    trend: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")

    def predict(self) -> float:
        if self.level is None:
            return 0.0
        return min(1.0, max(0.0, self.level + self.trend))

    def observe(self, busy: float) -> None:
        if self.level is None:
            self.level = float(busy)
            self.trend = 0.0
            return
        previous = self.level
        self.level = self.alpha * busy + (1.0 - self.alpha) * (
            self.level + self.trend
        )
        self.trend = (
            self.beta * (self.level - previous) + (1.0 - self.beta) * self.trend
        )


@dataclass(frozen=True)
class WindowDecision:
    """One transmission opportunity's scheduling record.

    Attributes:
        index: window ordinal within the session.
        busy: realised busy fraction of the window.
        predicted: the forecast the decision was based on (made before
            ``busy`` was known — the scheduler is causal).
        ride: whether the tag rode this window.
        forced: ride forced by the skip-streak guard, not the forecast.
    """

    index: int
    busy: float
    predicted: float
    ride: bool
    forced: bool = False


@dataclass
class OpportunityScheduler:
    """Causal ride/skip policy over predicted busy fractions.

    Rides a window when the forecast busy fraction is at or below
    ``ride_threshold``.  A skip-streak guard forces a ride after
    ``max_skip_streak`` consecutive skips, so a pessimistic forecast
    can never starve the tag entirely (the forced ride also refreshes
    the predictor with a real contention sample).

    Deterministic by construction: no randomness, pure float updates —
    the same traffic trace always yields the same decision sequence,
    which is what the tier-equivalence tests pin down.
    """

    predictor: Predictor = field(default_factory=EwmaPredictor)
    ride_threshold: float = 0.35
    max_skip_streak: int = 25

    def __post_init__(self) -> None:
        if not 0.0 <= self.ride_threshold <= 1.0:
            raise ValueError("ride_threshold must be in [0, 1]")
        if self.max_skip_streak < 1:
            raise ValueError("max_skip_streak must be >= 1")
        self._skip_streak = 0

    def decide(self) -> tuple[bool, float, bool]:
        """Decide the upcoming window: (ride, forecast, forced)."""
        predicted = self.predictor.predict()
        ride = predicted <= self.ride_threshold
        forced = False
        if not ride and self._skip_streak >= self.max_skip_streak:
            ride = True
            forced = True
        self._skip_streak = 0 if ride else self._skip_streak + 1
        return ride, predicted, forced

    def observe(self, busy: float) -> None:
        """Feed the realised busy fraction of the decided window."""
        self.predictor.observe(busy)


@dataclass
class ScheduledSession:
    """A measurement session driven by ambient traffic and a scheduler.

    Each call processes transmission-opportunity *windows* of duration
    ``window_s``.  Per window, in order:

    1. the traffic model is stepped once (its own generator — stepping
       never perturbs PHY/tag/session streams) to get the window's
       realised busy fraction;
    2. the scheduler forecasts from past windows and decides ride/skip;
    3. ridden windows push their busy fraction into the CSMA layer and
       run one query through the wrapped session (scalar or batch
       engine — identical results either way); collisions with ambient
       frames then destroy each data subframe with probability
       ``collision_scale * busy`` (a destroyed subframe reads as raw
       bit 0 at the AP, exactly like tag corruption);
    4. skipped windows advance simulated time by ``window_s`` with the
       tag asleep.

    Tier equivalence: decisions depend only on the traffic stream and
    predictor state; ridden-window activities drain through the CSMA
    FIFO in the same per-query order in both the scalar loop and the
    batch engine; interference draws happen per ridden query in window
    order from a dedicated generator.  Same seed + same trace therefore
    gives bit-identical decisions and stats at every execution tier.

    Attributes:
        session: the wrapped measurement session.
        traffic: ambient-traffic model (see :mod:`repro.traffic.models`).
        scheduler: ride/skip policy.
        window_s: transmission-opportunity window duration.
        collision_scale: P(data subframe destroyed) per unit busy
            fraction during a ridden window.
        interference_rng: generator for collision draws (own stream).
        energy: optional tag energy simulator; ridden windows spend the
            active budget for the query cycle, skipped windows sleep.
    """

    session: MeasurementSession
    traffic: TrafficModel
    scheduler: OpportunityScheduler = field(
        default_factory=OpportunityScheduler
    )
    window_s: float = 0.02
    collision_scale: float = 1.0
    interference_rng: np.random.Generator = field(
        default_factory=lambda: component_rng("interference")
    )
    energy: EnergySimulator | None = None
    decisions: list[WindowDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= self.collision_scale <= 1.0:
            raise ValueError("collision_scale must be in [0, 1]")
        self._elapsed_s = 0.0

    # -- MeasurementSession-compatible surface (runner duck typing) ----

    @property
    def system(self):
        """The wrapped session's system (runner/telemetry attach point)."""
        return self.session.system

    @property
    def results(self):
        """Ridden-query results (interference already applied)."""
        return self.session.results

    @property
    def session_fast_path(self) -> bool:
        return self.session.session_fast_path

    @session_fast_path.setter
    def session_fast_path(self, value: bool) -> None:
        self.session.session_fast_path = value

    # -- scheduling loop ----------------------------------------------

    @property
    def windows(self) -> int:
        """Windows processed so far."""
        return len(self.decisions)

    @property
    def rides(self) -> int:
        """Windows the tag rode."""
        return sum(1 for d in self.decisions if d.ride)

    @property
    def skips(self) -> int:
        """Windows the tag slept through."""
        return len(self.decisions) - self.rides

    def plan_windows(self, count: int) -> list[WindowDecision]:
        """Step ``count`` windows through traffic model and scheduler.

        Decisions depend only on the traffic stream and predictor
        state, never on query outcomes, so the full plan is known
        before any query runs — which is what lets the ridden queries
        flow through the batch engine as one contiguous block, and
        lets callers (the adaptive FEC link) size a coded payload to
        the exact number of rides before executing.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        base = len(self.decisions)
        plan: list[WindowDecision] = []
        for i in range(count):
            busy = self.traffic.step(self.window_s)
            ride, predicted, forced = self.scheduler.decide()
            self.scheduler.observe(busy)
            plan.append(
                WindowDecision(
                    index=base + i,
                    busy=busy,
                    predicted=predicted,
                    ride=ride,
                    forced=forced,
                )
            )
        self.decisions.extend(plan)
        return plan

    def execute_plan(self, plan: list[WindowDecision]) -> SessionStats:
        """Run a plan from :meth:`plan_windows`; returns cumulative stats."""
        start = len(self.session.results)
        ridden = [d for d in plan if d.ride]
        contention = self.session.system.contention
        if contention is not None:
            for decision in ridden:
                contention.push_activity(decision.busy)
        if ridden:
            self.session.run_queries(len(ridden))
            for offset, decision in enumerate(ridden):
                index = start + offset
                self.session.results[index] = self._apply_interference(
                    self.session.results[index], decision.busy
                )

        # Elapsed time and energy, in window order.  Windows are a
        # fixed-cadence resource: a ridden window still occupies the
        # full window (the tag is active for the query cycle, asleep
        # for the remainder), and a query whose contention delays push
        # its cycle past the window overruns it.  Skipped windows are
        # pure sleep.  This keeps the goodput denominator comparable
        # between a scheduler that skips and one that rides everything.
        ride_results = iter(self.session.results[start:])
        rx_dbm = self.session.system.rx_power_at_tag_dbm
        for decision in plan:
            if decision.ride:
                cycle_s = next(ride_results).cycle_s
                dt_s = max(cycle_s, self.window_s)
                if self.energy is not None:
                    self.energy.step(cycle_s, active=True, rf_dbm=rx_dbm)
                    if dt_s > cycle_s:
                        self.energy.step(
                            dt_s - cycle_s,
                            active=False,
                            rf_dbm=self.energy.idle_rf_dbm,
                        )
            else:
                dt_s = self.window_s
                if self.energy is not None:
                    self.energy.step(
                        dt_s, active=False, rf_dbm=self.energy.idle_rf_dbm
                    )
            self._elapsed_s += dt_s
        return self.stats()

    def run_queries(self, count: int) -> SessionStats:
        """Process ``count`` windows; returns cumulative stats.

        ``count`` is a number of transmission opportunities, not ridden
        queries — the scheduler decides how many of them become queries.
        """
        return self.execute_plan(self.plan_windows(count))

    def run_for(self, duration_s: float) -> SessionStats:
        """Process windows until ``duration_s`` of window time passes."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        count = max(1, math.ceil(duration_s / self.window_s))
        return self.run_queries(count)

    def _apply_interference(self, result, busy: float):
        """Destroy data subframes that collide with ambient frames.

        A collision destroys the subframe for the AP regardless of what
        the tag did, so the raw received bit becomes 0 — an error
        exactly when the tag sent a 1.  One uniform draw per data bit,
        consumed per ridden query in window order (tier-invariant).
        """
        n = len(result.received_bits)
        p = min(1.0, self.collision_scale * busy)
        if n == 0 or p <= 0.0:
            return result
        mask = self.interference_rng.random(n) < p
        if not mask.any():
            return result
        received = tuple(
            0 if hit else bit
            for bit, hit in zip(result.received_bits, mask)
        )
        return replace(result, received_bits=received)

    def stats(self) -> SessionStats:
        """Cumulative stats over all windows processed so far.

        ``elapsed_s`` covers *every* window (ridden cycles plus skipped
        sleep time), so throughput/goodput is per second of tag
        existence — the honest denominator for comparing a scheduler
        that skips windows against one that rides everything.
        """
        inner = self.session.stats(self._elapsed_s)
        return inner

    def per_query_ber(self) -> list[float]:
        """BER of each ridden query (post-interference)."""
        return self.session.per_query_ber()

    def stage_timings(self):
        """Wrapped session's per-stage wall-clock counters."""
        return self.session.stage_timings()


@dataclass
class ScheduledFleetPoller:
    """Traffic-aware polling over a tag fleet (or its scalar twin).

    The fleet-tier face of the scheduler: ``poller`` is anything with a
    ``poll_round()`` returning ``{address: MultiTagQueryResult}`` — a
    struct-of-arrays :class:`repro.core.fleet.TagFleet` or its
    bit-identical :class:`repro.core.multitag.MultiTagCell` reference.
    Per window the traffic model is stepped and the scheduler decides;
    ridden windows poll the whole fleet once and collisions with
    ambient frames destroy each raw payload bit with probability
    ``collision_scale * busy`` (drawn per query in sorted address
    order).  Decisions and corrupted results are bit-identical between
    a fleet and its ``reference_cell()`` given equal traffic/
    interference streams — the fleet leg of the tier-equivalence suite.
    """

    poller: object
    traffic: TrafficModel
    scheduler: OpportunityScheduler = field(
        default_factory=OpportunityScheduler
    )
    window_s: float = 0.02
    collision_scale: float = 1.0
    interference_rng: np.random.Generator = field(
        default_factory=lambda: component_rng("interference")
    )
    decisions: list[WindowDecision] = field(default_factory=list)
    rounds: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= self.collision_scale <= 1.0:
            raise ValueError("collision_scale must be in [0, 1]")

    @property
    def rides(self) -> int:
        """Windows the fleet was polled in."""
        return sum(1 for d in self.decisions if d.ride)

    def run_windows(self, count: int) -> list[dict]:
        """Process ``count`` windows; returns the ridden rounds.

        Each returned round is a ``{address: MultiTagQueryResult}``
        dict with collision interference already applied.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        new_rounds: list[dict] = []
        base = len(self.decisions)
        for i in range(count):
            busy = self.traffic.step(self.window_s)
            ride, predicted, forced = self.scheduler.decide()
            self.scheduler.observe(busy)
            self.decisions.append(
                WindowDecision(
                    index=base + i,
                    busy=busy,
                    predicted=predicted,
                    ride=ride,
                    forced=forced,
                )
            )
            if not ride:
                continue
            round_ = self.poller.poll_round()
            corrupted = {
                name: self._corrupt(result, busy)
                for name, result in round_.items()
            }
            new_rounds.append(corrupted)
        self.rounds.extend(new_rounds)
        return new_rounds

    def _corrupt(self, result, busy: float):
        """Collision interference on one query's raw payload bits."""
        n = len(result.raw_bits)
        p = min(1.0, self.collision_scale * busy)
        if n == 0 or p <= 0.0:
            return result
        mask = self.interference_rng.random(n) < p
        if not mask.any():
            return result
        raw = tuple(
            0 if hit else bit for bit, hit in zip(result.raw_bits, mask)
        )
        return replace(result, raw_bits=raw)
