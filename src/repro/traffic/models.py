"""Ambient WiFi traffic models: the load a tag actually rides on.

The paper's core story (§1, §4) is that WiTAG piggybacks on *ordinary*
WiFi transmissions; until now the simulator generated its own query
traffic at a constant cadence, so that story was untested under
dynamic load.  This module supplies the missing ambient layer: models
of the channel-busy process seen by a reader cell, stepped once per
transmission opportunity ("window") and feeding the existing CSMA
layer (:class:`repro.mac.csma.ContentionModel`) through its dynamic
activity queue.

Three model families, following FlexScatter (arXiv 2412.08982) and
GuardRider (arXiv 1912.06493):

* :class:`OnOffTraffic` — the classic bursty alternating-renewal
  source: exponential ON/OFF sojourns, Poisson frame arrivals while ON.
* :class:`MarkovTraffic` — a Markov-modulated load: per-window state
  transitions over a finite rate set (an MMPP at window granularity).
* :class:`TraceReplayTraffic` — replay of recorded frame inter-arrival
  times (cyclic), the trace-driven mode a real deployment would feed
  from packet captures.

Every model exposes the same two-method surface:

* ``step(dt_s) -> float`` — advance one window and return its
  channel-busy fraction in ``[0, 1]`` (consuming only the model's own
  generator, so traffic streams never perturb PHY/tag/session streams);
* ``mean_busy_fraction`` — the configured long-run expectation, which
  the statistical test suite checks empirical busy fractions against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from ..seeding import component_rng

__all__ = [
    "MarkovTraffic",
    "OnOffTraffic",
    "TraceReplayTraffic",
    "TrafficModel",
]


class TrafficModel(Protocol):
    """The surface every ambient-traffic model exposes."""

    def step(self, dt_s: float) -> float:
        """Advance one window; return its busy fraction in [0, 1]."""
        ...  # pragma: no cover - protocol

    @property
    def mean_busy_fraction(self) -> float:
        """Long-run expected busy fraction."""
        ...  # pragma: no cover - protocol


def _check_window(dt_s: float) -> None:
    if dt_s <= 0.0:
        raise ValueError(f"window duration must be positive, got {dt_s}")


@dataclass
class OnOffTraffic:
    """Bursty ON/OFF (alternating renewal) ambient load.

    The source alternates between exponential ON bursts (mean
    ``mean_on_s``) and exponential OFF gaps (mean ``mean_off_s``).
    While ON it offers Poisson frame arrivals at ``rate_fps`` frames
    per second, each occupying the channel for ``frame_airtime_s`` —
    an ON-period busy fraction of ``min(1, rate_fps *
    frame_airtime_s)``.  A window's busy fraction is the ON-time it
    overlaps, weighted by that ON activity.

    Attributes:
        rate_fps: frame arrival rate during ON bursts.
        frame_airtime_s: channel time per frame.
        mean_on_s / mean_off_s: mean burst / gap durations.
        start_on: whether the process begins in the ON state.
        rng: the model's own generator (traffic never shares streams).
    """

    rate_fps: float = 600.0
    frame_airtime_s: float = 1.5e-3
    mean_on_s: float = 0.05
    mean_off_s: float = 0.15
    start_on: bool = False
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("traffic")
    )

    def __post_init__(self) -> None:
        if self.rate_fps < 0:
            raise ValueError("rate_fps cannot be negative")
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("mean ON/OFF durations must be positive")
        self._on = bool(self.start_on)
        self._phase_left_s = self._draw_sojourn()

    def _draw_sojourn(self) -> float:
        mean = self.mean_on_s if self._on else self.mean_off_s
        return float(self.rng.exponential(mean))

    @property
    def on_activity(self) -> float:
        """Busy fraction while the source is in an ON burst."""
        return min(1.0, self.rate_fps * self.frame_airtime_s)

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time spent ON."""
        return self.mean_on_s / (self.mean_on_s + self.mean_off_s)

    @property
    def mean_busy_fraction(self) -> float:
        return self.duty_cycle * self.on_activity

    def step(self, dt_s: float) -> float:
        """Advance one window; busy = (ON overlap / dt) * ON activity."""
        _check_window(dt_s)
        remaining = float(dt_s)
        on_time = 0.0
        while remaining > 0.0:
            take = min(remaining, self._phase_left_s)
            if self._on:
                on_time += take
            self._phase_left_s -= take
            remaining -= take
            if self._phase_left_s <= 0.0:
                self._on = not self._on
                self._phase_left_s = self._draw_sojourn()
        return (on_time / dt_s) * self.on_activity


@dataclass
class MarkovTraffic:
    """Markov-modulated ambient load over a finite set of rates.

    At every window the hidden state takes one transition of the chain
    ``transition`` (row-stochastic), then the window's busy fraction is
    ``min(1, rates_fps[state] * frame_airtime_s)`` — an MMPP collapsed
    to window granularity, the FlexScatter-style "predictable bursty
    station" model.

    Attributes:
        rates_fps: offered frame rate per hidden state.
        transition: row-stochastic transition matrix (one step per
            window); defaults to a sticky two-state chain.
        frame_airtime_s: channel time per frame.
        state: initial hidden state index.
        rng: the model's own generator.
    """

    rates_fps: Sequence[float] = (30.0, 600.0)
    transition: Sequence[Sequence[float]] | None = None
    frame_airtime_s: float = 1.5e-3
    state: int = 0
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("traffic")
    )

    def __post_init__(self) -> None:
        self.rates_fps = tuple(float(r) for r in self.rates_fps)
        if not self.rates_fps or any(r < 0 for r in self.rates_fps):
            raise ValueError("need at least one nonnegative rate")
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")
        n = len(self.rates_fps)
        if self.transition is None:
            if n != 2:
                raise ValueError(
                    "the default sticky chain needs exactly 2 states; "
                    "pass an explicit transition matrix"
                )
            matrix = np.array([[0.95, 0.05], [0.10, 0.90]])
        else:
            matrix = np.asarray(self.transition, dtype=float)
        if matrix.shape != (n, n):
            raise ValueError(
                f"transition matrix must be ({n}, {n}), got {matrix.shape}"
            )
        if (matrix < 0).any() or not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("transition rows must be nonnegative and sum to 1")
        if not 0 <= self.state < n:
            raise ValueError(f"state must be in [0, {n}), got {self.state}")
        self._matrix = matrix
        self._cumulative = np.cumsum(matrix, axis=1)

    def _activity(self, state: int) -> float:
        return min(1.0, self.rates_fps[state] * self.frame_airtime_s)

    @property
    def stationary_distribution(self) -> np.ndarray:
        """The chain's stationary distribution (left eigenvector)."""
        values, vectors = np.linalg.eig(self._matrix.T)
        index = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, index])
        pi = np.abs(pi)
        return pi / pi.sum()

    @property
    def mean_busy_fraction(self) -> float:
        pi = self.stationary_distribution
        return float(
            sum(
                p * self._activity(s)
                for s, p in enumerate(pi)
            )
        )

    def step(self, dt_s: float) -> float:
        """One chain transition, then the new state's busy fraction."""
        _check_window(dt_s)
        u = float(self.rng.random())
        row = self._cumulative[self.state]
        self.state = int(np.searchsorted(row, u, side="right"))
        if self.state >= len(self.rates_fps):  # u == 1.0 guard
            self.state = len(self.rates_fps) - 1
        return self._activity(self.state)


@dataclass
class TraceReplayTraffic:
    """Replay recorded frame inter-arrival times (cyclic).

    The trace-driven mode: feed inter-arrival gaps harvested from a
    real capture (or :meth:`to_file` output) and the model replays
    them against a running clock, reporting each window's busy
    fraction as ``min(1, arrivals * frame_airtime_s / dt)``.  The
    replay is purely deterministic — same trace, same windows, same
    busy fractions — which is what makes recorded-trace experiments
    reproducible across execution tiers.

    Attributes:
        inter_arrivals_s: the recorded gaps (seconds, positive).
        frame_airtime_s: channel time per replayed frame.
    """

    inter_arrivals_s: Sequence[float]
    frame_airtime_s: float = 1.5e-3

    def __post_init__(self) -> None:
        gaps = tuple(float(g) for g in self.inter_arrivals_s)
        if not gaps or any(g <= 0 for g in gaps):
            raise ValueError("need at least one positive inter-arrival gap")
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")
        self.inter_arrivals_s = gaps
        self._cursor = 0
        self._next_arrival_s = gaps[0]
        self._clock_s = 0.0

    @property
    def mean_busy_fraction(self) -> float:
        mean_gap = sum(self.inter_arrivals_s) / len(self.inter_arrivals_s)
        return min(1.0, self.frame_airtime_s / mean_gap)

    def step(self, dt_s: float) -> float:
        _check_window(dt_s)
        window_end = self._clock_s + dt_s
        arrivals = 0
        while self._next_arrival_s <= window_end:
            arrivals += 1
            self._cursor = (self._cursor + 1) % len(self.inter_arrivals_s)
            self._next_arrival_s += self.inter_arrivals_s[self._cursor]
        self._clock_s = window_end
        return min(1.0, arrivals * self.frame_airtime_s / dt_s)

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "TraceReplayTraffic":
        """Load a trace: a JSON list, or one float per text line."""
        text = Path(path).read_text(encoding="utf-8").strip()
        if not text:
            raise ValueError(f"empty trace file: {path}")
        if text[0] == "[":
            gaps = json.loads(text)
        else:
            gaps = [float(line) for line in text.splitlines() if line.strip()]
        return cls(inter_arrivals_s=gaps, **kwargs)

    def to_file(self, path: str | Path) -> int:
        """Write the trace as a JSON list; returns the gap count."""
        Path(path).write_text(
            json.dumps(list(self.inter_arrivals_s)) + "\n", encoding="utf-8"
        )
        return len(self.inter_arrivals_s)
