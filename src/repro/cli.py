"""Command-line interface: run WiTAG experiments without writing code.

Usage::

    python -m repro sweep [--distances 1,2,...] [--workers 4] [--seed 0]
                          [--metrics-out M.json] [--trace-out T.jsonl]
                          [--retries 3] [--timeout 30] [--backoff 0.1]
                          [--inject-faults crash:0] [--checkpoint C.jsonl]
                          [--resume]
    python -m repro bench [--queries 300] [--distance 4.0] [--json OUT.json]
                          [--update-baseline] [--trajectory PATH.json]
                          [--tier4] [--fleet] [--fleet-tags 2000]
                          [--fleet-rounds 1] [--fleet-aps 4]
                          [--metrics-out M.json] [--trace-out T.jsonl]
    python -m repro bench check [--trajectory PATH.json] [--threshold 0.8]
    python -m repro metrics [--sessions 4] [--queries 50] [--workers 2]
                            [--format table|json|prometheus] [--out PATH]
                            [--input M1.json --input M2.json]
    python -m repro trace run OUT.jsonl [--queries 200] [--every-n 1]
    python -m repro trace summary TRACE.jsonl [--json]
    python -m repro trace tail TRACE.jsonl [--records 10] [--kind query]
    python -m repro trace export TRACE.jsonl [--format chrome|flamegraph]
                                             [--output OUT]
    python -m repro top [--url http://127.0.0.1:8750 | --input M.json]
                        [--once] [--interval 2.0]
    python -m repro fig5 [--seconds 1.0] [--seed 0]
    python -m repro fig6 [--runs 8] [--seconds 0.5]
    python -m repro quickstart [--distance 2.0] [--message TEXT]
    python -m repro power
    python -m repro compare
    python -m repro throughput [--subframes 64] [--clock-khz 50]
    python -m repro interference [--rate 600]
    python -m repro pcap OUTPUT.pcap [--queries 3]
    python -m repro serve [--port 8750] [--slots 2] [--spill-dir DIR]

Each subcommand prints the same tables the corresponding benchmark
produces; see benchmarks/ for the asserted versions.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .analysis.reporting import Table
from .baselines.comparison import render_requirement_table
from .core.arq import ArqTransfer
from .core.config import WiTagConfig
from .core.session import MeasurementSession
from .core.throughput import analytic_throughput_bps, query_cycle
from .sim.scenario import los_scenario, nlos_scenario
from .tag.power import (
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    witag_budget,
)


def _write_metrics_payload(payload: dict, path: str) -> None:
    """Write an aggregated-telemetry payload as indented JSON."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote metrics to {path}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools

    from .obs import (
        Telemetry,
        TelemetryAggregate,
        TelemetrySpec,
        TraceSampler,
        TraceWriter,
        activate,
    )
    from .runner import (
        FaultSpec,
        RetryPolicy,
        SweepError,
        SweepSpec,
        WarmPool,
        WorkUnitError,
        run_sweep,
    )
    from .runner.workers import los_ber_point

    try:
        distances = [float(d) for d in args.distances.split(",") if d]
    except ValueError:
        print(f"bad --distances value: {args.distances!r}", file=sys.stderr)
        return 2
    if not distances:
        print("--distances must name at least one point", file=sys.stderr)
        return 2
    faults = None
    if args.inject_faults:
        try:
            faults = FaultSpec.parse(
                args.inject_faults, hang_s=args.hang_seconds
            )
        except ValueError as error:
            print(f"bad --inject-faults: {error}", file=sys.stderr)
            return 2
    retry = None
    if (
        args.retries is not None
        or args.timeout is not None
        or args.backoff is not None
    ):
        try:
            retry = RetryPolicy(
                max_attempts=(
                    args.retries if args.retries is not None else 3
                ),
                timeout_s=args.timeout,
                backoff_s=args.backoff if args.backoff is not None else 0.0,
            )
        except ValueError as error:
            print(f"bad retry options: {error}", file=sys.stderr)
            return 2
    # Tracing needs one live writer, so it forces the serial executor;
    # metrics-only runs stay parallel (snapshots merge across workers).
    live: Telemetry | None = None
    n_workers = args.workers
    telemetry_spec: TelemetrySpec | None = None
    if args.trace_out:
        if args.workers > 1:
            print(
                "--trace-out forces the serial executor (one trace "
                "writer); ignoring --workers",
                file=sys.stderr,
            )
            n_workers = 1
        try:
            live = Telemetry(
                metrics=bool(args.metrics_out),
                writer=TraceWriter(args.trace_out),
                sampler=TraceSampler(every_n=args.trace_every_n),
            )
        except (OSError, ValueError) as error:
            print(f"bad --trace-out: {error}", file=sys.stderr)
            return 2
    elif args.metrics_out:
        telemetry_spec = TelemetrySpec(metrics=True)
    pool = None
    try:
        spec = SweepSpec(
            axes={"distance_m": distances},
            seed=args.seed,
            chunk_size=args.chunk,
        )
        fn = functools.partial(
            los_ber_point,
            sim_seconds=args.seconds,
            kernel_tier=args.kernel_tier,
            warm=args.warm_workers > 0,
        )
        if args.warm_workers > 0:
            pool = WarmPool(args.warm_workers)
        run = functools.partial(
            run_sweep,
            fn,
            spec,
            n_workers=n_workers,
            retry=retry,
            faults=faults,
            checkpoint=args.checkpoint,
            resume=args.resume,
            transport=args.transport,
            pool=pool,
        )
        if live is not None:
            with activate(live):
                result = run(telemetry=None)
            live.close()
        else:
            result = run(telemetry=telemetry_spec)
    except ValueError as error:
        print(f"bad sweep options: {error}", file=sys.stderr)
        return 2
    except WorkUnitError as error:
        summary: dict[str, int] = {}
        for event in error.retries:
            summary[event.reason] = summary.get(event.reason, 0) + 1
        print(
            f"sweep failed: work unit {error.index} (chunk "
            f"{error.chunk_index}, parameters {error.parameters}) gave "
            f"up after {error.attempts} attempt(s): {error.cause}",
            file=sys.stderr,
        )
        if summary:
            print(
                "retry summary: "
                + ", ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(summary.items())
                ),
                file=sys.stderr,
            )
        if args.checkpoint:
            print(
                f"completed chunks are checkpointed in {args.checkpoint}; "
                f"re-run with --resume to keep them",
                file=sys.stderr,
            )
        return 1
    except SweepError as error:
        print(f"sweep failed: {error}", file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.close()
    print(
        result.table(
            f"LOS sweep: {args.seconds:g}s per point, seed {args.seed}, "
            f"{result.n_workers} worker(s) [{result.executor}]"
        ).render()
    )
    print(
        f"wall {result.wall_s:.2f}s, busy {result.busy_s:.2f}s across "
        f"{len(result.worker_timings)} worker(s), "
        f"chunk size {result.chunk_size}"
    )
    for timing in result.worker_timings:
        print(
            f"  worker {timing.worker}: {timing.n_units} unit(s) in "
            f"{timing.n_chunks} chunk(s), {timing.busy_s:.2f}s busy"
        )
    if result.retries:
        print(
            "fault tolerance: "
            + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(
                    result.retry_summary().items()
                )
            )
            + f" event(s); finished on the {result.executor} executor"
        )
    if args.checkpoint:
        print(
            f"checkpoint: {args.checkpoint} "
            f"({result.resumed_chunks} chunk(s) resumed)"
        )
    if args.metrics_out:
        if live is not None:
            aggregate = TelemetryAggregate.from_chunks(
                [live.chunk_snapshot()]
            )
        else:
            aggregate = result.telemetry
        _write_metrics_payload(aggregate.as_dict(), args.metrics_out)
    if live is not None:
        print(
            f"wrote trace ({live.writer.records_written} records) to "
            f"{args.trace_out}"
        )
    return 0


def _print_fleet_network_demo(args: argparse.Namespace) -> None:
    """Run and report the multi-AP warehouse scenario (not baselined).

    ``args.fleet_aps`` reader cells spread along a 30 m x 20 m floor,
    polling ``args.fleet_tags`` tags for ``args.fleet_rounds``
    event-driven rounds with mobility and nearest-AP selection — the
    docs' "warehouse scenario" walkthrough, runnable from the bench
    CLI.  Diagnostic output only; the gated number is the single-cell
    fleet-vs-scalar speedup.
    """
    import numpy as np

    from .sim.network import (
        FleetNetwork,
        RandomWalkMobility,
        ReaderCell,
        TrafficStation,
    )

    width, height = 30.0, 20.0
    n_aps = args.fleet_aps
    cells = [
        ReaderCell(
            f"ap{k}",
            ap_xy=(width * (k + 0.5) / n_aps, 0.0),
            stations=(TrafficStation(f"bg{k}"),),
        )
        for k in range(n_aps)
    ]
    rng = np.random.default_rng(
        np.random.SeedSequence(args.seed, spawn_key=(0xF100,))
    )
    positions = np.column_stack(
        [
            rng.uniform(0.0, width, args.fleet_tags),
            rng.uniform(1.0, height, args.fleet_tags),
        ]
    )
    network = FleetNetwork(
        cells,
        positions,
        seed=args.seed,
        mobility=RandomWalkMobility(
            bounds=(0.0, 1.0, width, height), seed=args.seed
        ),
    )
    data_rng = np.random.default_rng(
        np.random.SeedSequence(args.seed, spawn_key=(0xF101,))
    )
    for name in network.names:
        network.load_bits(
            name, [int(b) for b in data_rng.integers(0, 2, args.fleet_bits)]
        )
    rounds = network.run_rounds(args.fleet_rounds)
    table = Table(
        f"warehouse scenario: {args.fleet_tags} tags x {n_aps} APs x "
        f"{args.fleet_rounds} round(s), mobility + CSMA contention",
        ["AP", "rounds", "queries", "responded", "bits", "BER", "busy (s)"],
    )
    for k, cell in enumerate(cells):
        mine = [s for s in rounds if s.ap == cell.name]
        bits = sum(s.bits_sent for s in mine)
        errors = sum(s.bit_errors for s in mine)
        table.add_row(
            [
                cell.name,
                len(mine),
                sum(s.n_queries for s in mine),
                sum(s.n_responded for s in mine),
                bits,
                (errors / bits) if bits else 0.0,
                sum(s.duration_s for s in mine),
            ]
        )
    print(table.render())
    print(
        f"mobility ticks: {network.mobility_ticks}, handoffs: "
        f"{network.handoffs}, incrementally refreshed link rows: "
        f"{network.invalidated_rows}"
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    """Three-tier fast-path benchmark with stage timings."""
    import json

    from .bench import (
        TIERS,
        adaptive_bench,
        bench_payload,
        fleet_bench,
        record_bench_trajectory,
        three_tier_bench,
        tier4_bench,
        update_baseline,
    )

    if args.queries < 1:
        print("--queries must be >= 1", file=sys.stderr)
        return 2
    result = three_tier_bench(
        args.queries,
        distance_m=args.distance,
        seed=args.seed,
        repeats=args.repeats,
    )
    speedups = result["speedups"]
    table = Table(
        f"fast-path tiers: {args.queries} queries, "
        f"LOS tag@{args.distance:g}m, seed {args.seed}",
        ["path", "wall (s)", "queries/s", "BER"],
    )
    for label, _phy, _session in TIERS:
        tier = result["tiers"][label]
        table.add_row(
            [label, tier["wall_s"], tier["queries_per_s"], tier["ber"]]
        )
    print(table.render())
    print(
        f"speedup vectorized/scalar: "
        f"{speedups['vectorized_vs_scalar']:.2f}x, "
        f"session-batch/scalar: {speedups['session_vs_scalar']:.2f}x, "
        f"session-batch/vectorized: "
        f"{speedups['session_vs_vectorized']:.2f}x"
    )
    stages = Table(
        "session-batch stage timings (cumulative seconds)",
        ["group", "stage", "seconds", "units", "us/unit"],
    )
    batch_session = result["tiers"]["session-batch"]["session"]
    for group, counters in (
        ("system", batch_session.system.counters),
        ("error_model", batch_session.system.error_model.counters),
    ):
        for stage, seconds, calls, per_call_us in (
            counters.as_rows_with_rate()
        ):
            stages.add_row([group, stage, seconds, calls, per_call_us])
    print(stages.render())
    t4 = None
    if args.tier4:
        t4 = tier4_bench(
            args.tier4_jobs,
            args.tier4_sessions,
            args.tier4_queries,
            seed=args.seed,
            repeats=args.repeats,
        )
        t4_table = Table(
            f"tier-4 fast path: {t4['jobs']} jobs x {t4['sessions']} "
            f"sessions x {t4['queries']} queries, "
            f"{t4['n_workers']} warm worker(s)",
            ["mode", "wall (s)", "jobs/s", "sessions/s", "transport"],
        )
        for mode in ("session-batch", "tier4"):
            leg = t4["legs"][mode]
            t4_table.add_row(
                [
                    mode,
                    leg["wall_s"],
                    leg["jobs_per_s"],
                    leg["sessions_per_s"],
                    leg["transport"],
                ]
            )
        print(t4_table.render())
        print(
            f"speedup tier4/session-batch: "
            f"{t4['speedup_tier4_vs_session_batch']:.2f}x "
            f"(per-job digests identical: {t4['identical']})"
        )
    fl = None
    if args.fleet:
        fl = fleet_bench(
            args.fleet_tags,
            args.fleet_rounds,
            seed=args.seed,
            bits_per_tag=args.fleet_bits,
            repeats=args.repeats,
        )
        fl_table = Table(
            f"fleet engine: {fl['n_tags']} tags x {fl['rounds']} "
            f"round(s), {fl['bits_per_tag']} bits/tag",
            ["mode", "wall (s)", "queries/s"],
        )
        for mode in ("scalar", "fleet"):
            leg = fl["legs"][mode]
            fl_table.add_row([mode, leg["wall_s"], leg["queries_per_s"]])
        print(fl_table.render())
        print(
            f"speedup fleet/scalar: "
            f"{fl['speedup_fleet_vs_scalar']:.2f}x "
            f"(equivalence gate on {fl['equivalence_tags']} tags, "
            f"exact coding: {'passed' if fl['identical'] else 'FAILED'})"
        )
        if args.fleet_aps > 0:
            _print_fleet_network_demo(args)
    ad = None
    if args.adaptive:
        ad = adaptive_bench(
            args.adaptive_units,
            args.adaptive_rounds,
            args.adaptive_windows,
            seed=args.seed,
        )
        ad_table = Table(
            f"adaptive FEC + scheduling: {ad['units']} deployment(s) x "
            f"{ad['rounds']} rounds x {ad['windows_per_round']} windows, "
            "bursty ON/OFF traffic",
            [
                "scheme",
                "delivered bits",
                "goodput (bps)",
                "energy/bit (uJ)",
            ],
        )
        for scheme in ("static", "adaptive"):
            leg = ad["legs"][scheme]
            ad_table.add_row(
                [
                    scheme,
                    leg["delivered_bits"],
                    leg["mean_goodput_bps"],
                    leg["mean_energy_per_bit_uj"],
                ]
            )
        print(ad_table.render())
        print(
            f"goodput adaptive/static: "
            f"{ad['goodput_ratio_adaptive_vs_static']:.2f}x, "
            f"energy-per-bit static/adaptive: "
            f"{ad['energy_ratio_static_vs_adaptive']:.2f}x "
            f"(adaptive wins {ad['adaptive_wins']}/{ad['units']} "
            f"deployments; tier equivalence gate: "
            f"{'passed' if ad['identical'] else 'FAILED'})"
        )
    payload = bench_payload(result, tier4=t4, fleet=fl, adaptive=ad)
    entry = record_bench_trajectory(args.trajectory, payload)
    print(f"recorded trajectory entry ({entry['recorded_at']}) in "
          f"{args.trajectory}")
    if args.update_baseline:
        tiers = payload["tiers"]
        update_baseline(
            "session_batch",
            {
                "recorded": entry["recorded_at"],
                "queries": args.queries,
                "distance_m": args.distance,
                "seed": args.seed,
                "scalar_queries_per_s": tiers["scalar"]["queries_per_s"],
                "vectorized_queries_per_s": tiers["vectorized"][
                    "queries_per_s"
                ],
                "session_batch_queries_per_s": tiers["session-batch"][
                    "queries_per_s"
                ],
                "speedup_session_vs_vectorized": speedups[
                    "session_vs_vectorized"
                ],
                "note": (
                    "Reference machine numbers from `repro bench "
                    "--update-baseline`. benchmarks/test_session_batch.py "
                    "asserts session-batch >= max(2.0, 0.8 * "
                    "speedup_session_vs_vectorized) over the vectorized "
                    "tier; absolute queries/s are trajectory data only."
                ),
            },
            args.baselines,
        )
        print(f"updated session_batch baseline in {args.baselines}")
        if t4 is not None:
            update_baseline(
                "tier4",
                {
                    "recorded": entry["recorded_at"],
                    "jobs": t4["jobs"],
                    "sessions": t4["sessions"],
                    "queries": t4["queries"],
                    "seed": args.seed,
                    "n_workers": t4["n_workers"],
                    "speedup_tier4_vs_session_batch": t4[
                        "speedup_tier4_vs_session_batch"
                    ],
                    "note": (
                        "Reference machine numbers from `repro bench "
                        "--tier4 --update-baseline`. "
                        "benchmarks/test_tier4.py asserts tier-4 >= "
                        "max(2.5, 0.8 * speedup_tier4_vs_session_batch) "
                        "over the session-batch reference; absolute "
                        "rates are trajectory data only."
                    ),
                },
                args.baselines,
            )
            print(f"updated tier4 baseline in {args.baselines}")
        if fl is not None:
            update_baseline(
                "fleet",
                {
                    "recorded": entry["recorded_at"],
                    "n_tags": fl["n_tags"],
                    "rounds": fl["rounds"],
                    "bits_per_tag": fl["bits_per_tag"],
                    "seed": args.seed,
                    "scalar_queries_per_s": fl["legs"]["scalar"][
                        "queries_per_s"
                    ],
                    "fleet_queries_per_s": fl["legs"]["fleet"][
                        "queries_per_s"
                    ],
                    "speedup_fleet_vs_scalar": fl[
                        "speedup_fleet_vs_scalar"
                    ],
                    "note": (
                        "Reference machine numbers from `repro bench "
                        "--fleet --update-baseline`. "
                        "benchmarks/test_fleet.py asserts fleet >= "
                        "max(5.0, 0.8 * speedup_fleet_vs_scalar) over "
                        "the scalar MultiTagCell reference after the "
                        "bit-identity equivalence gate; absolute rates "
                        "are trajectory data only."
                    ),
                },
                args.baselines,
            )
            print(f"updated fleet baseline in {args.baselines}")
        if ad is not None:
            update_baseline(
                "adaptive",
                {
                    "recorded": entry["recorded_at"],
                    "units": ad["units"],
                    "rounds": ad["rounds"],
                    "windows_per_round": ad["windows_per_round"],
                    "seed": args.seed,
                    "static_goodput_bps": ad["legs"]["static"][
                        "mean_goodput_bps"
                    ],
                    "adaptive_goodput_bps": ad["legs"]["adaptive"][
                        "mean_goodput_bps"
                    ],
                    "goodput_ratio_adaptive_vs_static": ad[
                        "goodput_ratio_adaptive_vs_static"
                    ],
                    "energy_ratio_static_vs_adaptive": ad[
                        "energy_ratio_static_vs_adaptive"
                    ],
                    "note": (
                        "Reference numbers from `repro bench --adaptive "
                        "--update-baseline`. Quality ratio, not a timing: "
                        "adaptive goodput over static-paper goodput under "
                        "bursty traffic, after the execution-tier "
                        "equivalence gate. `repro bench check` fails when "
                        "the measured ratio drops below threshold x this "
                        "value; the deterministic seeds make the measured "
                        "ratio reproducible."
                    ),
                },
                args.baselines,
            )
            print(f"updated adaptive baseline in {args.baselines}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    if args.metrics_out or args.trace_out:
        # One extra instrumented session-batch run; the bench numbers
        # above stay un-instrumented so baselines are comparable.
        from .bench import timed_session
        from .obs import (
            Telemetry,
            TelemetryAggregate,
            TraceSampler,
            TraceWriter,
        )

        try:
            telemetry = Telemetry(
                metrics=bool(args.metrics_out),
                writer=(
                    TraceWriter(args.trace_out) if args.trace_out else None
                ),
                sampler=TraceSampler(every_n=args.trace_every_n),
            )
        except (OSError, ValueError) as error:
            print(f"bad telemetry options: {error}", file=sys.stderr)
            return 2
        capture = timed_session(
            args.queries,
            distance_m=args.distance,
            seed=args.seed,
            telemetry=telemetry,
        )
        telemetry.close()
        print(
            f"telemetry capture run: {capture['queries_per_s']:.0f} "
            "queries/s instrumented"
        )
        if args.metrics_out:
            aggregate = TelemetryAggregate.from_chunks(
                [telemetry.chunk_snapshot()]
            )
            _write_metrics_payload(aggregate.as_dict(), args.metrics_out)
        if args.trace_out:
            print(
                f"wrote trace ({telemetry.writer.records_written} "
                f"records) to {args.trace_out}"
            )
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """The regression watchdog: latest trajectory vs pinned baselines."""
    from .bench import bench_check

    try:
        report = bench_check(
            args.trajectory, args.baselines, threshold=args.threshold
        )
    except ValueError as error:
        print(f"bad bench check options: {error}", file=sys.stderr)
        return 2
    table = Table(
        f"bench regression check: floor = {report['threshold']:g} x "
        f"baseline ({args.trajectory})",
        ["gate", "measured", "baseline", "floor", "recorded", "status"],
    )
    for check in report["checks"]:
        table.add_row(
            [
                check["name"],
                check["measured"],
                check["baseline"],
                check["floor"],
                check["recorded_at"] or "-",
                "ok" if check["ok"] else "REGRESSION",
            ]
        )
    print(table.render())
    for item in report["skipped"]:
        print(f"skipped {item['name']}: {item['reason']}")
    if not report["checks"]:
        print("no gates checked (nothing measured or pinned yet)")
        return 0
    if not report["ok"]:
        failed = [c["name"] for c in report["checks"] if not c["ok"]]
        print(
            f"REGRESSION: {', '.join(failed)} below "
            f"{report['threshold']:g} x baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _metrics_table(snapshot: dict, title: str) -> Table:
    """Render a metrics snapshot as a one-row-per-series table."""
    table = Table(title, ["metric", "labels", "type", "value"])
    for name, family in snapshot["metrics"].items():
        for entry in family["series"]:
            labels = ",".join(
                f"{key}={value}"
                for key, value in entry["labels"].items()
            )
            if family["type"] == "histogram":
                value = (
                    f"count={int(entry['count'])} "
                    f"sum={entry['sum']:.6g}"
                )
            else:
                value = entry["value"]
            table.add_row([name, labels or "-", family["type"], value])
    return table


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Collect (or re-render) an aggregated metrics payload."""
    import json

    from .obs import render_prometheus

    if args.input:
        payloads = []
        for path in args.input:
            try:
                with open(path, encoding="utf-8") as handle:
                    payloads.append(json.load(handle))
            except (OSError, ValueError) as error:
                print(f"bad --input {path}: {error}", file=sys.stderr)
                return 2
        if len(payloads) == 1:
            payload = payloads[0]
        else:
            # Several payloads merge additively — the same label-series
            # algebra workers' chunk snapshots already use — so shards
            # of one experiment re-render as a single aggregate.
            from .obs import merge_metric_snapshots

            snapshots = []
            transports = []
            for path, item in zip(args.input, payloads):
                snap = (
                    item.get("metrics")
                    if isinstance(item, dict)
                    else None
                )
                if not (isinstance(snap, dict) and "schema" in snap):
                    print(
                        f"{path}: holds no metrics snapshot (collected "
                        "with metrics disabled?)",
                        file=sys.stderr,
                    )
                    return 2
                snapshots.append(snap)
                transport = item.get("transport")
                if isinstance(transport, dict) and "schema" in transport:
                    transports.append(transport)
            try:
                payload = {
                    "metrics": merge_metric_snapshots(snapshots),
                    "chunks": sum(
                        int(item.get("chunks") or 0) for item in payloads
                    ),
                    "version": payloads[0].get("version"),
                }
                if transports:
                    payload["transport"] = merge_metric_snapshots(
                        transports
                    )
            except ValueError as error:
                print(
                    f"cannot merge --input payloads: {error}",
                    file=sys.stderr,
                )
                return 2
    else:
        from .runner import SessionSpec, TelemetrySpec, run_sessions

        try:
            result = run_sessions(
                SessionSpec(distance_m=args.distance),
                args.sessions,
                queries=args.queries,
                seed=args.seed,
                n_workers=args.workers,
                chunk_size=args.chunk,
                telemetry=TelemetrySpec(metrics=True),
            )
        except ValueError as error:
            print(f"bad metrics options: {error}", file=sys.stderr)
            return 2
        payload = result.telemetry.as_dict()
    snapshot = payload.get("metrics")
    if not isinstance(snapshot, dict) or "schema" not in snapshot:
        print(
            "payload holds no metrics snapshot (collected with metrics "
            "disabled?)",
            file=sys.stderr,
        )
        return 2
    # Chunk-transport metrics (payload bytes / encode times) ride in a
    # separate operational snapshot so they never perturb the
    # deterministic physics aggregate; fold them into the human-facing
    # renderings here.
    transport = payload.get("transport")
    if not (isinstance(transport, dict) and "schema" in transport):
        transport = None
    if args.format == "json":
        text = json.dumps(payload, indent=2)
    elif args.format == "prometheus":
        from .obs import merge_metric_snapshots

        try:
            exposed = (
                merge_metric_snapshots([snapshot, transport])
                if transport is not None
                else snapshot
            )
            text = render_prometheus(exposed)
        except ValueError as error:
            print(f"bad snapshot: {error}", file=sys.stderr)
            return 2
    else:
        table = _metrics_table(
            snapshot,
            f"aggregated metrics ({payload.get('chunks', '?')} chunk(s), "
            f"repro {payload.get('version', '?')})",
        )
        text = table.render()
        if transport is not None:
            text += "\n\n" + _metrics_table(
                transport, "chunk transport (coordinator-side)"
            ).render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """Run one traced LOS session, writing a JSONL trace file."""
    from .obs import (
        Telemetry,
        TelemetryAggregate,
        TraceSampler,
        TraceWriter,
    )

    if args.queries < 1:
        print("--queries must be >= 1", file=sys.stderr)
        return 2
    try:
        telemetry = Telemetry(
            metrics=bool(args.metrics_out),
            writer=TraceWriter(args.out),
            sampler=TraceSampler(
                every_n=args.every_n, head=args.head, tail=args.tail
            ),
        )
    except (OSError, ValueError) as error:
        print(f"bad trace options: {error}", file=sys.stderr)
        return 2
    system, info = los_scenario(args.distance, seed=args.seed)
    telemetry.attach(system)
    session = MeasurementSession(
        system, rng=np.random.default_rng(args.seed + 1)
    )
    stats = session.run_queries(args.queries)
    telemetry.close()
    print(
        f"{info.name}: {stats.queries} queries, BER {stats.ber:.4g}, "
        f"{telemetry.writer.records_written} trace record(s) -> {args.out}"
    )
    if args.metrics_out:
        aggregate = TelemetryAggregate.from_chunks(
            [telemetry.chunk_snapshot()]
        )
        _write_metrics_payload(aggregate.as_dict(), args.metrics_out)
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    """Validate and aggregate one or more JSONL trace files."""
    import json

    from .obs import summarize_trace

    try:
        summary = summarize_trace(*args.paths)
    except (OSError, ValueError) as error:
        print(f"bad trace: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    queries = summary["queries"]
    table = Table(
        f"trace summary: {', '.join(args.paths)}",
        ["field", "value"],
    )
    for kind in ("header", "query", "session", "retry"):
        table.add_row(
            [f"{kind} records", summary["records"].get(kind, 0)]
        )
    table.add_row(["producer versions", ", ".join(summary["versions"])])
    for reason, count in sorted(summary.get("retries", {}).items()):
        table.add_row([f"retries.{reason}", count])
    for key in (
        "count",
        "bits_sent",
        "bit_errors",
        "ber",
        "subframes",
        "subframes_failed",
        "missed_triggers",
    ):
        table.add_row([f"queries.{key}", queries[key]])
    print(table.render())
    for i, session in enumerate(summary["sessions"]):
        print(
            f"  session {i}: {session['queries']} queries, "
            f"BER {session['ber']:.4g}, "
            f"{session['bits_sent']} bits / {session['bit_errors']} "
            f"errors, {session['missed_triggers']} missed trigger(s)"
        )
    return 0


def _cmd_trace_tail(args: argparse.Namespace) -> int:
    """Print the last N records of a trace as JSON lines."""
    import json
    from collections import deque

    from .obs import read_trace

    try:
        stream = read_trace(*args.paths, validate=not args.no_validate)
        if args.kind:
            stream = (
                record
                for record in stream
                if record.get("kind") == args.kind
            )
        records = deque(stream, maxlen=args.records)
    except (OSError, ValueError) as error:
        print(f"bad trace: {error}", file=sys.stderr)
        return 2
    for record in records:
        print(json.dumps(record, separators=(",", ":")))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Convert a trace to Chrome tracing JSON or a flamegraph."""
    import json

    from .obs import chrome_trace, flamegraph_lines, read_trace
    from .obs.export import merge_stage_timings

    try:
        records = list(
            read_trace(*args.paths, validate=not args.no_validate)
        )
    except (OSError, ValueError) as error:
        print(f"bad trace: {error}", file=sys.stderr)
        return 2
    if args.format == "chrome":
        text = json.dumps(chrome_trace(records), indent=2)
    else:
        lines = flamegraph_lines(merge_stage_timings(records))
        if not lines:
            print(
                "trace holds no session stage timings to export "
                "(flamegraphs need session records)",
                file=sys.stderr,
            )
            return 2
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Terminal status view of a running serve (or a metrics file)."""
    from .obs.top import run_top

    try:
        return run_top(
            url=None if args.input else args.url,
            input_path=args.input,
            once=args.once,
            interval_s=args.interval,
        )
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError) as error:
        print(f"repro top: {error}", file=sys.stderr)
        return 2


def _cmd_fig5(args: argparse.Namespace) -> int:
    table = Table(
        f"Figure 5 sweep ({args.seconds:g}s per point, seed {args.seed})",
        ["tag distance (m)", "BER", "throughput (Kbps)"],
    )
    for d in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
        system, _ = los_scenario(d, seed=args.seed + int(d))
        stats = MeasurementSession(
            system, rng=np.random.default_rng(args.seed + int(d))
        ).run_for(args.seconds)
        table.add_row([d, stats.ber, stats.throughput_bps / 1e3])
    print(table.render())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    table = Table(
        f"Figure 6 NLOS runs ({args.runs} x {args.seconds:g}s)",
        ["location", "median BER", "p90 BER"],
    )
    for location in ("A", "B"):
        bers = []
        for run in range(args.runs):
            system, _ = nlos_scenario(location, seed=args.seed + run)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(run)
            ).run_for(args.seconds)
            bers.append(stats.ber)
        table.add_row(
            [
                location,
                float(np.median(bers)),
                float(np.percentile(bers, 90)),
            ]
        )
    print(table.render())
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    system, info = los_scenario(args.distance, seed=args.seed)
    print(
        f"{info.name}: link SNR {info.link_snr_db:.1f} dB, "
        f"MCS {info.mcs_index}, tag clock {info.tag_clock_hz / 1e3:g} kHz"
    )
    report = ArqTransfer(system).send(args.message.encode())
    if report.delivered:
        print(
            f"delivered {args.message!r} in {report.queries} queries "
            f"({report.attempts} attempt(s), "
            f"{report.effective_rate_bps / 1e3:.1f} Kbps effective)"
        )
        return 0
    print(f"transfer failed after {report.attempts} attempts")
    return 1


def _cmd_power(_args: argparse.Namespace) -> int:
    table = Table(
        "tag power budgets (paper Section 7)",
        ["system", "total (uW)", "battery-free feasible"],
    )
    for budget in (
        witag_budget(),
        channel_shift_ring_budget(),
        channel_shift_precision_budget(),
    ):
        table.add_row(
            [budget.name, budget.total_uw, budget.battery_free_feasible]
        )
    print(table.render())
    return 0


def _cmd_compare(_args: argparse.Namespace) -> int:
    print(render_requirement_table())
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    config = WiTagConfig(
        n_subframes=args.subframes, tag_clock_hz=args.clock_khz * 1e3
    )
    cycle = query_cycle(config)
    print(
        f"cycle: access {cycle.access_s * 1e6:.0f} us + query "
        f"{cycle.query_s * 1e6:.0f} us + SIFS {cycle.sifs_s * 1e6:.0f} us "
        f"+ BA {cycle.block_ack_s * 1e6:.0f} us = {cycle.total_s * 1e3:.2f} ms"
    )
    print(
        f"tag throughput: {analytic_throughput_bps(config) / 1e3:.1f} Kbps "
        f"({config.bits_per_query} bits / cycle)"
    )
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    from .baselines.interference import (
        VictimNetwork,
        channel_shift_emitter,
        collision_probability,
        victim_goodput_fraction,
        witag_emitter,
    )

    victim = VictimNetwork()
    shift = channel_shift_emitter(queries_per_second=args.rate)
    table = Table(
        f"secondary-channel victim (1.5 ms frames) at {args.rate:g} "
        "excitations/s",
        ["emitter", "P(frame collision)", "victim goodput"],
    )
    table.add_row(
        [
            "channel-shift tag",
            collision_probability(victim, shift),
            victim_goodput_fraction(victim, shift),
        ]
    )
    table.add_row(
        [
            "WiTAG",
            collision_probability(victim, witag_emitter()),
            victim_goodput_fraction(victim, witag_emitter()),
        ]
    )
    print(table.render())
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    from .sim.pcap import PcapWriter

    system, info = los_scenario(args.distance, seed=args.seed)
    system.load_tag_bits(
        [int(b) for b in np.random.default_rng(args.seed).integers(
            0, 2, 62 * args.queries
        )]
    )
    writer = PcapWriter()
    clock = 0.0
    for _ in range(args.queries):
        result = system.run_query()
        clock = writer.add_query_result(clock, result)
    size = writer.write(args.output)
    print(
        f"wrote {writer.n_frames} frames ({size} bytes) from "
        f"{args.queries} query cycles to {args.output}"
    )
    print("open in Wireshark: the block-ACK bitmaps carry the tag's bits")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve import ServeConfig, SweepService

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            slots=args.slots,
            spill_dir=args.spill_dir,
            max_jobs=args.max_jobs,
            transport=args.transport,
            warm_workers=args.warm_workers,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.print_config:
        print(json.dumps(config.to_json(), sort_keys=True))
        return 0
    service = SweepService(config)
    spill = config.spill_dir or "(ephemeral: no resume across restarts)"
    print(
        f"repro serve: {config.host}:{config.port} "
        f"slots={config.slots} spill={spill} "
        f"transport={config.transport} warm_workers={config.warm_workers}",
        file=sys.stderr,
    )
    try:
        service.run_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiTAG (HotNets 2018) reproduction experiments",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="parallel LOS distance sweep (repro.runner engine)"
    )
    sweep.add_argument(
        "--distances",
        type=str,
        default="1,2,3,4,5,6,7",
        help="comma-separated tag distances from the client (m)",
    )
    sweep.add_argument("--seconds", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument(
        "--chunk", type=int, default=None, help="work units per task"
    )
    sweep.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the aggregated telemetry payload (JSON) here",
    )
    sweep.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="write a JSONL query/session trace here (forces serial)",
    )
    sweep.add_argument(
        "--trace-every-n",
        type=int,
        default=1,
        help="keep every Nth query record in the trace",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="enable fault tolerance: attempts per chunk (RetryPolicy "
        "max_attempts)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-chunk deadline in seconds (enables fault tolerance)",
    )
    sweep.add_argument(
        "--backoff",
        type=float,
        default=None,
        help="base backoff sleep in seconds between chunk retries "
        "(enables fault tolerance)",
    )
    sweep.add_argument(
        "--inject-faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash:0,3;corrupt:2' "
        "(kinds: crash, hang, corrupt, exit; indices are work units)",
    )
    sweep.add_argument(
        "--hang-seconds",
        type=float,
        default=0.05,
        help="how long an injected hang sleeps",
    )
    sweep.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="spill completed chunks to this JSONL file",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint, skipping completed chunks "
        "(without this flag an existing checkpoint is overwritten)",
    )
    sweep.add_argument(
        "--transport",
        choices=("auto", "pickle", "shm"),
        default="auto",
        help="chunk payload codec: shared-memory segments (shm) or "
        "pickle-over-pipe; auto picks shm when available "
        "(bit-identical results either way)",
    )
    sweep.add_argument(
        "--warm-workers",
        type=int,
        default=0,
        metavar="N",
        help="run on a persistent warm worker pool of N processes "
        "(tier-4 fast path; 0 = classic per-run executors)",
    )
    sweep.add_argument(
        "--kernel-tier",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="decode kernel implementation; numba requires the "
        "optional fast extra and falls back bitwise-verified",
    )
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench",
        help="three-tier benchmark: scalar vs vectorized vs session-batch",
    )
    bench.add_argument("--queries", type=int, default=300)
    bench.add_argument("--distance", type=float, default=4.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N wall clock per tier (robust to machine noise)",
    )
    bench.add_argument(
        "--json", type=str, default=None, help="write results to this file"
    )
    bench.add_argument(
        "--tier4",
        action="store_true",
        help="also benchmark the tier-4 fast path (warm pool + shm "
        "transport) against the tier-3 parallel reference",
    )
    bench.add_argument(
        "--tier4-jobs",
        type=int,
        default=8,
        help="serve-style identical jobs per tier-4 leg",
    )
    bench.add_argument(
        "--tier4-sessions", type=int, default=4, help="sessions per job"
    )
    bench.add_argument(
        "--tier4-queries", type=int, default=16, help="queries per session"
    )
    bench.add_argument(
        "--fleet",
        action="store_true",
        help="also benchmark the struct-of-arrays fleet engine against "
        "the scalar MultiTagCell reference (equivalence-gated)",
    )
    bench.add_argument(
        "--fleet-tags",
        type=int,
        default=2000,
        help="fleet size for the warehouse benchmark",
    )
    bench.add_argument(
        "--fleet-rounds",
        type=int,
        default=1,
        help="addressed polling rounds per fleet leg",
    )
    bench.add_argument(
        "--fleet-bits",
        type=int,
        default=64,
        help="queued data bits per tag per round",
    )
    bench.add_argument(
        "--fleet-aps",
        type=int,
        default=0,
        help="with --fleet, also run the multi-AP warehouse scenario "
        "with this many reader cells (diagnostic, not baselined)",
    )
    bench.add_argument(
        "--adaptive",
        action="store_true",
        help="also benchmark adaptive scheduling + FEC against the "
        "static-paper scheme under bursty traffic (equivalence-gated)",
    )
    bench.add_argument(
        "--adaptive-units",
        type=int,
        default=3,
        help="independent deployments per adaptive leg",
    )
    bench.add_argument(
        "--adaptive-rounds",
        type=int,
        default=6,
        help="feedback rounds per adaptive unit",
    )
    bench.add_argument(
        "--adaptive-windows",
        type=int,
        default=100,
        help="transmission-opportunity windows per feedback round",
    )
    bench.add_argument(
        "--trajectory",
        type=str,
        default="benchmarks/BENCH_session_batch.json",
        help="JSON list appended to on every run (timestamped)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the session_batch entry of the baselines file "
        "with this run's numbers",
    )
    bench.add_argument(
        "--baselines",
        type=str,
        default="benchmarks/baselines.json",
        help="baselines file updated by --update-baseline",
    )
    bench.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="run one extra instrumented session and write its "
        "aggregated metrics (JSON) here",
    )
    bench.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="run one extra instrumented session and write its JSONL "
        "trace here",
    )
    bench.add_argument(
        "--trace-every-n",
        type=int,
        default=100,
        help="keep every Nth query record in the bench trace",
    )
    bench.set_defaults(func=_cmd_bench)
    bench_sub = bench.add_subparsers(
        dest="bench_command", metavar="{check}"
    )
    bench_check_p = bench_sub.add_parser(
        "check",
        help="regression watchdog: latest trajectory entries vs "
        "pinned baselines (exit 1 on regression)",
    )
    bench_check_p.add_argument(
        "--trajectory",
        type=str,
        default="benchmarks/BENCH_session_batch.json",
        help="trajectory file written by `repro bench`",
    )
    bench_check_p.add_argument(
        "--baselines",
        type=str,
        default="benchmarks/baselines.json",
        help="pinned baselines file",
    )
    bench_check_p.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="failure floor as a fraction of the baseline speedup",
    )
    bench_check_p.set_defaults(func=_cmd_bench_check)

    metrics = sub.add_parser(
        "metrics",
        help="collect or re-render aggregated telemetry metrics",
    )
    metrics.add_argument("--sessions", type=int, default=4)
    metrics.add_argument("--queries", type=int, default=50)
    metrics.add_argument("--distance", type=float, default=4.0)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--workers", type=int, default=1)
    metrics.add_argument(
        "--chunk",
        type=int,
        default=1,
        help="sessions per chunk; the default of 1 makes serial and "
        "parallel runs aggregate identically",
    )
    metrics.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
    )
    metrics.add_argument(
        "--input",
        type=str,
        action="append",
        default=None,
        metavar="PAYLOAD",
        help="re-render an existing payload (from --metrics-out) "
        "instead of running sessions; repeat to merge several "
        "payloads additively",
    )
    metrics.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the rendered output here instead of stdout",
    )
    metrics.set_defaults(func=_cmd_metrics)

    trace = sub.add_parser(
        "trace", help="query/session JSONL trace tooling"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_run = trace_sub.add_parser(
        "run", help="run one traced LOS session"
    )
    trace_run.add_argument("out", type=str, help="JSONL output path")
    trace_run.add_argument("--queries", type=int, default=200)
    trace_run.add_argument("--distance", type=float, default=4.0)
    trace_run.add_argument("--seed", type=int, default=0)
    trace_run.add_argument(
        "--every-n",
        type=int,
        default=1,
        help="keep every Nth query record",
    )
    trace_run.add_argument(
        "--head",
        type=int,
        default=0,
        help="always keep the first N query records",
    )
    trace_run.add_argument(
        "--tail",
        type=int,
        default=0,
        help="also keep the last N dropped query records per session",
    )
    trace_run.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="also write the run's aggregated metrics (JSON) here",
    )
    trace_run.set_defaults(func=_cmd_trace_run)
    trace_summary = trace_sub.add_parser(
        "summary", help="validate and aggregate trace files"
    )
    trace_summary.add_argument("paths", nargs="+", type=str)
    trace_summary.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    trace_summary.set_defaults(func=_cmd_trace_summary)
    trace_tail = trace_sub.add_parser(
        "tail", help="print the last records of a trace"
    )
    trace_tail.add_argument("paths", nargs="+", type=str)
    trace_tail.add_argument("--records", type=int, default=10)
    trace_tail.add_argument(
        "--kind",
        choices=("header", "query", "session", "retry"),
        default=None,
        help="only show records of this kind",
    )
    trace_tail.add_argument(
        "--no-validate",
        action="store_true",
        help="skip per-record schema validation",
    )
    trace_tail.set_defaults(func=_cmd_trace_tail)
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace to Chrome tracing JSON or a "
        "collapsed-stack flamegraph",
    )
    trace_export.add_argument("paths", nargs="+", type=str)
    trace_export.add_argument(
        "--format",
        choices=("chrome", "flamegraph"),
        default="chrome",
        help="chrome: trace_event JSON for chrome://tracing / "
        "Perfetto; flamegraph: collapsed stacks for flamegraph.pl "
        "/ speedscope",
    )
    trace_export.add_argument(
        "--output",
        "-o",
        type=str,
        default=None,
        help="write here instead of stdout",
    )
    trace_export.add_argument(
        "--no-validate",
        action="store_true",
        help="skip per-record schema validation",
    )
    trace_export.set_defaults(func=_cmd_trace_export)

    fig5 = sub.add_parser("fig5", help="BER/throughput vs tag position")
    fig5.add_argument("--seconds", type=float, default=1.0)
    fig5.add_argument("--seed", type=int, default=0)
    fig5.set_defaults(func=_cmd_fig5)

    fig6 = sub.add_parser("fig6", help="NLOS BER distribution")
    fig6.add_argument("--runs", type=int, default=8)
    fig6.add_argument("--seconds", type=float, default=0.5)
    fig6.add_argument("--seed", type=int, default=0)
    fig6.set_defaults(func=_cmd_fig6)

    quick = sub.add_parser("quickstart", help="send one tag message")
    quick.add_argument("--distance", type=float, default=2.0)
    quick.add_argument("--message", type=str, default="hello-witag")
    quick.add_argument("--seed", type=int, default=7)
    quick.set_defaults(func=_cmd_quickstart)

    power = sub.add_parser("power", help="tag power budgets")
    power.set_defaults(func=_cmd_power)

    compare = sub.add_parser("compare", help="system requirements matrix")
    compare.set_defaults(func=_cmd_compare)

    throughput = sub.add_parser("throughput", help="analytic rate model")
    throughput.add_argument("--subframes", type=int, default=64)
    throughput.add_argument("--clock-khz", type=float, default=50.0)
    throughput.set_defaults(func=_cmd_throughput)

    interference = sub.add_parser(
        "interference", help="secondary-channel interference comparison"
    )
    interference.add_argument("--rate", type=float, default=600.0)
    interference.set_defaults(func=_cmd_interference)

    pcap = sub.add_parser("pcap", help="capture query exchanges to pcap")
    pcap.add_argument("output", type=str)
    pcap.add_argument("--queries", type=int, default=3)
    pcap.add_argument("--distance", type=float, default=2.0)
    pcap.add_argument("--seed", type=int, default=0)
    pcap.set_defaults(func=_cmd_pcap)

    serve = sub.add_parser(
        "serve",
        help="run the async sweep job service (HTTP + SSE)",
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8750, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--slots", type=int, default=2, help="concurrent job slots"
    )
    serve.add_argument(
        "--spill-dir",
        type=str,
        default=None,
        help="directory for job state + engine checkpoints "
        "(enables restart resume)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=1024,
        help="cap on active (non-terminal) jobs",
    )
    serve.add_argument(
        "--transport",
        choices=("auto", "pickle", "shm"),
        default="auto",
        help="chunk payload codec for job execution (bit-identical "
        "results either way)",
    )
    serve.add_argument(
        "--warm-workers",
        type=int,
        default=0,
        metavar="N",
        help="persistent warm worker pool size per slot (tier-4 fast "
        "path; 0 = classic per-job executors)",
    )
    serve.add_argument(
        "--print-config",
        action="store_true",
        help="print the resolved config as JSON and exit",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="terminal status view of a running repro serve "
        "(or a metrics JSON file)",
    )
    top.add_argument(
        "--url",
        type=str,
        default="http://127.0.0.1:8750",
        help="base URL of the serve instance to poll",
    )
    top.add_argument(
        "--input",
        type=str,
        default=None,
        metavar="PAYLOAD",
        help="render a metrics JSON file instead of polling a server "
        "(implies --once)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top.set_defaults(func=_cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
