"""Command-line interface: run WiTAG experiments without writing code.

Usage::

    python -m repro sweep [--distances 1,2,...] [--workers 4] [--seed 0]
    python -m repro bench [--queries 300] [--distance 4.0] [--json OUT.json]
                          [--update-baseline] [--trajectory PATH.json]
    python -m repro fig5 [--seconds 1.0] [--seed 0]
    python -m repro fig6 [--runs 8] [--seconds 0.5]
    python -m repro quickstart [--distance 2.0] [--message TEXT]
    python -m repro power
    python -m repro compare
    python -m repro throughput [--subframes 64] [--clock-khz 50]
    python -m repro interference [--rate 600]
    python -m repro pcap OUTPUT.pcap [--queries 3]

Each subcommand prints the same tables the corresponding benchmark
produces; see benchmarks/ for the asserted versions.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.reporting import Table
from .baselines.comparison import render_requirement_table
from .core.arq import ArqTransfer
from .core.config import WiTagConfig
from .core.session import MeasurementSession
from .core.throughput import analytic_throughput_bps, query_cycle
from .sim.scenario import los_scenario, nlos_scenario
from .tag.power import (
    channel_shift_precision_budget,
    channel_shift_ring_budget,
    witag_budget,
)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools

    from .runner import SweepSpec, run_sweep
    from .runner.workers import los_ber_point

    try:
        distances = [float(d) for d in args.distances.split(",") if d]
    except ValueError:
        print(f"bad --distances value: {args.distances!r}", file=sys.stderr)
        return 2
    if not distances:
        print("--distances must name at least one point", file=sys.stderr)
        return 2
    try:
        spec = SweepSpec(
            axes={"distance_m": distances},
            seed=args.seed,
            chunk_size=args.chunk,
        )
        result = run_sweep(
            functools.partial(los_ber_point, sim_seconds=args.seconds),
            spec,
            n_workers=args.workers,
        )
    except ValueError as error:
        print(f"bad sweep options: {error}", file=sys.stderr)
        return 2
    print(
        result.table(
            f"LOS sweep: {args.seconds:g}s per point, seed {args.seed}, "
            f"{result.n_workers} worker(s) [{result.executor}]"
        ).render()
    )
    print(
        f"wall {result.wall_s:.2f}s, busy {result.busy_s:.2f}s across "
        f"{len(result.worker_timings)} worker(s), "
        f"chunk size {result.chunk_size}"
    )
    for timing in result.worker_timings:
        print(
            f"  worker {timing.worker}: {timing.n_units} unit(s) in "
            f"{timing.n_chunks} chunk(s), {timing.busy_s:.2f}s busy"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Three-tier fast-path benchmark with stage timings."""
    import json

    from .bench import (
        TIERS,
        bench_payload,
        record_bench_trajectory,
        three_tier_bench,
        update_baseline,
    )

    if args.queries < 1:
        print("--queries must be >= 1", file=sys.stderr)
        return 2
    result = three_tier_bench(
        args.queries,
        distance_m=args.distance,
        seed=args.seed,
        repeats=args.repeats,
    )
    speedups = result["speedups"]
    table = Table(
        f"fast-path tiers: {args.queries} queries, "
        f"LOS tag@{args.distance:g}m, seed {args.seed}",
        ["path", "wall (s)", "queries/s", "BER"],
    )
    for label, _phy, _session in TIERS:
        tier = result["tiers"][label]
        table.add_row(
            [label, tier["wall_s"], tier["queries_per_s"], tier["ber"]]
        )
    print(table.render())
    print(
        f"speedup vectorized/scalar: "
        f"{speedups['vectorized_vs_scalar']:.2f}x, "
        f"session-batch/scalar: {speedups['session_vs_scalar']:.2f}x, "
        f"session-batch/vectorized: "
        f"{speedups['session_vs_vectorized']:.2f}x"
    )
    stages = Table(
        "session-batch stage timings (cumulative seconds)",
        ["group", "stage", "seconds", "units", "us/unit"],
    )
    batch_session = result["tiers"]["session-batch"]["session"]
    for group, counters in (
        ("system", batch_session.system.counters),
        ("error_model", batch_session.system.error_model.counters),
    ):
        timings = counters.as_dict()
        for stage, entry in sorted(
            timings.items(), key=lambda kv: kv[1]["seconds"], reverse=True
        ):
            stages.add_row(
                [
                    group,
                    stage,
                    entry["seconds"],
                    int(entry["calls"]),
                    counters.per_call_us(stage),
                ]
            )
    print(stages.render())
    payload = bench_payload(result)
    entry = record_bench_trajectory(args.trajectory, payload)
    print(f"recorded trajectory entry ({entry['recorded_at']}) in "
          f"{args.trajectory}")
    if args.update_baseline:
        tiers = payload["tiers"]
        update_baseline(
            "session_batch",
            {
                "recorded": entry["recorded_at"],
                "queries": args.queries,
                "distance_m": args.distance,
                "seed": args.seed,
                "scalar_queries_per_s": tiers["scalar"]["queries_per_s"],
                "vectorized_queries_per_s": tiers["vectorized"][
                    "queries_per_s"
                ],
                "session_batch_queries_per_s": tiers["session-batch"][
                    "queries_per_s"
                ],
                "speedup_session_vs_vectorized": speedups[
                    "session_vs_vectorized"
                ],
                "note": (
                    "Reference machine numbers from `repro bench "
                    "--update-baseline`. benchmarks/test_session_batch.py "
                    "asserts session-batch >= max(2.0, 0.8 * "
                    "speedup_session_vs_vectorized) over the vectorized "
                    "tier; absolute queries/s are trajectory data only."
                ),
            },
            args.baselines,
        )
        print(f"updated session_batch baseline in {args.baselines}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    table = Table(
        f"Figure 5 sweep ({args.seconds:g}s per point, seed {args.seed})",
        ["tag distance (m)", "BER", "throughput (Kbps)"],
    )
    for d in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
        system, _ = los_scenario(d, seed=args.seed + int(d))
        stats = MeasurementSession(
            system, rng=np.random.default_rng(args.seed + int(d))
        ).run_for(args.seconds)
        table.add_row([d, stats.ber, stats.throughput_bps / 1e3])
    print(table.render())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    table = Table(
        f"Figure 6 NLOS runs ({args.runs} x {args.seconds:g}s)",
        ["location", "median BER", "p90 BER"],
    )
    for location in ("A", "B"):
        bers = []
        for run in range(args.runs):
            system, _ = nlos_scenario(location, seed=args.seed + run)
            stats = MeasurementSession(
                system, rng=np.random.default_rng(run)
            ).run_for(args.seconds)
            bers.append(stats.ber)
        table.add_row(
            [
                location,
                float(np.median(bers)),
                float(np.percentile(bers, 90)),
            ]
        )
    print(table.render())
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    system, info = los_scenario(args.distance, seed=args.seed)
    print(
        f"{info.name}: link SNR {info.link_snr_db:.1f} dB, "
        f"MCS {info.mcs_index}, tag clock {info.tag_clock_hz / 1e3:g} kHz"
    )
    report = ArqTransfer(system).send(args.message.encode())
    if report.delivered:
        print(
            f"delivered {args.message!r} in {report.queries} queries "
            f"({report.attempts} attempt(s), "
            f"{report.effective_rate_bps / 1e3:.1f} Kbps effective)"
        )
        return 0
    print(f"transfer failed after {report.attempts} attempts")
    return 1


def _cmd_power(_args: argparse.Namespace) -> int:
    table = Table(
        "tag power budgets (paper Section 7)",
        ["system", "total (uW)", "battery-free feasible"],
    )
    for budget in (
        witag_budget(),
        channel_shift_ring_budget(),
        channel_shift_precision_budget(),
    ):
        table.add_row(
            [budget.name, budget.total_uw, budget.battery_free_feasible]
        )
    print(table.render())
    return 0


def _cmd_compare(_args: argparse.Namespace) -> int:
    print(render_requirement_table())
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    config = WiTagConfig(
        n_subframes=args.subframes, tag_clock_hz=args.clock_khz * 1e3
    )
    cycle = query_cycle(config)
    print(
        f"cycle: access {cycle.access_s * 1e6:.0f} us + query "
        f"{cycle.query_s * 1e6:.0f} us + SIFS {cycle.sifs_s * 1e6:.0f} us "
        f"+ BA {cycle.block_ack_s * 1e6:.0f} us = {cycle.total_s * 1e3:.2f} ms"
    )
    print(
        f"tag throughput: {analytic_throughput_bps(config) / 1e3:.1f} Kbps "
        f"({config.bits_per_query} bits / cycle)"
    )
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    from .baselines.interference import (
        VictimNetwork,
        channel_shift_emitter,
        collision_probability,
        victim_goodput_fraction,
        witag_emitter,
    )

    victim = VictimNetwork()
    shift = channel_shift_emitter(queries_per_second=args.rate)
    table = Table(
        f"secondary-channel victim (1.5 ms frames) at {args.rate:g} "
        "excitations/s",
        ["emitter", "P(frame collision)", "victim goodput"],
    )
    table.add_row(
        [
            "channel-shift tag",
            collision_probability(victim, shift),
            victim_goodput_fraction(victim, shift),
        ]
    )
    table.add_row(
        [
            "WiTAG",
            collision_probability(victim, witag_emitter()),
            victim_goodput_fraction(victim, witag_emitter()),
        ]
    )
    print(table.render())
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    from .sim.pcap import PcapWriter

    system, info = los_scenario(args.distance, seed=args.seed)
    system.load_tag_bits(
        [int(b) for b in np.random.default_rng(args.seed).integers(
            0, 2, 62 * args.queries
        )]
    )
    writer = PcapWriter()
    clock = 0.0
    for _ in range(args.queries):
        result = system.run_query()
        clock = writer.add_query_result(clock, result)
    size = writer.write(args.output)
    print(
        f"wrote {writer.n_frames} frames ({size} bytes) from "
        f"{args.queries} query cycles to {args.output}"
    )
    print("open in Wireshark: the block-ACK bitmaps carry the tag's bits")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiTAG (HotNets 2018) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="parallel LOS distance sweep (repro.runner engine)"
    )
    sweep.add_argument(
        "--distances",
        type=str,
        default="1,2,3,4,5,6,7",
        help="comma-separated tag distances from the client (m)",
    )
    sweep.add_argument("--seconds", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument(
        "--chunk", type=int, default=None, help="work units per task"
    )
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench",
        help="three-tier benchmark: scalar vs vectorized vs session-batch",
    )
    bench.add_argument("--queries", type=int, default=300)
    bench.add_argument("--distance", type=float, default=4.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N wall clock per tier (robust to machine noise)",
    )
    bench.add_argument(
        "--json", type=str, default=None, help="write results to this file"
    )
    bench.add_argument(
        "--trajectory",
        type=str,
        default="benchmarks/BENCH_session_batch.json",
        help="JSON list appended to on every run (timestamped)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the session_batch entry of the baselines file "
        "with this run's numbers",
    )
    bench.add_argument(
        "--baselines",
        type=str,
        default="benchmarks/baselines.json",
        help="baselines file updated by --update-baseline",
    )
    bench.set_defaults(func=_cmd_bench)

    fig5 = sub.add_parser("fig5", help="BER/throughput vs tag position")
    fig5.add_argument("--seconds", type=float, default=1.0)
    fig5.add_argument("--seed", type=int, default=0)
    fig5.set_defaults(func=_cmd_fig5)

    fig6 = sub.add_parser("fig6", help="NLOS BER distribution")
    fig6.add_argument("--runs", type=int, default=8)
    fig6.add_argument("--seconds", type=float, default=0.5)
    fig6.add_argument("--seed", type=int, default=0)
    fig6.set_defaults(func=_cmd_fig6)

    quick = sub.add_parser("quickstart", help="send one tag message")
    quick.add_argument("--distance", type=float, default=2.0)
    quick.add_argument("--message", type=str, default="hello-witag")
    quick.add_argument("--seed", type=int, default=7)
    quick.set_defaults(func=_cmd_quickstart)

    power = sub.add_parser("power", help="tag power budgets")
    power.set_defaults(func=_cmd_power)

    compare = sub.add_parser("compare", help="system requirements matrix")
    compare.set_defaults(func=_cmd_compare)

    throughput = sub.add_parser("throughput", help="analytic rate model")
    throughput.add_argument("--subframes", type=int, default=64)
    throughput.add_argument("--clock-khz", type=float, default=50.0)
    throughput.set_defaults(func=_cmd_throughput)

    interference = sub.add_parser(
        "interference", help="secondary-channel interference comparison"
    )
    interference.add_argument("--rate", type=float, default=600.0)
    interference.set_defaults(func=_cmd_interference)

    pcap = sub.add_parser("pcap", help="capture query exchanges to pcap")
    pcap.add_argument("output", type=str)
    pcap.add_argument("--queries", type=int, default=3)
    pcap.add_argument("--distance", type=float, default=2.0)
    pcap.add_argument("--seed", type=int, default=0)
    pcap.set_defaults(func=_cmd_pcap)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
