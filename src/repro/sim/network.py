"""Multi-station network scheduling around a WiTAG deployment.

Models the environment of the non-interference discussion: a WiTAG client
sharing the channel with ordinary WiFi stations through standard CSMA, and
a reader polling several tags round-robin (a tag responds only when its
query carries its trigger; this module's poller abstracts that as
time-division polling, the natural multi-tag extension the paper implies).

Two polling layers live here:

* :class:`TagPoller` — the historical round-robin poller, one scalar
  :class:`MeasurementSession` per tag.  Since PR 8 each tag gets its own
  RNG substream derived from ``(seed, tag name)``, so adding or removing
  a tag never perturbs the other tags' streams; ``shared_rng=True``
  restores the pre-PR-8 behaviour (every session drawing from one
  shared generator) bit for bit.
* :class:`FleetNetwork` — the warehouse-scale layer: several reader
  cells (:class:`ReaderCell`) over a floorplan, each polling its
  assigned slice of one shared tag population through a vectorized
  :class:`repro.core.fleet.TagFleet`, with per-AP CSMA contention from
  the cell's :class:`TrafficStation` mix, an event-driven schedule
  (each AP's next round starts when its previous one ends), pluggable
  AP selection (:class:`NearestApPolicy` / :class:`StrongestRxPolicy`)
  and mobility ticks that refresh only the moved tags' cached link
  state on every fleet (incremental invalidation, counted by
  ``invalidated_rows``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from ..core.fleet import TagFleet
from ..core.session import MeasurementSession, SessionStats
from ..core.system import WiTagSystem
from ..core.throughput import block_ack_airtime_s
from ..mac.csma import ContentionModel
from ..seeding import child_sequence, derived_seed
from .events import EventLoop
from .rng import component_rng


@dataclass
class TrafficStation:
    """A background WiFi station with Poisson frame arrivals.

    Attributes:
        name: label.
        offered_load_fps: mean frames per second the station offers.
        frame_airtime_s: airtime per frame.
    """

    name: str
    offered_load_fps: float = 50.0
    frame_airtime_s: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.offered_load_fps < 0:
            raise ValueError("offered load cannot be negative")
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")

    @property
    def channel_activity(self) -> float:
        """Fraction of time this station occupies the channel."""
        return min(1.0, self.offered_load_fps * self.frame_airtime_s)


@dataclass(frozen=True)
class PollResult:
    """Outcome of one multi-tag polling round."""

    tag_name: str
    stats: SessionStats


@dataclass
class TagPoller:
    """Round-robin poller over multiple WiTAG deployments.

    Each tag is its own :class:`WiTagSystem` (its own geometry); the
    poller divides reader time between them using the event loop, the way
    a deployment polling many sensors would.

    Attributes:
        systems: tag name -> system.
        dwell_s: reader time spent per tag per round.
    """

    systems: dict[str, WiTagSystem]
    dwell_s: float = 0.5
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("network")
    )
    seed: int = 0
    shared_rng: bool = False

    def __post_init__(self) -> None:
        if not self.systems:
            raise ValueError("need at least one tag system")
        if self.dwell_s <= 0:
            raise ValueError("dwell must be positive")
        # Per-tag session substreams keyed by (seed, tag name): a tag's
        # stream depends only on its own name, never on which other
        # tags are present — adding a tag cannot perturb existing
        # tags' numbers.  shared_rng=True reproduces the historical
        # behaviour (every session drawing from the one self.rng).
        self._sessions = {
            name: MeasurementSession(
                system,
                rng=(
                    self.rng
                    if self.shared_rng
                    else _named_substream(self.seed, name)
                ),
            )
            for name, system in self.systems.items()
        }

    def run_rounds(self, n_rounds: int) -> list[PollResult]:
        """Poll every tag ``n_rounds`` times; returns per-tag aggregates.

        Uses an :class:`EventLoop` so dwell intervals interleave exactly as
        they would on a shared reader.
        """
        if n_rounds < 1:
            raise ValueError("need at least one round")
        loop = EventLoop()
        order = sorted(self._sessions)

        def poll(name: str) -> None:
            self._sessions[name].run_for(self.dwell_s)

        for round_index in range(n_rounds):
            for slot, name in enumerate(order):
                at = (round_index * len(order) + slot) * self.dwell_s
                loop.schedule(at, lambda n=name: poll(n))
        loop.run_all()
        return [
            PollResult(tag_name=name, stats=self._sessions[name].stats())
            for name in order
        ]


def _named_substream(seed: int, name: str) -> np.random.Generator:
    """A generator keyed by ``(seed, name)``.

    Name-keyed (not index-keyed) so the stream is independent of set
    membership and iteration order — the property the
    :class:`TagPoller` substream contract requires.
    """
    key = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(0x4E57, key))
    )


# ---------------------------------------------------------------------------
# Multi-AP fleet network
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReaderCell:
    """One reader (client + AP pair) placement in a fleet network.

    Attributes:
        name: cell label.
        ap_xy: AP (block-ACK receiver) position, metres.
        client_xy: query transmitter position; defaults to 1 m west of
            the AP (a reader's two radios are co-sited).
        stations: background WiFi stations contending in this cell.
    """

    name: str
    ap_xy: tuple[float, float]
    client_xy: tuple[float, float] | None = None
    stations: tuple[TrafficStation, ...] = ()

    @property
    def resolved_client_xy(self) -> tuple[float, float]:
        """The client position (applies the co-siting default)."""
        if self.client_xy is not None:
            return self.client_xy
        return (self.ap_xy[0] - 1.0, self.ap_xy[1])


class ApSelectionPolicy(Protocol):
    """Pluggable tag->AP assignment."""

    def assign(
        self, network: "FleetNetwork", current: np.ndarray | None
    ) -> np.ndarray:
        """Return the AP index per tag.

        Args:
            network: the fleet network (positions, fleets, cells).
            current: the previous assignment, or ``None`` on the
                initial call.
        """
        ...  # pragma: no cover - protocol


class NearestApPolicy:
    """Assign every tag to the geometrically nearest AP."""

    def assign(
        self, network: "FleetNetwork", current: np.ndarray | None
    ) -> np.ndarray:
        d2 = np.stack(
            [
                ((network.positions - np.asarray(cell.ap_xy)) ** 2).sum(
                    axis=1
                )
                for cell in network.cells
            ]
        )
        return d2.argmin(axis=0)


@dataclass
class StrongestRxPolicy:
    """Assign by strongest query power at the tag, with hysteresis.

    A tag switches cells only when another AP's client is at least
    ``hysteresis_db`` stronger than its current one — the standard
    anti-ping-pong guard for mobility.
    """

    hysteresis_db: float = 3.0

    def assign(
        self, network: "FleetNetwork", current: np.ndarray | None
    ) -> np.ndarray:
        power = np.stack(
            [fleet.rx_power_dbm for fleet in network.fleets]
        )
        best = power.argmax(axis=0)
        if current is None:
            return best
        cols = np.arange(power.shape[1])
        gain = power[best, cols] - power[current, cols]
        out = current.copy()
        switch = gain > self.hysteresis_db
        out[switch] = best[switch]
        return out


@dataclass
class RandomWalkMobility:
    """A bounded random-walk mobility trace.

    Each tick moves a deterministic pseudo-random subset of tags by a
    bounded step — exercising the fleets' *incremental* invalidation
    (only moved rows are refreshed).  The tick's draws depend only on
    ``(seed, tick_index)``, never on simulation state.

    Attributes:
        bounds: ``(xmin, ymin, xmax, ymax)`` clip box, metres.
        step_m: maximum per-axis step per tick.
        fraction: fraction of tags that move each tick.
    """

    bounds: tuple[float, float, float, float]
    step_m: float = 0.25
    fraction: float = 0.1
    seed: int = 0

    def __call__(
        self, tick: int, positions: np.ndarray
    ) -> tuple[list[int], list[tuple[float, float]]]:
        rng = np.random.default_rng(child_sequence(self.seed, tick))
        n = len(positions)
        count = max(1, int(round(self.fraction * n)))
        indices = np.sort(rng.choice(n, size=min(count, n), replace=False))
        steps = rng.uniform(-self.step_m, self.step_m, size=(len(indices), 2))
        xmin, ymin, xmax, ymax = self.bounds
        moved = np.clip(
            positions[indices] + steps, [xmin, ymin], [xmax, ymax]
        )
        return (
            [int(i) for i in indices],
            [(float(x), float(y)) for x, y in moved],
        )


#: A mobility trace: ``(tick_index, positions) -> (indices, new_xy)``.
MobilityTrace = Callable[
    [int, np.ndarray], tuple[list[int], list[tuple[float, float]]]
]


@dataclass(frozen=True)
class FleetRoundStats:
    """Aggregate outcome of one AP's polling round."""

    ap: str
    round_index: int
    start_s: float
    duration_s: float
    n_queries: int
    n_responded: int
    bits_sent: int
    bit_errors: int


class FleetNetwork:
    """Many reader cells polling one shared tag population.

    Each cell owns a full :class:`TagFleet` over *all* tags (per-tag
    link state to that cell's reader — a few MB per cell even at
    thousands of tags) but polls only the tags the AP-selection policy
    currently assigns to it.  Rounds are event-driven: an AP's next
    round starts when its previous one ends, with per-query channel
    access delays drawn from the cell's CSMA contention model, so
    lightly-loaded cells naturally poll faster than congested ones.

    Tag data queues are authoritative per assignment: on handoff the
    undelivered bits drain from the old cell's fleet and follow the
    tag to the new one.

    Attributes:
        cells: the reader cells.
        fleets: one :class:`TagFleet` per cell (same tag order).
        positions: authoritative ``(n_tags, 2)`` tag coordinates.
        assignment: AP index per tag.
        handoffs: cumulative tag reassignments across mobility ticks.
    """

    def __init__(
        self,
        cells: Sequence[ReaderCell],
        positions: Iterable[tuple[float, float]],
        *,
        seed: int = 0,
        policy: ApSelectionPolicy | None = None,
        mobility: MobilityTrace | None = None,
        mobility_dt_s: float = 1.0,
        names: Sequence[str] | None = None,
        **fleet_kwargs,
    ) -> None:
        self.cells = tuple(cells)
        if not self.cells:
            raise ValueError("need at least one reader cell")
        if len({cell.name for cell in self.cells}) != len(self.cells):
            raise ValueError("cell names must be distinct")
        self.positions = np.asarray(list(positions), dtype=float)
        self.seed = int(seed)
        self.policy = policy if policy is not None else NearestApPolicy()
        self.mobility = mobility
        if mobility_dt_s <= 0:
            raise ValueError("mobility_dt_s must be positive")
        self.mobility_dt_s = float(mobility_dt_s)
        # One fleet per cell over the whole population; per-cell seeds
        # are derived substreams, so cells never share tag streams.
        self.fleets = tuple(
            TagFleet.build(
                self.positions,
                names=names,
                client_xy=cell.resolved_client_xy,
                ap_xy=cell.ap_xy,
                seed=derived_seed(self.seed, ap_index),
                **fleet_kwargs,
            )
            for ap_index, cell in enumerate(self.cells)
        )
        self.names = self.fleets[0].names
        self._contention = tuple(
            self._build_contention(ap_index, cell)
            for ap_index, cell in enumerate(self.cells)
        )
        self.assignment = np.asarray(
            self.policy.assign(self, None), dtype=np.intp
        )
        if self.assignment.shape != (len(self.names),):
            raise ValueError(
                "policy returned assignment of shape "
                f"{self.assignment.shape}, need ({len(self.names)},)"
            )
        self.handoffs = 0
        self.mobility_ticks = 0
        #: Optional repro.obs.Telemetry; attach via attach_network.
        self.telemetry = None

    def _build_contention(
        self, ap_index: int, cell: ReaderCell
    ) -> ContentionModel | None:
        if not cell.stations:
            return None
        activity = float(
            np.mean([s.channel_activity for s in cell.stations])
        )
        busy_s = float(
            np.mean([s.frame_airtime_s for s in cell.stations])
        )
        return ContentionModel(
            n_contenders=len(cell.stations),
            contender_busy_s=busy_s,
            contender_activity=activity,
            rng=np.random.default_rng(
                child_sequence(self.seed, 0xC5 + ap_index)
            ),
        )

    @property
    def n_tags(self) -> int:
        """Number of tags in the population."""
        return len(self.names)

    @property
    def invalidated_rows(self) -> int:
        """Total per-fleet cache rows refreshed by mobility so far."""
        return sum(fleet.invalidated_rows for fleet in self.fleets)

    def assigned_names(self, ap_index: int) -> list[str]:
        """Tags currently assigned to one cell, in sorted name order."""
        return sorted(
            self.names[i]
            for i in np.flatnonzero(self.assignment == ap_index)
        )

    def load_bits(self, name: str, bits: Sequence[int]) -> None:
        """Queue bits on a tag (in its currently assigned cell)."""
        i = self.fleets[0]._tag_index(name)
        fleet = self.fleets[int(self.assignment[i])]
        fleet.load_bits(name, list(bits))

    def pending_bits(self, name: str) -> int:
        """Bits still queued for a tag in its assigned cell."""
        i = self.fleets[0]._tag_index(name)
        return self.fleets[int(self.assignment[i])].pending_bits(name)

    # -- mobility + handoff -------------------------------------------

    def _mobility_tick(self) -> None:
        """Advance mobility one tick and re-run AP selection.

        Moved tags' link rows are refreshed *incrementally* on every
        fleet; handoffs drain undelivered bits from the old cell's
        fleet into the new one.
        """
        assert self.mobility is not None
        indices, new_xy = self.mobility(self.mobility_ticks, self.positions)
        self.mobility_ticks += 1
        if indices:
            for fleet in self.fleets:
                fleet.update_positions(indices, new_xy)
            for i, (x, y) in zip(indices, new_xy):
                self.positions[i, 0] = x
                self.positions[i, 1] = y
        new_assignment = np.asarray(
            self.policy.assign(self, self.assignment), dtype=np.intp
        )
        changed = np.flatnonzero(new_assignment != self.assignment)
        telemetry = self.telemetry
        for i in changed:
            name = self.names[i]
            old_fleet = self.fleets[int(self.assignment[i])]
            new_fleet = self.fleets[int(new_assignment[i])]
            queue = old_fleet._fsms[i].data_queue
            if queue:
                new_fleet._fsms[i].data_queue.extend(queue)
                queue.clear()
            if telemetry is not None:
                telemetry.on_handoff(
                    self.cells[int(self.assignment[i])].name,
                    self.cells[int(new_assignment[i])].name,
                )
        self.handoffs += len(changed)
        self.assignment = new_assignment
        if telemetry is not None:
            telemetry.on_mobility_tick(
                len(indices) * len(self.fleets) if indices else 0
            )

    # -- polling -------------------------------------------------------

    def _run_ap_round(
        self, ap_index: int, round_index: int, start_s: float
    ) -> FleetRoundStats:
        cell = self.cells[ap_index]
        fleet = self.fleets[ap_index]
        names = self.assigned_names(ap_index)
        results = fleet.poll_tags(names) if names else {}

        n_responded = 0
        bits_sent = 0
        bit_errors = 0
        for name, result in results.items():
            if name in result.per_tag_sent:
                n_responded += 1
                sent = result.per_tag_sent[name]
                received = result.raw_bits[: len(sent)]
                bits_sent += len(sent)
                bit_errors += sum(
                    1 for s, r in zip(sent, received) if s != r
                )

        contention = self._contention[ap_index]
        sifs = fleet.config.band.sifs_s
        telemetry = self.telemetry
        if contention is not None:
            # A wait is a "stall" when it exceeds the contention-free
            # minimum (one DIFS): some station's backoff or busy
            # channel actually delayed the query.
            difs_s = contention.params.difs_s
            access_s = 0
            for _ in names:
                delay_s = contention.sample_access_delay_s()
                access_s += delay_s
                if telemetry is not None:
                    telemetry.on_channel_access(
                        cell.name, delay_s, stalled=delay_s > difs_s
                    )
        else:
            difs = sifs + 2 * 9e-6
            per_query_s = difs + 7.5 * 9e-6
            access_s = per_query_s * len(names)
            if telemetry is not None:
                for _ in names:
                    telemetry.on_channel_access(
                        cell.name, per_query_s, stalled=False
                    )
        airtime_s = fleet._builder.peek_airtime_s() if names else 0.0
        duration_s = access_s + len(names) * (
            airtime_s + sifs + block_ack_airtime_s()
        )
        stats = FleetRoundStats(
            ap=cell.name,
            round_index=round_index,
            start_s=start_s,
            duration_s=duration_s,
            n_queries=len(names),
            n_responded=n_responded,
            bits_sent=bits_sent,
            bit_errors=bit_errors,
        )
        if telemetry is not None:
            telemetry.on_fleet_round(stats)
        return stats

    def run_rounds(self, n_rounds: int) -> list[FleetRoundStats]:
        """Run ``n_rounds`` polling rounds on every cell, event-driven.

        Each AP's round ``r+1`` is scheduled at the simulated end of
        its round ``r`` (contention-dependent, so cells drift apart
        naturally); mobility ticks fire every ``mobility_dt_s`` while
        any cell still has rounds left.  Returns round stats in event
        completion order.
        """
        if n_rounds < 1:
            raise ValueError("need at least one round")
        loop = EventLoop()
        results: list[FleetRoundStats] = []
        remaining = [n_rounds] * len(self.cells)

        def run_round(ap_index: int, round_index: int) -> None:
            stats = self._run_ap_round(ap_index, round_index, loop.now_s)
            results.append(stats)
            remaining[ap_index] -= 1
            if remaining[ap_index] > 0:
                loop.schedule(
                    stats.duration_s,
                    lambda: run_round(ap_index, round_index + 1),
                )

        for ap_index in range(len(self.cells)):
            loop.schedule(0.0, lambda a=ap_index: run_round(a, 0))

        if self.mobility is not None:

            def tick() -> None:
                if not any(r > 0 for r in remaining):
                    return
                self._mobility_tick()
                loop.schedule(self.mobility_dt_s, tick)

            loop.schedule(self.mobility_dt_s, tick)
        loop.run_all()
        return results
