"""Multi-station network scheduling around a WiTAG deployment.

Models the environment of the non-interference discussion: a WiTAG client
sharing the channel with ordinary WiFi stations through standard CSMA, and
a reader polling several tags round-robin (a tag responds only when its
query carries its trigger; this module's poller abstracts that as
time-division polling, the natural multi-tag extension the paper implies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.session import MeasurementSession, SessionStats
from ..core.system import WiTagSystem
from .events import EventLoop
from .rng import component_rng


@dataclass
class TrafficStation:
    """A background WiFi station with Poisson frame arrivals.

    Attributes:
        name: label.
        offered_load_fps: mean frames per second the station offers.
        frame_airtime_s: airtime per frame.
    """

    name: str
    offered_load_fps: float = 50.0
    frame_airtime_s: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.offered_load_fps < 0:
            raise ValueError("offered load cannot be negative")
        if self.frame_airtime_s <= 0:
            raise ValueError("frame airtime must be positive")

    @property
    def channel_activity(self) -> float:
        """Fraction of time this station occupies the channel."""
        return min(1.0, self.offered_load_fps * self.frame_airtime_s)


@dataclass(frozen=True)
class PollResult:
    """Outcome of one multi-tag polling round."""

    tag_name: str
    stats: SessionStats


@dataclass
class TagPoller:
    """Round-robin poller over multiple WiTAG deployments.

    Each tag is its own :class:`WiTagSystem` (its own geometry); the
    poller divides reader time between them using the event loop, the way
    a deployment polling many sensors would.

    Attributes:
        systems: tag name -> system.
        dwell_s: reader time spent per tag per round.
    """

    systems: dict[str, WiTagSystem]
    dwell_s: float = 0.5
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("network")
    )

    def __post_init__(self) -> None:
        if not self.systems:
            raise ValueError("need at least one tag system")
        if self.dwell_s <= 0:
            raise ValueError("dwell must be positive")
        self._sessions = {
            name: MeasurementSession(system, rng=self.rng)
            for name, system in self.systems.items()
        }

    def run_rounds(self, n_rounds: int) -> list[PollResult]:
        """Poll every tag ``n_rounds`` times; returns per-tag aggregates.

        Uses an :class:`EventLoop` so dwell intervals interleave exactly as
        they would on a shared reader.
        """
        if n_rounds < 1:
            raise ValueError("need at least one round")
        loop = EventLoop()
        order = sorted(self._sessions)

        def poll(name: str) -> None:
            self._sessions[name].run_for(self.dwell_s)

        for round_index in range(n_rounds):
            for slot, name in enumerate(order):
                at = (round_index * len(order) + slot) * self.dwell_s
                loop.schedule(at, lambda n=name: poll(n))
        loop.run_all()
        return [
            PollResult(tag_name=name, stats=self._sessions[name].stats())
            for name in order
        ]
