"""2-D geometry for deployment scenarios: points, walls, obstruction.

Replaces the paper's physical testbed (Figure 4: an 18 m x 7 m lab/office
area) with a geometric model.  Walls are line segments with per-material
attenuation; a link's obstruction loss is the summed attenuation of every
wall the straight-line path crosses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in the floor plane (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


class Material(enum.Enum):
    """Wall materials with typical 2.4 GHz penetration losses (dB)."""

    DRYWALL = 3.0
    WOOD = 4.0
    GLASS = 2.0
    BRICK = 8.0
    CONCRETE = 12.0
    METAL = 18.0

    @property
    def attenuation_db(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class Wall:
    """A wall segment with a material.

    Attributes:
        start / end: segment endpoints.
        material: determines penetration loss.
    """

    start: Point
    end: Point
    material: Material = Material.DRYWALL

    def intersects(self, a: Point, b: Point) -> bool:
        """Whether segment a-b crosses this wall (proper intersection).

        Standard orientation-based segment intersection; touching at an
        endpoint counts as crossing (conservative for attenuation).
        """
        return _segments_intersect(self.start, self.end, a, b)


def _orientation(p: Point, q: Point, r: Point) -> int:
    cross = (q.y - p.y) * (r.x - q.x) - (q.x - p.x) * (r.y - q.y)
    if abs(cross) < 1e-12:
        return 0
    return 1 if cross > 0 else 2


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    return (
        min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
        and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
    )


def _segments_intersect(p1: Point, q1: Point, p2: Point, q2: Point) -> bool:
    o1 = _orientation(p1, q1, p2)
    o2 = _orientation(p1, q1, q2)
    o3 = _orientation(p2, q2, p1)
    o4 = _orientation(p2, q2, q1)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False


@dataclass(frozen=True)
class PathProfile:
    """Propagation summary of one straight-line link.

    Attributes:
        distance_m: endpoint separation.
        obstruction_db: summed wall attenuation along the path.
        walls_crossed: how many walls the path penetrates.
    """

    distance_m: float
    obstruction_db: float
    walls_crossed: int

    @property
    def line_of_sight(self) -> bool:
        """True when no wall blocks the path."""
        return self.walls_crossed == 0


def path_profile(a: Point, b: Point, walls: tuple[Wall, ...]) -> PathProfile:
    """Compute the propagation profile of the a-b link through ``walls``."""
    crossed = [wall for wall in walls if wall.intersects(a, b)]
    return PathProfile(
        distance_m=a.distance_to(b),
        obstruction_db=sum(w.material.attenuation_db for w in crossed),
        walls_crossed=len(crossed),
    )
