"""Scenario builders: from floor-plan geometry to a runnable system.

One-call constructors for the paper's experimental setups:

* :func:`los_scenario` — Figure 5: AP and client 8 m apart in the lab,
  tag on the line between them at a chosen distance from the client.
* :func:`nlos_scenario` — Figure 6: tag 1 m from the client, AP one or
  several rooms away (locations A and B of Figure 4).
* :func:`custom_scenario` — anything else, from raw geometry.

Each builder derives the link budget from the floor plan, auto-selects the
query MCS the way the paper prescribes (§4.1: the highest rate with
near-zero loss), sizes the tag clock so subframes fit, and wires up
independent random streams for every stochastic component.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EncryptionMode, WiTagConfig
from ..core.system import WiTagSystem
from ..mac.csma import ContentionModel
from ..phy.channel import (
    BackscatterChannel,
    ChannelGeometry,
    PathLossModel,
    TagAntenna,
)
from ..phy.constants import Band
from ..phy.error_model import LinkErrorModel
from ..phy.fading import CorrelatedFadingChannel
from ..phy.mcs import Mcs, highest_reliable_mcs
from ..phy.noise import ReceiverNoise
from ..tag.state_machine import TagStateMachine
from .floorplan import FloorPlan, los_testbed, paper_testbed
from .rng import named_rngs

#: Default client transmit power (commodity NIC).
DEFAULT_TX_POWER_DBM = 15.0

#: Candidate tag clocks, fastest first; the builder picks the fastest one
#: whose period fits a minimal subframe at the chosen MCS.
_TAG_CLOCKS_HZ = (50e3, 25e3, 12.5e3, 6.25e3)

#: Minimum on-air subframe bytes (delimiter + QoS header + FCS).
_MIN_SUBFRAME_BYTES = 34


@dataclass(frozen=True)
class ScenarioInfo:
    """Descriptive summary of a built scenario."""

    name: str
    geometry: ChannelGeometry
    direct_obstruction_db: float
    link_snr_db: float
    mcs_index: int
    tag_clock_hz: float


def _fit_tag_clock(mcs: Mcs, channel_width_mhz: int, short_gi: bool) -> float:
    """Fastest candidate clock whose period holds a minimal subframe."""
    symbol_s = 0.0000036 if short_gi else 0.000004
    dbps = mcs.data_bits_per_symbol(channel_width_mhz)
    for clock in _TAG_CLOCKS_HZ:
        period = 1.0 / clock
        symbols = period / symbol_s
        capacity_bytes = symbols * dbps / 8.0
        if capacity_bytes >= _MIN_SUBFRAME_BYTES + 4:
            return clock
    return _TAG_CLOCKS_HZ[-1]


def build_system(
    geometry: ChannelGeometry,
    *,
    name: str = "custom",
    direct_obstruction_db: float = 0.0,
    tag_rx_obstruction_db: float | None = None,
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
    band: Band = Band.GHZ_2_4,
    channel_width_mhz: int = 20,
    encryption: EncryptionMode = EncryptionMode.OPEN,
    encryption_key: bytes | None = None,
    mcs: Mcs | None = None,
    mismatch_gain_db: float = 22.0,
    rician_k_db: float | None = 15.0,
    tag_rician_k_db: float | None = 5.0,
    n_contenders: int = 0,
    tag: TagStateMachine | None = None,
    temperature_c: float = 25.0,
    coherence_time_s: float | None = None,
    phy_fast_path: bool = True,
    kernel_tier: str = "auto",
    seed: int = 0,
) -> tuple[WiTagSystem, ScenarioInfo]:
    """Construct a runnable :class:`WiTagSystem` from raw geometry.

    Args:
        geometry: client/tag/AP distances.
        direct_obstruction_db: wall loss on the client->AP path.
        tag_rx_obstruction_db: wall loss on the tag->AP leg; defaults to
            the direct path's obstruction (tag near the client).
        mcs: query MCS; auto-selected from the link SNR when omitted
            (paper §4.1's rate rule).
        mismatch_gain_db: receiver-fragility calibration, see
            :mod:`repro.phy.error_model`.
        n_contenders: other stations contending for the channel.
        coherence_time_s: when set, fading evolves as a correlated
            Gauss-Markov process with this coherence time (paper: ~100 ms)
            instead of independently per query.
        phy_fast_path: decode A-MPDUs through the vectorized PHY batch
            path (default) or the scalar per-subframe reference loop;
            see :class:`repro.core.system.WiTagSystem`.
        kernel_tier: decode kernel implementation for the vectorized
            stages (``"auto"``/``"numpy"``/``"numba"``); see
            :mod:`repro.phy.kernels`.  Bitwise identical across tiers.
        seed: master seed; all component streams derive from it.

    Returns:
        The system plus a :class:`ScenarioInfo` summary.
    """
    rngs = named_rngs(
        seed, "channel", "error", "tag", "system", "contention", "fading"
    )
    if tag_rx_obstruction_db is None:
        tag_rx_obstruction_db = direct_obstruction_db
    channel = BackscatterChannel(
        geometry=geometry,
        band=band,
        channel_width_mhz=channel_width_mhz,
        direct_loss=PathLossModel(obstruction_db=direct_obstruction_db),
        tx_tag_loss=PathLossModel(),
        tag_rx_loss=PathLossModel(obstruction_db=tag_rx_obstruction_db),
        antenna=TagAntenna(),
        rician_k_db=rician_k_db,
        tag_rician_k_db=tag_rician_k_db,
        rng=rngs["channel"],
    )
    receiver = ReceiverNoise(bandwidth_hz=channel_width_mhz * 1e6)
    wavelength = band.wavelength_m
    link_snr_db = tx_power_dbm - channel.direct_loss.path_loss_db(
        geometry.tx_rx_m, wavelength
    ) - receiver.noise_floor_dbm
    if mcs is None:
        mcs = highest_reliable_mcs(link_snr_db)
    tag_clock_hz = _fit_tag_clock(mcs, channel_width_mhz, False)
    config_kwargs = dict(
        mcs=mcs,
        tag_clock_hz=tag_clock_hz,
        band=band,
        channel_width_mhz=channel_width_mhz,
        tx_power_dbm=tx_power_dbm,
        encryption=encryption,
    )
    if encryption_key is not None:
        config_kwargs["encryption_key"] = encryption_key
    config = WiTagConfig(**config_kwargs)
    error_model = LinkErrorModel(
        channel=channel,
        mcs=mcs,
        tx_power_dbm=tx_power_dbm,
        receiver=receiver,
        mismatch_gain_db=mismatch_gain_db,
        rng=rngs["error"],
        kernel_tier=kernel_tier,
    )
    if tag is None:
        tag = TagStateMachine(rng=rngs["tag"])
    contention = None
    if n_contenders > 0:
        contention = ContentionModel(
            n_contenders=n_contenders, rng=rngs["contention"]
        )
    fading_channel = None
    if coherence_time_s is not None:
        fading_channel = CorrelatedFadingChannel(
            direct_los=channel.direct_gain,
            rician_k_db=rician_k_db,
            tag_rician_k_db=tag_rician_k_db,
            coherence_time_s=coherence_time_s,
            rng=rngs["fading"],
        )
    system = WiTagSystem(
        config=config,
        error_model=error_model,
        tag=tag,
        contention=contention,
        temperature_c=temperature_c,
        fading_channel=fading_channel,
        rng=rngs["system"],
        phy_fast_path=phy_fast_path,
    )
    info = ScenarioInfo(
        name=name,
        geometry=geometry,
        direct_obstruction_db=direct_obstruction_db,
        link_snr_db=link_snr_db,
        mcs_index=mcs.index,
        tag_clock_hz=tag_clock_hz,
    )
    return system, info


def los_scenario(
    tag_from_client_m: float,
    *,
    ap_client_m: float = 8.0,
    initiator: str = "client",
    seed: int = 0,
    **kwargs,
) -> tuple[WiTagSystem, ScenarioInfo]:
    """The Figure 5 LOS setup: tag on the client-AP line.

    Args:
        tag_from_client_m: tag distance from the client, strictly between
            0 and ``ap_client_m``.
        initiator: which device transmits the query A-MPDUs — "client"
            (the paper's experiments) or "ap" (paper §4: "the AP could
            also initiate this process"); the tag's two legs swap roles.
    """
    if initiator not in ("client", "ap"):
        raise ValueError(
            f"initiator must be 'client' or 'ap', got {initiator!r}"
        )
    plan: FloorPlan = los_testbed()
    link = plan.link("client_los", "ap")
    geometry = ChannelGeometry.on_line(ap_client_m, tag_from_client_m)
    if initiator == "ap":
        geometry = geometry.reversed()
    return build_system(
        geometry,
        name=f"LOS tag@{tag_from_client_m:g}m ({initiator}-initiated)",
        direct_obstruction_db=link.obstruction_db,
        seed=seed,
        **kwargs,
    )


def nlos_scenario(
    location: str,
    *,
    tag_from_client_m: float = 1.0,
    seed: int = 0,
    **kwargs,
) -> tuple[WiTagSystem, ScenarioInfo]:
    """The Figure 6 NLOS setup at location ``"A"`` or ``"B"``.

    The tag sits ``tag_from_client_m`` from the client; the AP is behind
    walls per the Figure 4 floor plan.  The tag->AP leg carries the same
    obstruction as the direct path (the tag is next to the client); the
    client->tag leg is clear.
    """
    if location not in ("A", "B"):
        raise ValueError(f"location must be 'A' or 'B', got {location!r}")
    plan = paper_testbed()
    link = plan.link(f"client_{location}", "ap")
    geometry = ChannelGeometry(
        tx_rx_m=link.distance_m,
        tx_tag_m=tag_from_client_m,
        tag_rx_m=link.distance_m - tag_from_client_m,
    )
    return build_system(
        geometry,
        name=f"NLOS location {location}",
        direct_obstruction_db=link.obstruction_db,
        seed=seed,
        **kwargs,
    )
