"""Deterministic random-stream management (public facade).

Every stochastic component (fading, CSI noise, tag detection, backoff,
data bits) gets its own independent generator derived from one
experiment seed via ``numpy``'s SeedSequence spawning, so experiments
are exactly reproducible and components stay statistically independent.

The implementation lives in :mod:`repro.seeding` — a dependency-free
module at the package root — so that low-level layers (``phy``,
``mac``, ``tag``, ``core``) can import it without pulling in the whole
``repro.sim`` package.  Import from here in scenario/experiment code;
the names are identical.
"""

from __future__ import annotations

from ..seeding import (
    child_sequence,
    component_rng,
    derived_seed,
    named_rngs,
    spawn_rngs,
    substream,
)

__all__ = [
    "child_sequence",
    "component_rng",
    "derived_seed",
    "named_rngs",
    "spawn_rngs",
    "substream",
]
