"""Deterministic random-stream management.

Every stochastic component (fading, CSI noise, tag detection, backoff,
data bits) gets its own independent generator derived from one experiment
seed via ``numpy``'s SeedSequence spawning, so experiments are exactly
reproducible and components stay statistically independent.
"""

from __future__ import annotations

import numpy as np


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from one seed."""
    if count < 1:
        raise ValueError("count must be >= 1")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def named_rngs(seed: int, *names: str) -> dict[str, np.random.Generator]:
    """Create independent generators keyed by component name.

    Example:
        >>> rngs = named_rngs(7, "channel", "tag", "data")
        >>> sorted(rngs)
        ['channel', 'data', 'tag']
    """
    if not names:
        raise ValueError("provide at least one stream name")
    if len(set(names)) != len(names):
        raise ValueError("stream names must be unique")
    generators = spawn_rngs(seed, len(names))
    return dict(zip(names, generators))
