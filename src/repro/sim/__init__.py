"""Deployment scenarios: geometry, floor plans, event loop, tracing."""

from .events import EventLoop
from .floorplan import FloorPlan, los_testbed, paper_testbed
from .geometry import Material, PathProfile, Point, Wall, path_profile
from .network import (
    FleetNetwork,
    FleetRoundStats,
    NearestApPolicy,
    PollResult,
    RandomWalkMobility,
    ReaderCell,
    StrongestRxPolicy,
    TagPoller,
    TrafficStation,
)
from .rng import named_rngs, spawn_rngs
from .scenario import (
    DEFAULT_TX_POWER_DBM,
    ScenarioInfo,
    build_system,
    los_scenario,
    nlos_scenario,
)
from .pcap import PcapWriter, read_pcap
from .trace import TraceRecord, TraceWriter

__all__ = [
    "DEFAULT_TX_POWER_DBM",
    "EventLoop",
    "FleetNetwork",
    "FleetRoundStats",
    "FloorPlan",
    "Material",
    "NearestApPolicy",
    "PathProfile",
    "PcapWriter",
    "Point",
    "PollResult",
    "RandomWalkMobility",
    "ReaderCell",
    "ScenarioInfo",
    "StrongestRxPolicy",
    "TagPoller",
    "TraceRecord",
    "TraceWriter",
    "TrafficStation",
    "Wall",
    "build_system",
    "los_scenario",
    "los_testbed",
    "named_rngs",
    "nlos_scenario",
    "paper_testbed",
    "read_pcap",
    "path_profile",
    "spawn_rngs",
]
