"""Classic pcap export of simulated 802.11 frames.

Writes the MPDUs of query A-MPDUs and the block-ACK responses as a
standard pcap file (LINKTYPE_IEEE802_11 = 105, no radiotap), so simulated
WiTAG exchanges can be opened in Wireshark and inspected frame by frame —
including watching the block-ACK bitmaps carry tag data.

The pcap format is implemented from its specification: a 24-byte global
header followed by per-packet records of a 16-byte header plus frame
bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

from ..core.system import QueryResult

#: pcap magic (microsecond timestamps, little-endian).
PCAP_MAGIC = 0xA1B2C3D4

#: LINKTYPE_IEEE802_11: raw 802.11 headers without radiotap.
LINKTYPE_IEEE802_11 = 105


@dataclass
class PcapWriter:
    """Accumulates frames and writes a classic pcap file.

    Example:
        >>> writer = PcapWriter()
        >>> writer.add_frame(0.0, b"\\x88\\x00" + bytes(28))
        >>> import tempfile, os
        >>> path = tempfile.mktemp(suffix=".pcap")
        >>> writer.write(path) >= 40
        True
        >>> os.unlink(path)
    """

    snaplen: int = 65535

    def __post_init__(self) -> None:
        self._records: list[tuple[float, bytes]] = []

    @property
    def n_frames(self) -> int:
        return len(self._records)

    def add_frame(self, timestamp_s: float, frame: bytes) -> None:
        """Append one on-air frame at an absolute timestamp.

        Raises:
            ValueError: for empty frames or negative timestamps.
        """
        if not frame:
            raise ValueError("cannot record an empty frame")
        if timestamp_s < 0:
            raise ValueError(f"timestamp must be >= 0, got {timestamp_s}")
        self._records.append((timestamp_s, frame))

    def add_query_result(self, start_s: float, result: QueryResult) -> float:
        """Record one full query exchange; returns its end time.

        Each MPDU is written at its scheduled on-air offset (A-MPDU
        subframes appear as individual frames, which is also how monitor-
        mode captures present them); the block ACK follows after SIFS.
        """
        windows = result.query.schedule.windows
        for (offset_s, _end), mpdu in zip(windows, result.query.mpdus):
            self.add_frame(start_s + offset_s, mpdu)
        ba_time = start_s + result.query.airtime_s + 16e-6
        self.add_frame(ba_time, result.block_ack.serialize())
        return start_s + result.cycle_s

    def write(self, path: str | Path) -> int:
        """Write the pcap file; returns the byte count written."""
        path = Path(path)
        chunks = [
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                2,  # major
                4,  # minor
                0,  # thiszone
                0,  # sigfigs
                self.snaplen,
                LINKTYPE_IEEE802_11,
            )
        ]
        for timestamp_s, frame in sorted(self._records, key=lambda r: r[0]):
            seconds = int(timestamp_s)
            micros = int(round((timestamp_s - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            captured = frame[: self.snaplen]
            chunks.append(
                struct.pack(
                    "<IIII", seconds, micros, len(captured), len(frame)
                )
            )
            chunks.append(captured)
        data = b"".join(chunks)
        path.write_bytes(data)
        return len(data)


def read_pcap(path: str | Path) -> list[tuple[float, bytes]]:
    """Parse a classic pcap file back into (timestamp, frame) records.

    Raises:
        ValueError: for a bad magic number or truncated records.
    """
    data = Path(path).read_bytes()
    if len(data) < 24:
        raise ValueError("file too short for a pcap header")
    magic = struct.unpack("<I", data[:4])[0]
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic 0x{magic:08x}")
    records: list[tuple[float, bytes]] = []
    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            raise ValueError("truncated packet record header")
        seconds, micros, incl_len, _orig_len = struct.unpack(
            "<IIII", data[offset : offset + 16]
        )
        offset += 16
        if offset + incl_len > len(data):
            raise ValueError("truncated packet data")
        records.append(
            (seconds + micros * 1e-6, data[offset : offset + incl_len])
        )
        offset += incl_len
    return records
