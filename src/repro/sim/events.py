"""A minimal discrete-event simulation core.

Used by the multi-station / multi-tag scenarios (contending WiFi traffic
around a WiTAG deployment, round-robin tag polling) and available to
downstream users building richer deployments.  Deliberately tiny: a
monotonic clock, a heap of timestamped events, and deterministic FIFO
ordering for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _ScheduledEvent:
    time_s: float
    tie_breaker: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """A deterministic discrete-event loop.

    Example:
        >>> loop = EventLoop()
        >>> fired = []
        >>> _ = loop.schedule(1.0, lambda: fired.append("a"))
        >>> _ = loop.schedule(0.5, lambda: fired.append("b"))
        >>> loop.run_until(2.0)
        >>> fired
        ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(
        self, delay_s: float, action: Callable[[], None]
    ) -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay_s`` from now.

        Returns a handle whose ``cancelled`` flag can be set to skip it.

        Raises:
            ValueError: for negative delays.
        """
        if delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        event = _ScheduledEvent(
            time_s=self._now + delay_s,
            tie_breaker=next(self._counter),
            action=action,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    def step(self) -> bool:
        """Run the next event; returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_s
            event.action()
            return True
        return False

    def run_until(self, end_s: float) -> None:
        """Run all events with time <= ``end_s``; clock ends at ``end_s``."""
        if end_s < self._now:
            raise ValueError(
                f"cannot run backwards: now={self._now}, end={end_s}"
            )
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time_s > end_s:
                break
            self.step()
        self._now = end_s

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        Raises:
            RuntimeError: if ``max_events`` is exceeded (runaway loop).
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events"
                )
        return executed
