"""Experiment trace recording: per-query records to CSV/JSONL.

Lets experiments persist raw per-query observations (bitmap, errors,
timing) for offline analysis, mirroring how a real deployment would log
block-ACK captures.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.system import QueryResult


@dataclass(frozen=True)
class TraceRecord:
    """One query cycle flattened for serialization."""

    index: int
    detected: bool
    n_bits: int
    bit_errors: int
    cycle_s: float
    bitmap_hex: str
    ssn: int
    rx_power_at_tag_dbm: float

    @classmethod
    def from_result(cls, index: int, result: QueryResult) -> "TraceRecord":
        return cls(
            index=index,
            detected=result.detected,
            n_bits=result.n_bits,
            bit_errors=result.bit_errors,
            cycle_s=result.cycle_s,
            bitmap_hex=f"{result.block_ack.bitmap:016x}",
            ssn=result.block_ack.ssn,
            rx_power_at_tag_dbm=result.rx_power_at_tag_dbm,
        )


class TraceWriter:
    """Accumulates trace records and writes them to disk."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(self, result: QueryResult) -> TraceRecord:
        """Append one query result."""
        rec = TraceRecord.from_result(len(self._records), result)
        self._records.append(rec)
        return rec

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def write_csv(self, path: str | Path) -> int:
        """Write all records as CSV; returns the row count."""
        path = Path(path)
        fields = list(TraceRecord.__dataclass_fields__)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for rec in self._records:
                writer.writerow(asdict(rec))
        return len(self._records)

    def write_jsonl(self, path: str | Path) -> int:
        """Write all records as JSON lines; returns the row count."""
        path = Path(path)
        with path.open("w") as handle:
            for rec in self._records:
                handle.write(json.dumps(asdict(rec)) + "\n")
        return len(self._records)

    @staticmethod
    def read_jsonl(path: str | Path) -> list[TraceRecord]:
        """Load records back from a JSONL trace."""
        records = []
        with Path(path).open() as handle:
            for line in handle:
                if line.strip():
                    records.append(TraceRecord(**json.loads(line)))
        return records
