"""The paper's testbed floor plan (Figure 4) as a geometric model.

Figure 4 shows an 18 m x 7 m lab/office strip on a university campus.  The
LOS experiment (Figure 5) places AP and client 8 m apart in the lab with
the tag on the line between them.  The NLOS experiment (Figure 6) keeps
the tag 1 m from the client and moves the client to location A (~7 m from
the AP, one room over) and location B (~17 m, far end of the floor), with
the line of sight "obstructed by metal cabinets, concrete and wooden
walls, and doors" (§6.2).

Exact wall coordinates are not published; this reconstruction places
plausible walls so that A's path crosses one wooden wall plus a metal
cabinet (~22 dB extra loss) and B's path crosses those plus two more
partitions (~37 dB) — consistent with B's "significantly attenuated"
description and its higher measured BER.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import Material, PathProfile, Point, Wall, path_profile


@dataclass(frozen=True)
class FloorPlan:
    """A named floor plan: anchor points plus walls.

    Attributes:
        name: label for reports.
        width_m / height_m: bounding dimensions.
        anchors: named positions (e.g. "ap", "client_los", "client_A").
        walls: wall segments with materials.
    """

    name: str
    width_m: float
    height_m: float
    anchors: dict[str, Point]
    walls: tuple[Wall, ...]

    def anchor(self, name: str) -> Point:
        """Look up a named anchor.

        Raises:
            KeyError: for unknown anchors, listing the available names.
        """
        try:
            return self.anchors[name]
        except KeyError:
            raise KeyError(
                f"unknown anchor {name!r}; available: {sorted(self.anchors)}"
            ) from None

    def link(self, a: str, b: str) -> PathProfile:
        """Propagation profile between two named anchors."""
        return path_profile(self.anchor(a), self.anchor(b), self.walls)


def paper_testbed() -> FloorPlan:
    """The Figure 4 testbed: 18 m x 7 m with lab and office rooms.

    Anchors:
        * ``ap`` — the AP's position in the lab (x=1 m).
        * ``client_los`` — the LOS client, 8 m from the AP.
        * ``client_A`` — NLOS location A, ~7 m from the AP (next room).
        * ``client_B`` — NLOS location B, ~17 m (far end of the floor).
    """
    ap = Point(1.0, 3.5)
    return FloorPlan(
        name="paper-testbed (Fig. 4)",
        width_m=18.0,
        height_m=7.0,
        anchors={
            "ap": ap,
            "client_los": Point(9.0, 3.5),
            "client_A": Point(8.0, 3.2),
            "client_B": Point(17.9, 6.5),
        },
        walls=(
            # Wooden wall separating the lab from the adjoining office,
            # with a metal filing cabinet along it near the doorway.
            Wall(Point(6.0, 0.0), Point(6.0, 7.0), Material.WOOD),
            Wall(Point(6.05, 2.0), Point(6.05, 4.2), Material.METAL),
            # Concrete corridor wall mid-floor.
            Wall(Point(11.0, 0.0), Point(11.0, 7.0), Material.CONCRETE),
            # Drywall partition near the far offices.
            Wall(Point(15.0, 0.0), Point(15.0, 7.0), Material.DRYWALL),
        ),
    )


def los_testbed() -> FloorPlan:
    """An unobstructed 8 m link (the Figure 5 lab arrangement)."""
    return FloorPlan(
        name="LOS lab (Fig. 5)",
        width_m=10.0,
        height_m=7.0,
        anchors={"ap": Point(1.0, 3.5), "client_los": Point(9.0, 3.5)},
        walls=(),
    )
