"""System configuration for a WiTAG deployment.

Bundles every tunable of the end-to-end system — query-frame shape, PHY
rate, radio powers, encryption — with validation and derived quantities.
The defaults reproduce the paper's prototype operating point: 64-subframe
query A-MPDUs whose subframes are padded to one 50 kHz tag-clock period
(20 us) of airtime, which is precisely the regime that yields the paper's
~40 Kbps headline rate (see :mod:`repro.core.throughput`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..phy.constants import Band, MAX_AMPDU_SUBFRAMES
from ..phy.mcs import Mcs, ht_mcs
from ..phy.preamble import PhyFormat
from .errors import ConfigurationError


class EncryptionMode(enum.Enum):
    """Link encryption applied to query MPDU payloads.

    WiTAG is oblivious to all of these — the whole point of the paper —
    and the test suite proves it by running the same experiments under
    each mode.
    """

    OPEN = "open"
    WEP = "wep"
    WPA2_CCMP = "wpa2-ccmp"


@dataclass(frozen=True)
class WiTagConfig:
    """End-to-end configuration of a WiTAG deployment.

    Attributes:
        mcs: PHY rate of query A-MPDUs.  Should be the highest rate the
            client->AP link sustains with near-zero loss (paper §4.1).
        n_subframes: MPDUs per query A-MPDU (<= 64, the block-ACK window).
        n_trigger_subframes: leading subframes carrying the tag's trigger
            pattern (paper §7); not usable for data bits.
        tag_clock_hz: the tag's toggle clock; subframes are padded to an
            integer number of clock periods of airtime so the tag's cycle
            counting stays aligned (see ``repro.tag.timing``).
        band: operating band.
        channel_width_mhz: 20/40/80/160.
        short_gi: short guard interval on data symbols.
        phy_format: HT (802.11n) or VHT (802.11ac) framing.
        tx_power_dbm: client transmit power.
        encryption: link encryption mode.
        encryption_key: key material for WEP/CCMP modes.
    """

    mcs: Mcs = field(default_factory=lambda: ht_mcs(7))
    n_subframes: int = 64
    n_trigger_subframes: int = 2
    tag_clock_hz: float = 50e3
    band: Band = Band.GHZ_2_4
    channel_width_mhz: int = 20
    short_gi: bool = False
    phy_format: PhyFormat = PhyFormat.HT_MIXED
    tx_power_dbm: float = 15.0
    encryption: EncryptionMode = EncryptionMode.OPEN
    encryption_key: bytes = b"witag-repro-key!"

    def __post_init__(self) -> None:
        if not 1 <= self.n_subframes <= MAX_AMPDU_SUBFRAMES:
            raise ConfigurationError(
                f"n_subframes must be 1-{MAX_AMPDU_SUBFRAMES}, "
                f"got {self.n_subframes}"
            )
        if not 0 <= self.n_trigger_subframes < self.n_subframes:
            raise ConfigurationError(
                "trigger subframes must leave at least one payload subframe"
            )
        if self.tag_clock_hz <= 0:
            raise ConfigurationError("tag clock must be positive")
        if self.channel_width_mhz not in (20, 40, 80, 160):
            raise ConfigurationError(
                f"unsupported channel width {self.channel_width_mhz}"
            )
        if self.encryption is EncryptionMode.WEP:
            if len(self.encryption_key) not in (5, 13):
                raise ConfigurationError("WEP key must be 5 or 13 bytes")
        elif self.encryption is EncryptionMode.WPA2_CCMP:
            if len(self.encryption_key) != 16:
                raise ConfigurationError("CCMP key must be 16 bytes")

    @property
    def bits_per_query(self) -> int:
        """Tag data bits carried by one query A-MPDU."""
        return self.n_subframes - self.n_trigger_subframes

    @property
    def tag_clock_period_s(self) -> float:
        """One tag clock period — the subframe airtime quantum."""
        return 1.0 / self.tag_clock_hz
