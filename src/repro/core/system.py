"""The end-to-end WiTAG system simulator.

Wires every substrate together into the paper's Figure 2 loop:

1. the **client** builds a query A-MPDU (``repro.core.query``) and contends
   for the channel (``repro.mac.csma``);
2. the **tag** detects the trigger, synchronises and toggles its antenna
   per queued data bit (``repro.tag.state_machine``);
3. the **channel + AP receiver** decide each subframe's fate
   (``repro.phy.error_model``), including the consequences of tag timing
   misalignment (a toggle that slips out of its window corrupts a
   neighbouring subframe too);
4. the **AP** — which contains zero WiTAG-specific code — records
   successes on a standard block-ACK scoreboard and answers with a block
   ACK (``repro.mac.block_ack``);
5. the **reader** on the client recovers tag bits from the bitmap
   (``repro.core.decoder``).

The simulator exposes one-query granularity (:meth:`WiTagSystem.run_query`)
for microscopic tests, and the session layer (``repro.core.session``) for
minute-long BER/throughput experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

from ..mac.addresses import MacAddress
from ..mac.block_ack import BlockAck, BlockAckScoreboard, build_block_ack
from ..mac.csma import ContentionModel
from ..perf import StageCounters
from ..phy.channel import TagState
from ..phy.error_model import FadingBatch, FadingSample, LinkErrorModel
from ..phy.fading import CorrelatedFadingChannel
from ..seeding import component_rng
from ..tag.state_machine import QueryObservation, TagStateMachine
from .config import WiTagConfig
from .decoder import raw_bits_from_block_ack
from .query import QueryBuilder, QueryFrame
from .throughput import block_ack_airtime_s

Bits = list[int]

DEFAULT_CLIENT = MacAddress.parse("02:57:49:54:41:47")  # 'WITAG'
DEFAULT_AP = MacAddress.parse("02:41:50:00:00:01")


@dataclass(frozen=True)
class QueryResult:
    """Everything observable about one query cycle.

    Attributes:
        query: the transmitted query frame.
        block_ack: the AP's response.
        detected: whether the tag recognised the trigger.
        sent_bits: bits the tag attempted to transmit this cycle.
        received_bits: raw bits the reader extracted for those positions.
        cycle_s: wall-clock duration of the cycle (access + PPDU + SIFS +
            block ACK).
        rx_power_at_tag_dbm: query signal power at the tag.
    """

    query: QueryFrame
    block_ack: BlockAck
    detected: bool
    sent_bits: tuple[int, ...]
    received_bits: tuple[int, ...]
    cycle_s: float
    rx_power_at_tag_dbm: float

    @property
    def bit_errors(self) -> int:
        """Hamming distance between sent and received bits."""
        return sum(
            1 for a, b in zip(self.sent_bits, self.received_bits) if a != b
        )

    @property
    def n_bits(self) -> int:
        return len(self.sent_bits)


@dataclass
class WiTagSystem:
    """A complete client/tag/AP deployment.

    Attributes:
        config: system configuration.
        error_model: channel + receiver decode model (carries geometry).
        tag: the tag's behavioural model.
        contention: optional CSMA contention model (idle channel when
            omitted — access time is DIFS + mean backoff).
        temperature_c: ambient temperature seen by the tag's oscillator.
        client / ap: MAC addresses used on the air.
        fading_channel: optional temporally correlated fading process
            (:class:`repro.phy.fading.CorrelatedFadingChannel`); when set,
            each query cycle advances it by the cycle duration instead of
            drawing independent fading per query.
        rng: randomness for subframe outcome draws.
        phy_fast_path: decode each A-MPDU through the vectorized batch
            API (:meth:`LinkErrorModel.subframe_outcomes`) instead of the
            scalar per-subframe reference loop.  Both draw randomness in
            the same order; the fast path differs only by the coded-BER
            interpolation table (~1e-3 relative), so flipping this flag
            changes individual subframe outcomes with probability ~1e-6.
        phy_exact_coding: make the vectorized paths (per-query and
            session-batch) evaluate the coded-BER union bound exactly
            instead of via the interpolated table.  Slower, but outcome
            draws become bitwise-identical to the scalar reference loop
            — the equivalence suites run with this enabled.
        counters: cumulative per-stage wall-clock of the query cycle
            (``query-build``, ``tag-fsm``, ``phy-decode``, ``mac-ba``).
        telemetry: optional :class:`repro.obs.Telemetry`.  Usually wired
            via :meth:`repro.obs.Telemetry.attach` (which also hooks the
            error model, tag FSM and scoreboard); passing one at
            construction attaches it for you.  ``None`` (the default)
            costs one ``is None`` check per query.
    """

    config: WiTagConfig
    error_model: LinkErrorModel
    tag: TagStateMachine = field(default_factory=TagStateMachine)
    contention: ContentionModel | None = None
    temperature_c: float = 25.0
    client: MacAddress = DEFAULT_CLIENT
    ap: MacAddress = DEFAULT_AP
    fading_channel: CorrelatedFadingChannel | None = None
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("system")
    )
    phy_fast_path: bool = True
    phy_exact_coding: bool = False
    counters: StageCounters = field(default_factory=StageCounters, repr=False)
    telemetry: "Telemetry | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.builder = QueryBuilder(self.config, self.client, self.ap)
        self._scoreboard = BlockAckScoreboard()
        self._last_cycle_s = 0.0
        wavelength = self.config.band.wavelength_m
        loss_db = self.error_model.channel.tx_tag_loss.path_loss_db(
            self.error_model.channel.geometry.tx_tag_m, wavelength
        )
        self._rx_at_tag_dbm = self.error_model.tx_power_dbm - loss_db
        if self.telemetry is not None:
            self.telemetry.attach(self)

    @property
    def rx_power_at_tag_dbm(self) -> float:
        """Query signal power at the tag's antenna."""
        return self._rx_at_tag_dbm

    def load_tag_bits(self, bits: Bits) -> None:
        """Queue data bits on the tag."""
        self.tag.load_bits(bits)

    def _access_delay_s(self) -> float:
        if self.contention is not None:
            return self.contention.sample_access_delay_s()
        sifs = self.config.band.sifs_s
        difs = sifs + 2 * 9e-6
        return difs + 7.5 * 9e-6  # mean CWmin/2 backoff on an idle channel

    def _effective_states(self, transmission, query: QueryFrame) -> list[TagState]:
        """Apply timing-misalignment collateral to the tag's state plan.

        A misaligned toggle still corrupts (most of) its target subframe —
        corruption needs only part of the subframe to see a changed
        channel — but additionally spills into one neighbour, corrupting
        it as well.  The neighbour is chosen uniformly (drift sign is
        unknown to the reader).
        """
        states = list(transmission.states)
        zero_state = self.tag.design.state_for_bit_zero
        for j, aligned in enumerate(transmission.toggles_aligned):
            if aligned or transmission.bits_loaded[j] != 0:
                continue
            k = query.n_trigger_subframes + j
            neighbour = k + (1 if self.rng.random() < 0.5 else -1)
            if 0 <= neighbour < len(states):
                states[neighbour] = zero_state
        return states

    def run_query(self) -> QueryResult:
        """Execute one full query cycle (paper Figure 2, steps 1 and 2)."""
        with self.counters.timed("query-build"):
            query = self.builder.build()
        access_s = self._access_delay_s()
        observation = QueryObservation(
            n_subframes=query.n_subframes,
            n_trigger_subframes=query.n_trigger_subframes,
            subframe_s=query.mean_subframe_s,
            rx_power_dbm=self._rx_at_tag_dbm,
            temperature_c=self.temperature_c,
        )
        with self.counters.timed("tag-fsm"):
            transmission = self.tag.process_query(observation)
            states = self._effective_states(transmission, query)
        preamble_state = self.tag.design.state_for_bit_one
        if self.fading_channel is not None:
            self.fading_channel.advance(self._last_cycle_s)
            fading = FadingSample(
                direct_gain=self.fading_channel.direct_gain(),
                tag_fading=self.fading_channel.tag_fading(),
            )
        else:
            fading = self.error_model.sample_fading()

        self._scoreboard.reset(query.ssn)
        with self.counters.timed("phy-decode"):
            if self.phy_fast_path:
                outcomes = self.error_model.subframe_outcomes(
                    [8 * len(mpdu) for mpdu in query.mpdus],
                    preamble_state,
                    [states[index] for index in range(len(query.mpdus))],
                    fading,
                    exact_coding=self.phy_exact_coding,
                )
            else:
                outcomes = [
                    self.error_model.subframe_outcome(
                        8 * len(mpdu), preamble_state, states[index], fading
                    )
                    for index, mpdu in enumerate(query.mpdus)
                ]
        for index, ok in enumerate(outcomes):
            if ok:
                sequence = (query.ssn + index) % 4096
                self._scoreboard.record(sequence)
        with self.counters.timed("mac-ba"):
            block_ack = build_block_ack(self._scoreboard, self.client, self.ap)

            raw = raw_bits_from_block_ack(block_ack, query)
        n_sent = len(transmission.bits_loaded)
        cycle_s = (
            access_s
            + query.airtime_s
            + self.config.band.sifs_s
            + block_ack_airtime_s()
        )
        self._last_cycle_s = cycle_s
        result = QueryResult(
            query=query,
            block_ack=block_ack,
            detected=transmission.detected,
            sent_bits=transmission.bits_loaded,
            received_bits=tuple(raw[:n_sent]),
            cycle_s=cycle_s,
            rx_power_at_tag_dbm=self._rx_at_tag_dbm,
        )
        if self.telemetry is not None:
            self.telemetry.on_query(
                result,
                n_failed=int(len(outcomes)) - int(sum(outcomes)),
                states=states,
                fading=fading,
            )
        return result

    def run_queries(self, count: int) -> list[QueryResult]:
        """Run ``count`` consecutive query cycles."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.run_query() for _ in range(count)]

    def run_queries_batch(
        self,
        count: int,
        *,
        load_bits: Callable[[], None] | None = None,
    ) -> list[QueryResult]:
        """Run ``count`` query cycles as one 2-D numpy computation.

        Functionally identical to :meth:`run_queries` — same
        :class:`QueryResult` list, same per-component RNG consumption —
        but the per-query Python loop is reduced to a cheap prologue
        (query build via the memoized builder, contention draw, tag FSM
        with vectorized alignment draws) while all PHY decode work runs
        as a single ``(count, n_subframes)`` matrix pass through
        :meth:`LinkErrorModel.subframe_outcomes_batch2d`, and block-ACK
        bitmaps fall out of one ``np.packbits``.

        Determinism contract: each simulation component owns its own
        generator, and this method consumes each component's stream in
        exactly the scalar per-query order — so for a given seed the
        results are bitwise identical to :meth:`run_queries` up to the
        coded-BER table (and fully identical with
        ``phy_exact_coding=True``), for any chunking of ``count``.

        Args:
            load_bits: optional callback invoked once per query before
                the tag processes it — the session layer uses this to
                top up the tag's data queue from the session generator
                in scalar order.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return []
        builder = self.builder
        sifs = self.config.band.sifs_s
        ba_airtime_s = block_ack_airtime_s()

        with self.counters.timed("query-build", count):
            frames = [builder.build_fast() for _ in range(count)]
        access = [self._access_delay_s() for _ in range(count)]

        # Fading next: the channel / fading generators are consumed one
        # query cycle at a time in the scalar loop, and nothing else
        # shares their streams, so the whole chunk can be drawn up front.
        if self.fading_channel is not None:
            # The correlated process advances by the previous cycle's
            # duration, which is fully determined by the access draw and
            # the frame airtime — both already known.
            dts = []
            previous = self._last_cycle_s
            for q in range(count):
                dts.append(previous)
                previous = (
                    access[q] + frames[q].airtime_s + sifs + ba_airtime_s
                )
            direct, tag_fade = self.fading_channel.sample_batch(dts)
            fading = FadingBatch(direct_gains=direct, tag_fadings=tag_fade)
        else:
            fading = self.error_model.sample_fading_batch(count)

        preamble_state = self.tag.design.state_for_bit_one
        state_rows: list[list[TagState]] = []
        transmissions = []
        with self.counters.timed("tag-fsm", count):
            for frame in frames:
                if load_bits is not None:
                    load_bits()
                observation = QueryObservation(
                    n_subframes=frame.n_subframes,
                    n_trigger_subframes=frame.n_trigger_subframes,
                    subframe_s=frame.mean_subframe_s,
                    rx_power_dbm=self._rx_at_tag_dbm,
                    temperature_c=self.temperature_c,
                )
                transmission = self.tag.process_query_fast(observation)
                transmissions.append(transmission)
                state_rows.append(self._effective_states(transmission, frame))

        # MPDU sizes are fixed by the builder's byte plan, so one row
        # serves every query in the chunk.
        mpdu_bits = [8 * len(mpdu) for mpdu in frames[0].mpdus]
        with self.counters.timed("phy-decode", count):
            outcomes = self.error_model.subframe_outcomes_batch2d(
                mpdu_bits,
                preamble_state,
                state_rows,
                fading,
                exact_coding=self.phy_exact_coding,
            )

        results: list[QueryResult] = []
        with self.counters.timed("mac-ba", count):
            outcome_matrix = np.ascontiguousarray(outcomes)
            packed = np.packbits(
                outcome_matrix, axis=1, bitorder="little"
            )
            # Every block ACK below is built with ``ssn == frame.ssn``,
            # so the reader's bitmap offset is zero and
            # ``raw_bits_from_block_ack`` reduces to the outcome row
            # past the trigger subframes — slice it directly instead of
            # re-extracting 64 bits from the bitmap per query.
            raw_rows = outcome_matrix.astype(np.uint8).tolist()
            tel = self.telemetry
            if tel is not None:
                row_true = outcome_matrix.sum(axis=1)
                n_subframes = outcome_matrix.shape[1]
            for q, frame in enumerate(frames):
                bitmap = int.from_bytes(packed[q].tobytes(), "little")
                block_ack = BlockAck(
                    receiver=self.client,
                    transmitter=self.ap,
                    ssn=frame.ssn,
                    bitmap=bitmap,
                )
                raw = raw_rows[q][frame.n_trigger_subframes :]
                transmission = transmissions[q]
                n_sent = len(transmission.bits_loaded)
                cycle_s = (
                    access[q] + frame.airtime_s + sifs + ba_airtime_s
                )
                result = QueryResult(
                    query=frame,
                    block_ack=block_ack,
                    detected=transmission.detected,
                    sent_bits=transmission.bits_loaded,
                    received_bits=tuple(raw[:n_sent]),
                    cycle_s=cycle_s,
                    rx_power_at_tag_dbm=self._rx_at_tag_dbm,
                )
                results.append(result)
                if tel is not None:
                    tel.on_query(
                        result,
                        n_failed=int(n_subframes - row_true[q]),
                        states=state_rows[q],
                        fading=fading.sample(q),
                    )

        # Leave the mutable MAC state exactly as the scalar loop would:
        # the scoreboard holds the last query's outcomes, and the next
        # fading advance uses the last cycle duration.  The trailing
        # replay fires the scoreboard's own telemetry hooks for the last
        # query; the bulk hook accounts for the count-1 resets and the
        # records of the earlier queries the batch path elides, so
        # scoreboard counters match the scalar loop exactly.
        if self.telemetry is not None:
            total_true = int(outcome_matrix.sum())
            last_true = int(outcome_matrix[-1].sum())
            self.telemetry.on_scoreboard_bulk(
                records=total_true - last_true, resets=count - 1
            )
        last_frame = frames[-1]
        self._scoreboard.reset(last_frame.ssn)
        for index, ok in enumerate(outcomes[-1]):
            if ok:
                self._scoreboard.record((last_frame.ssn + index) % 4096)
        self._last_cycle_s = results[-1].cycle_s
        return results
