"""Exception hierarchy for the WiTAG core library."""

from __future__ import annotations


class WiTagError(Exception):
    """Base class for all WiTAG library errors."""


class ConfigurationError(WiTagError):
    """A system configuration is inconsistent or out of range."""


class FramingError(WiTagError):
    """A tag message could not be framed or deframed."""


class DecodeError(WiTagError):
    """Tag data could not be recovered from block-ACK bits."""


class FecError(WiTagError):
    """Forward-error-correction encode/decode failure."""
