"""Forward error correction for tag messages.

Paper §4.1 closes with: "WiTAG requires a mechanism to detect and correct
possible errors, which is a topic of future work."  This module implements
that future work: codes suited to a tag whose encoder must run on
microwatts (encoding is table-lookup simple; the heavy decoding happens on
the WiFi client):

* **repetition-N** — trivial majority vote, robust, rate 1/N;
* **Hamming(7,4)** — single-error-correcting, rate 4/7;
* **block interleaving** — spreads burst errors (e.g. a missed trigger or
  a fade spanning neighbouring subframes) across codewords;
* **Reed–Solomon over GF(256)** — byte-symbol block code correcting
  ``nsym // 2`` symbol errors per block, the workhorse of GuardRider's
  rate-adapted backscatter coding (arXiv 1912.06493);
* **LT fountain code** — rateless XOR code (robust-soliton degrees)
  whose decoder succeeds from *any* subset of received symbols whose
  combination matrix has full rank — the FlexScatter-style adaptive
  layer (arXiv 2412.08982).

All codecs work on bit lists (the natural currency of block-ACK bitmaps).
The adaptive redundancy ladder that picks among these at run time lives
in :class:`repro.core.rate_control.RedundancyController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .errors import FecError

Bits = list[int]


def _check_bits(bits: Bits) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise FecError(f"bits must be 0/1, got {bit!r}")


class Code:
    """Interface for bit-level codecs."""

    #: code rate (information bits / coded bits)
    rate: float

    def encode(self, bits: Bits) -> Bits:
        raise NotImplementedError

    def decode(self, bits: Bits) -> Bits:
        raise NotImplementedError


@dataclass(frozen=True)
class NoCode(Code):
    """Identity code (uncoded baseline)."""

    rate: float = 1.0

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return list(bits)

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return list(bits)


@dataclass(frozen=True)
class RepetitionCode(Code):
    """Repeat each bit ``n`` times; decode by majority vote."""

    n: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.n % 2 == 0:
            raise FecError(
                f"repetition factor must be odd and >= 1, got {self.n}"
            )

    @property
    def rate(self) -> float:  # type: ignore[override]
        return 1.0 / self.n

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return [bit for bit in bits for _ in range(self.n)]

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.n:
            raise FecError(
                f"coded length {len(bits)} not a multiple of {self.n}"
            )
        out: Bits = []
        for i in range(0, len(bits), self.n):
            out.append(1 if sum(bits[i : i + self.n]) * 2 > self.n else 0)
        return out


#: Hamming(7,4) generator: codeword = [d1 d2 d3 d4 p1 p2 p3].
_H_PARITY = (
    (0, 1, 2),  # p1 = d1 ^ d2 ^ d3
    (1, 2, 3),  # p2 = d2 ^ d3 ^ d4
    (0, 1, 3),  # p3 = d1 ^ d2 ^ d4
)


@dataclass(frozen=True)
class HammingCode(Code):
    """Hamming(7,4): corrects any single bit error per 7-bit codeword."""

    rate: float = 4.0 / 7.0

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % 4:
            raise FecError(f"data length {len(bits)} not a multiple of 4")
        out: Bits = []
        for i in range(0, len(bits), 4):
            data = bits[i : i + 4]
            parity = [
                data[a] ^ data[b] ^ data[c] for a, b, c in _H_PARITY
            ]
            out.extend(data + parity)
        return out

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % 7:
            raise FecError(f"coded length {len(bits)} not a multiple of 7")
        out: Bits = []
        for i in range(0, len(bits), 7):
            word = list(bits[i : i + 7])
            syndrome = 0
            for p_index, (a, b, c) in enumerate(_H_PARITY):
                expected = word[a] ^ word[b] ^ word[c]
                if expected != word[4 + p_index]:
                    syndrome |= 1 << p_index
            if syndrome:
                flip = _SYNDROME_TO_POSITION.get(syndrome)
                if flip is not None:
                    word[flip] ^= 1
            out.extend(word[:4])
        return out


def _build_syndrome_map() -> dict[int, int]:
    """Map each single-bit-error syndrome to the erroneous position."""
    mapping: dict[int, int] = {}
    for position in range(7):
        word = [0] * 7
        word[position] = 1
        syndrome = 0
        for p_index, (a, b, c) in enumerate(_H_PARITY):
            expected = word[a] ^ word[b] ^ word[c]
            if expected != word[4 + p_index]:
                syndrome |= 1 << p_index
        mapping[syndrome] = position
    return mapping


_SYNDROME_TO_POSITION = _build_syndrome_map()


@dataclass(frozen=True)
class BlockInterleaver:
    """Row-in, column-out block interleaver of given depth."""

    depth: int = 8

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise FecError(f"depth must be >= 1, got {self.depth}")

    def interleave(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.depth:
            raise FecError(
                f"length {len(bits)} not a multiple of depth {self.depth}"
            )
        rows = len(bits) // self.depth
        return [
            bits[r * self.depth + c]
            for c in range(self.depth)
            for r in range(rows)
        ]

    def deinterleave(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.depth:
            raise FecError(
                f"length {len(bits)} not a multiple of depth {self.depth}"
            )
        rows = len(bits) // self.depth
        out = [0] * len(bits)
        i = 0
        for c in range(self.depth):
            for r in range(rows):
                out[r * self.depth + c] = bits[i]
                i += 1
        return out


@dataclass(frozen=True)
class InterleavedCode(Code):
    """A base code wrapped in a block interleaver."""

    inner: Code
    interleaver: BlockInterleaver

    @property
    def rate(self) -> float:  # type: ignore[override]
        return self.inner.rate

    def encode(self, bits: Bits) -> Bits:
        coded = self.inner.encode(bits)
        pad = (-len(coded)) % self.interleaver.depth
        return self.interleaver.interleave(coded + [0] * pad)

    def decode(self, bits: Bits) -> Bits:
        coded = self.interleaver.deinterleave(bits)
        usable = len(coded)
        if isinstance(self.inner, HammingCode):
            usable -= usable % 7
        elif isinstance(self.inner, RepetitionCode):
            usable -= usable % self.inner.n
        return self.inner.decode(coded[:usable])


# ---------------------------------------------------------------------------
# GF(256) arithmetic (primitive polynomial 0x11d, generator alpha = 2)
# ---------------------------------------------------------------------------


def _build_gf_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] - _GF_LOG[b]) % 255]


def _gf_pow(x: int, power: int) -> int:
    return _GF_EXP[(_GF_LOG[x] * power) % 255]


def _gf_inv(x: int) -> int:
    return _GF_EXP[255 - _GF_LOG[x]]


def _poly_scale(p: list[int], x: int) -> list[int]:
    return [_gf_mul(c, x) for c in p]


def _poly_add(p: list[int], q: list[int]) -> list[int]:
    out = [0] * max(len(p), len(q))
    for i, c in enumerate(p):
        out[i + len(out) - len(p)] = c
    for i, c in enumerate(q):
        out[i + len(out) - len(q)] ^= c
    return out


def _poly_mul(p: list[int], q: list[int]) -> list[int]:
    out = [0] * (len(p) + len(q) - 1)
    for i, pc in enumerate(p):
        if pc:
            for j, qc in enumerate(q):
                out[i + j] ^= _gf_mul(pc, qc)
    return out


def _poly_eval(p: list[int], x: int) -> int:
    y = p[0]
    for c in p[1:]:
        y = _gf_mul(y, x) ^ c
    return y


def _rs_generator_poly(nsym: int) -> list[int]:
    g = [1]
    for i in range(nsym):
        g = _poly_mul(g, [1, _gf_pow(2, i)])
    return g


def _rs_encode_block(data: list[int], gen: list[int]) -> list[int]:
    """Systematic RS encode: data followed by the division remainder."""
    res = list(data) + [0] * (len(gen) - 1)
    for i in range(len(data)):
        coef = res[i]
        if coef:
            for j in range(1, len(gen)):
                res[i + j] ^= _gf_mul(gen[j], coef)
    return list(data) + res[len(data) :]


def _rs_error_locator(synd: list[int], nsym: int) -> list[int]:
    """Berlekamp–Massey: the error-locator polynomial from syndromes."""
    err_loc = [1]
    old_loc = [1]
    for i in range(nsym):
        old_loc.append(0)
        delta = synd[i]
        for j in range(1, len(err_loc)):
            delta ^= _gf_mul(err_loc[-(j + 1)], synd[i - j])
        if delta:
            if len(old_loc) > len(err_loc):
                new_loc = _poly_scale(old_loc, delta)
                old_loc = _poly_scale(err_loc, _gf_inv(delta))
                err_loc = new_loc
            err_loc = _poly_add(err_loc, _poly_scale(old_loc, delta))
    while err_loc and err_loc[0] == 0:
        err_loc = err_loc[1:]
    return err_loc


def _rs_correct_block(block: list[int], nsym: int) -> tuple[list[int], bool]:
    """Correct up to ``nsym // 2`` symbol errors; (corrected, ok).

    On an uncorrectable block the input is returned unchanged with
    ``ok=False`` (best effort — the systematic data symbols are still
    the decoder's least-bad guess).
    """
    synd = [_poly_eval(block, _gf_pow(2, i)) for i in range(nsym)]
    if max(synd) == 0:
        return block, True
    err_loc = _rs_error_locator(synd, nsym)
    n_errors = len(err_loc) - 1
    if n_errors * 2 > nsym:
        return block, False
    # Chien search: roots of the (reversed) locator give positions.
    n = len(block)
    positions = [
        n - 1 - i
        for i in range(n)
        if _poly_eval(err_loc[::-1], _gf_pow(2, i)) == 0
    ]
    if len(positions) != n_errors:
        return block, False
    # Forney: error magnitudes at the located positions.
    coef_pos = [n - 1 - p for p in positions]
    errata_loc = [1]
    for p in coef_pos:
        errata_loc = _poly_mul(errata_loc, _poly_add([1], [_gf_pow(2, p), 0]))
    # The syndrome polynomial carries a constant-term 0 pad (syndromes
    # are the coefficients of x^1..x^nsym): reversed, the pad trails.
    err_eval = _poly_mul(synd[::-1] + [0], errata_loc)
    err_eval = err_eval[len(err_eval) - len(errata_loc) :]
    xs = [_gf_pow(2, -(255 - p)) for p in coef_pos]
    corrected = list(block)
    for i, xi in enumerate(xs):
        xi_inv = _gf_inv(xi)
        loc_prime = 1
        for j, xj in enumerate(xs):
            if j != i:
                loc_prime = _gf_mul(loc_prime, 1 ^ _gf_mul(xi_inv, xj))
        if loc_prime == 0:
            return block, False
        y = _gf_mul(xi, _poly_eval(err_eval, xi_inv))
        corrected[positions[i]] ^= _gf_div(y, loc_prime)
    if any(
        _poly_eval(corrected, _gf_pow(2, i)) for i in range(nsym)
    ):  # pragma: no cover - defensive
        return block, False
    return corrected, True


def _bits_to_bytes(bits: Bits) -> list[int]:
    out = []
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return out


def _bytes_to_bits(values: list[int]) -> Bits:
    out: Bits = []
    for byte in values:
        out.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
    return out


@dataclass(frozen=True)
class ReedSolomonCode(Code):
    """Reed–Solomon over GF(256): ``k`` data + ``nsym`` parity bytes.

    Corrects any ``nsym // 2`` corrupted *bytes* per block — burst
    friendly, since a byte absorbs up to 8 neighbouring bit errors.
    Data lengths must be multiples of ``8 * k`` bits; coded blocks are
    ``8 * (k + nsym)`` bits.  Uncorrectable blocks decode best-effort
    (the systematic data bytes pass through) and are flagged by
    :meth:`decode_blocks` — the feedback signal the adaptive
    redundancy controller consumes.
    """

    k: int = 16
    nsym: int = 8

    def __post_init__(self) -> None:
        if self.k < 1:
            raise FecError(f"k must be >= 1, got {self.k}")
        if self.nsym < 2:
            raise FecError(f"nsym must be >= 2, got {self.nsym}")
        if self.k + self.nsym > 255:
            raise FecError(
                f"block length {self.k + self.nsym} exceeds GF(256) limit 255"
            )

    @property
    def rate(self) -> float:  # type: ignore[override]
        return self.k / (self.k + self.nsym)

    @property
    def correctable_symbols(self) -> int:
        """Guaranteed-correctable byte errors per block."""
        return self.nsym // 2

    @cached_property
    def _generator(self) -> list[int]:
        return _rs_generator_poly(self.nsym)

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % (8 * self.k):
            raise FecError(
                f"data length {len(bits)} not a multiple of {8 * self.k}"
            )
        data = _bits_to_bytes(bits)
        out: list[int] = []
        for i in range(0, len(data), self.k):
            out.extend(
                _rs_encode_block(data[i : i + self.k], self._generator)
            )
        return _bytes_to_bits(out)

    def decode(self, bits: Bits) -> Bits:
        decoded, _ = self.decode_blocks(bits)
        return decoded

    def decode_blocks(self, bits: Bits) -> tuple[Bits, list[bool]]:
        """Decode; returns (data bits, per-block corrected-OK flags)."""
        _check_bits(bits)
        n = self.k + self.nsym
        if len(bits) % (8 * n):
            raise FecError(
                f"coded length {len(bits)} not a multiple of {8 * n}"
            )
        coded = _bits_to_bytes(bits)
        data: list[int] = []
        flags: list[bool] = []
        for i in range(0, len(coded), n):
            corrected, ok = _rs_correct_block(coded[i : i + n], self.nsym)
            data.extend(corrected[: self.k])
            flags.append(ok)
        return _bytes_to_bits(data), flags


# ---------------------------------------------------------------------------
# LT fountain code
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LtCode(Code):
    """LT fountain code: rateless XOR combinations of message symbols.

    The message is ``k`` symbols of ``symbol_bits`` bits; each encoded
    symbol XORs a pseudo-random neighbour set whose size follows the
    robust-soliton distribution.  Neighbour sets derive deterministically
    from ``seed`` and the symbol index, so encoder and decoder agree
    without side information, and *any* subset of received symbols whose
    combination matrix reaches rank ``k`` decodes exactly (the decoder
    runs GF(2) Gaussian elimination, so sufficiency is rank, not
    peeling luck).

    On the bit interface each encoded symbol carries one even-parity
    bit; symbols failing parity on decode are treated as erasures and
    dropped before elimination — this is how a fountain code built for
    erasure channels survives WiTAG's bit-flip channel.
    """

    k: int = 32
    symbol_bits: int = 8
    overhead: float = 0.5
    seed: int = 0
    soliton_c: float = 0.1
    soliton_delta: float = 0.5
    parity: bool = True

    def __post_init__(self) -> None:
        if self.k < 2:
            raise FecError(f"k must be >= 2, got {self.k}")
        if self.symbol_bits < 1:
            raise FecError(
                f"symbol_bits must be >= 1, got {self.symbol_bits}"
            )
        if self.overhead < 0.0:
            raise FecError(f"overhead must be >= 0, got {self.overhead}")
        if self.soliton_c <= 0.0 or not 0.0 < self.soliton_delta < 1.0:
            raise FecError("need soliton_c > 0 and soliton_delta in (0, 1)")

    @property
    def n_symbols(self) -> int:
        """Encoded symbols emitted per generation."""
        return self.k + max(1, int(np.ceil(self.k * self.overhead)))

    @property
    def _unit_bits(self) -> int:
        return self.symbol_bits + (1 if self.parity else 0)

    @property
    def rate(self) -> float:  # type: ignore[override]
        return (self.k * self.symbol_bits) / (
            self.n_symbols * self._unit_bits
        )

    @cached_property
    def _degree_cdf(self) -> np.ndarray:
        """Robust-soliton degree CDF over degrees 1..k."""
        k = self.k
        rho = np.zeros(k + 1)
        rho[1] = 1.0 / k
        for d in range(2, k + 1):
            rho[d] = 1.0 / (d * (d - 1))
        big_r = self.soliton_c * np.log(k / self.soliton_delta) * np.sqrt(k)
        tau = np.zeros(k + 1)
        spike = max(1, min(k, int(round(k / max(big_r, 1.0)))))
        for d in range(1, spike):
            tau[d] = big_r / (d * k)
        tau[spike] = big_r * np.log(big_r / self.soliton_delta) / k
        tau = np.maximum(tau, 0.0)
        pmf = rho + tau
        pmf /= pmf.sum()
        return np.cumsum(pmf[1:])

    def neighbours(self, index: int) -> tuple[int, ...]:
        """The message-symbol indices XORed into encoded symbol ``index``.

        A pure function of ``(seed, index)`` — the shared randomness
        contract between encoder and decoder.
        """
        if index < 0:
            raise FecError(f"symbol index must be >= 0, got {index}")
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(index,))
        )
        cdf = self._degree_cdf
        degree = int(np.searchsorted(cdf, rng.random(), side="right")) + 1
        degree = min(degree, self.k)
        chosen = rng.choice(self.k, size=degree, replace=False)
        return tuple(int(i) for i in chosen)

    # -- symbol-level API (the rateless face) --------------------------

    def encode_symbols(
        self, message_bits: Bits, indices: "list[int] | None" = None
    ) -> list[int]:
        """Encode one generation into integer symbol values.

        Args:
            message_bits: exactly ``k * symbol_bits`` bits.
            indices: which encoded symbols to produce (default
                ``range(n_symbols)``); being rateless, any index is
                valid — ask for more symbols to add redundancy.
        """
        _check_bits(message_bits)
        if len(message_bits) != self.k * self.symbol_bits:
            raise FecError(
                f"message must be {self.k * self.symbol_bits} bits, "
                f"got {len(message_bits)}"
            )
        symbols = [
            int(
                "".join(
                    str(b)
                    for b in message_bits[
                        i * self.symbol_bits : (i + 1) * self.symbol_bits
                    ]
                ),
                2,
            )
            for i in range(self.k)
        ]
        if indices is None:
            indices = list(range(self.n_symbols))
        out = []
        for index in indices:
            value = 0
            for neighbour in self.neighbours(index):
                value ^= symbols[neighbour]
            out.append(value)
        return out

    def decode_symbols(
        self, received: dict[int, int]
    ) -> tuple[Bits, bool]:
        """Decode one generation from any subset of received symbols.

        Args:
            received: encoded-symbol index -> integer value.

        Returns:
            ``(message_bits, ok)``; ``ok`` is True iff the subset's
            combination matrix reached rank ``k`` (unresolved message
            symbols decode as zeros).
        """
        rows: list[tuple[int, int]] = []  # (neighbour mask, value)
        for index in sorted(received):
            mask = 0
            for neighbour in self.neighbours(index):
                mask |= 1 << neighbour
            rows.append((mask, int(received[index])))
        # GF(2) Gaussian elimination over bitmask rows.
        pivots: dict[int, tuple[int, int]] = {}
        for mask, value in rows:
            while mask:
                col = mask.bit_length() - 1
                if col not in pivots:
                    pivots[col] = (mask, value)
                    break
                p_mask, p_value = pivots[col]
                mask ^= p_mask
                value ^= p_value
        ok = len(pivots) == self.k
        symbols = [0] * self.k
        # Ascending column order: a pivot row's non-pivot bits all sit
        # below its pivot, so lower symbols are already resolved.
        for col in sorted(pivots):
            mask, value = pivots[col]
            rest = mask & ~(1 << col)
            while rest:
                other = rest.bit_length() - 1
                value ^= symbols[other]
                rest &= ~(1 << other)
            symbols[col] = value
        bits: Bits = []
        for value in symbols:
            bits.extend(
                (value >> shift) & 1
                for shift in range(self.symbol_bits - 1, -1, -1)
            )
        return bits, ok

    # -- bit-level Code interface --------------------------------------

    def encode(self, bits: Bits) -> Bits:
        """Encode generations of ``k * symbol_bits`` bits each."""
        _check_bits(bits)
        gen_bits = self.k * self.symbol_bits
        if len(bits) % gen_bits:
            raise FecError(
                f"data length {len(bits)} not a multiple of {gen_bits}"
            )
        out: Bits = []
        for start in range(0, len(bits), gen_bits):
            values = self.encode_symbols(bits[start : start + gen_bits])
            for value in values:
                symbol_bits = [
                    (value >> shift) & 1
                    for shift in range(self.symbol_bits - 1, -1, -1)
                ]
                out.extend(symbol_bits)
                if self.parity:
                    out.append(sum(symbol_bits) & 1)
        return out

    def decode(self, bits: Bits) -> Bits:
        decoded, _ = self.decode_blocks(bits)
        return decoded

    def decode_blocks(self, bits: Bits) -> tuple[Bits, list[bool]]:
        """Decode; returns (message bits, per-generation OK flags).

        Symbols whose parity check fails are treated as erasures;
        the generation still decodes if the surviving symbols span
        all ``k`` message symbols.
        """
        _check_bits(bits)
        unit = self._unit_bits
        gen_coded = self.n_symbols * unit
        if len(bits) % gen_coded:
            raise FecError(
                f"coded length {len(bits)} not a multiple of {gen_coded}"
            )
        out: Bits = []
        flags: list[bool] = []
        for start in range(0, len(bits), gen_coded):
            received: dict[int, int] = {}
            for index in range(self.n_symbols):
                chunk = bits[
                    start + index * unit : start + (index + 1) * unit
                ]
                symbol_bits = chunk[: self.symbol_bits]
                if self.parity and (sum(symbol_bits) & 1) != chunk[-1]:
                    continue  # parity failure -> erasure
                received[index] = int(
                    "".join(str(b) for b in symbol_bits), 2
                )
            decoded, ok = self.decode_symbols(received)
            out.extend(decoded)
            flags.append(ok)
        return out, flags


#: Factories for codes addressable by name (CLI / bench configuration).
_CODE_FACTORIES = {
    "none": NoCode,
    "repetition": RepetitionCode,
    "hamming": HammingCode,
    "rs": ReedSolomonCode,
    "lt": LtCode,
}


def make_code(name: str, **kwargs) -> Code:
    """Build a codec by registry name (``none``/``repetition``/
    ``hamming``/``rs``/``lt``), forwarding keyword parameters.

    Raises:
        FecError: for an unknown name.
    """
    try:
        factory = _CODE_FACTORIES[name]
    except KeyError:
        raise FecError(
            f"unknown code {name!r}; choose from "
            f"{sorted(_CODE_FACTORIES)}"
        ) from None
    return factory(**kwargs)
