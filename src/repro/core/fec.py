"""Forward error correction for tag messages.

Paper §4.1 closes with: "WiTAG requires a mechanism to detect and correct
possible errors, which is a topic of future work."  This module implements
that future work: three codes suited to a tag whose encoder must run on
microwatts (encoding is table-lookup simple; the heavy decoding happens on
the WiFi client):

* **repetition-N** — trivial majority vote, robust, rate 1/N;
* **Hamming(7,4)** — single-error-correcting, rate 4/7;
* **block interleaving** — spreads burst errors (e.g. a missed trigger or
  a fade spanning neighbouring subframes) across codewords.

All codecs work on bit lists (the natural currency of block-ACK bitmaps).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import FecError

Bits = list[int]


def _check_bits(bits: Bits) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise FecError(f"bits must be 0/1, got {bit!r}")


class Code:
    """Interface for bit-level codecs."""

    #: code rate (information bits / coded bits)
    rate: float

    def encode(self, bits: Bits) -> Bits:
        raise NotImplementedError

    def decode(self, bits: Bits) -> Bits:
        raise NotImplementedError


@dataclass(frozen=True)
class NoCode(Code):
    """Identity code (uncoded baseline)."""

    rate: float = 1.0

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return list(bits)

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return list(bits)


@dataclass(frozen=True)
class RepetitionCode(Code):
    """Repeat each bit ``n`` times; decode by majority vote."""

    n: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.n % 2 == 0:
            raise FecError(
                f"repetition factor must be odd and >= 1, got {self.n}"
            )

    @property
    def rate(self) -> float:  # type: ignore[override]
        return 1.0 / self.n

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        return [bit for bit in bits for _ in range(self.n)]

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.n:
            raise FecError(
                f"coded length {len(bits)} not a multiple of {self.n}"
            )
        out: Bits = []
        for i in range(0, len(bits), self.n):
            out.append(1 if sum(bits[i : i + self.n]) * 2 > self.n else 0)
        return out


#: Hamming(7,4) generator: codeword = [d1 d2 d3 d4 p1 p2 p3].
_H_PARITY = (
    (0, 1, 2),  # p1 = d1 ^ d2 ^ d3
    (1, 2, 3),  # p2 = d2 ^ d3 ^ d4
    (0, 1, 3),  # p3 = d1 ^ d2 ^ d4
)


@dataclass(frozen=True)
class HammingCode(Code):
    """Hamming(7,4): corrects any single bit error per 7-bit codeword."""

    rate: float = 4.0 / 7.0

    def encode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % 4:
            raise FecError(f"data length {len(bits)} not a multiple of 4")
        out: Bits = []
        for i in range(0, len(bits), 4):
            data = bits[i : i + 4]
            parity = [
                data[a] ^ data[b] ^ data[c] for a, b, c in _H_PARITY
            ]
            out.extend(data + parity)
        return out

    def decode(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % 7:
            raise FecError(f"coded length {len(bits)} not a multiple of 7")
        out: Bits = []
        for i in range(0, len(bits), 7):
            word = list(bits[i : i + 7])
            syndrome = 0
            for p_index, (a, b, c) in enumerate(_H_PARITY):
                expected = word[a] ^ word[b] ^ word[c]
                if expected != word[4 + p_index]:
                    syndrome |= 1 << p_index
            if syndrome:
                flip = _SYNDROME_TO_POSITION.get(syndrome)
                if flip is not None:
                    word[flip] ^= 1
            out.extend(word[:4])
        return out


def _build_syndrome_map() -> dict[int, int]:
    """Map each single-bit-error syndrome to the erroneous position."""
    mapping: dict[int, int] = {}
    for position in range(7):
        word = [0] * 7
        word[position] = 1
        syndrome = 0
        for p_index, (a, b, c) in enumerate(_H_PARITY):
            expected = word[a] ^ word[b] ^ word[c]
            if expected != word[4 + p_index]:
                syndrome |= 1 << p_index
        mapping[syndrome] = position
    return mapping


_SYNDROME_TO_POSITION = _build_syndrome_map()


@dataclass(frozen=True)
class BlockInterleaver:
    """Row-in, column-out block interleaver of given depth."""

    depth: int = 8

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise FecError(f"depth must be >= 1, got {self.depth}")

    def interleave(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.depth:
            raise FecError(
                f"length {len(bits)} not a multiple of depth {self.depth}"
            )
        rows = len(bits) // self.depth
        return [
            bits[r * self.depth + c]
            for c in range(self.depth)
            for r in range(rows)
        ]

    def deinterleave(self, bits: Bits) -> Bits:
        _check_bits(bits)
        if len(bits) % self.depth:
            raise FecError(
                f"length {len(bits)} not a multiple of depth {self.depth}"
            )
        rows = len(bits) // self.depth
        out = [0] * len(bits)
        i = 0
        for c in range(self.depth):
            for r in range(rows):
                out[r * self.depth + c] = bits[i]
                i += 1
        return out


@dataclass(frozen=True)
class InterleavedCode(Code):
    """A base code wrapped in a block interleaver."""

    inner: Code
    interleaver: BlockInterleaver

    @property
    def rate(self) -> float:  # type: ignore[override]
        return self.inner.rate

    def encode(self, bits: Bits) -> Bits:
        coded = self.inner.encode(bits)
        pad = (-len(coded)) % self.interleaver.depth
        return self.interleaver.interleave(coded + [0] * pad)

    def decode(self, bits: Bits) -> Bits:
        coded = self.interleaver.deinterleave(bits)
        usable = len(coded)
        if isinstance(self.inner, HammingCode):
            usable -= usable % 7
        elif isinstance(self.inner, RepetitionCode):
            usable -= usable % self.inner.n
        return self.inner.decode(coded[:usable])
