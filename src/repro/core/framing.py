"""Tag message framing: preamble, length, payload, checksum.

Block-ACK bits arrive at the reader as an undifferentiated stream.  To
carry variable-length sensor readings reliably the reproduction frames tag
messages as::

    +----------+--------+------------------+----------+
    | preamble | length |     payload      | CRC-16   |
    |  8 bits  | 8 bits |  8*length bits   | 16 bits  |
    +----------+--------+------------------+----------+

The preamble (0xA7) lets a reader lock onto message boundaries in a bit
stream that may contain idle (all-ones) stretches; the CRC-16 provides the
error *detection* the paper defers to future work (§4.1).  FEC from
:mod:`repro.core.fec` is applied outside this framing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mac.crc import crc16_ccitt
from .errors import FramingError

PREAMBLE_BYTE = 0xA7
MAX_PAYLOAD_BYTES = 255

Bits = list[int]


def bytes_to_bits(data: bytes) -> Bits:
    """MSB-first bit expansion."""
    return [(byte >> (7 - i)) & 1 for byte in data for i in range(8)]


def bits_to_bytes(bits: Bits) -> bytes:
    """MSB-first bit packing.

    Raises:
        FramingError: if the bit count is not a multiple of 8.
    """
    if len(bits) % 8:
        raise FramingError(f"bit count {len(bits)} not a multiple of 8")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i : i + 8]:
            if bit not in (0, 1):
                raise FramingError(f"bits must be 0/1, got {bit!r}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


@dataclass(frozen=True)
class TagMessage:
    """A framed tag payload."""

    payload: bytes

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise FramingError(
                f"payload of {len(self.payload)} bytes exceeds "
                f"{MAX_PAYLOAD_BYTES}"
            )

    def to_bits(self) -> Bits:
        """Frame the payload into a transmittable bit list."""
        body = bytes([PREAMBLE_BYTE, len(self.payload)]) + self.payload
        crc = crc16_ccitt(body).to_bytes(2, "big")
        return bytes_to_bits(body + crc)

    @property
    def framed_bits(self) -> int:
        """Total framed length in bits."""
        return 8 * (2 + len(self.payload) + 2)


def deframe(bits: Bits) -> TagMessage:
    """Recover a message from exactly one frame's worth of bits.

    Raises:
        FramingError: bad preamble, inconsistent length, or CRC failure.
    """
    if len(bits) < 32:
        raise FramingError("too few bits for a frame")
    head = bits_to_bytes(bits[:16])
    if head[0] != PREAMBLE_BYTE:
        raise FramingError(
            f"bad preamble 0x{head[0]:02x}, expected 0x{PREAMBLE_BYTE:02x}"
        )
    length = head[1]
    total_bits = 8 * (2 + length + 2)
    if len(bits) < total_bits:
        raise FramingError(
            f"frame declares {length}-byte payload but only "
            f"{len(bits)} bits present"
        )
    frame = bits_to_bytes(bits[:total_bits])
    body, crc = frame[:-2], frame[-2:]
    if crc16_ccitt(body).to_bytes(2, "big") != crc:
        raise FramingError("CRC-16 mismatch")
    return TagMessage(payload=body[2:])


def scan_for_frames(bits: Bits) -> list[TagMessage]:
    """Extract all valid frames from a bit stream.

    Slides over the stream looking for the preamble; on CRC failure the
    scan resumes one bit later (a corrupted frame does not hide a later
    good one).
    """
    messages: list[TagMessage] = []
    i = 0
    n = len(bits)
    preamble_bits = bytes_to_bits(bytes([PREAMBLE_BYTE]))
    while i + 32 <= n:
        if bits[i : i + 8] != preamble_bits:
            i += 1
            continue
        try:
            message = deframe(bits[i:])
        except FramingError:
            i += 1
            continue
        messages.append(message)
        i += message.framed_bits
    return messages
