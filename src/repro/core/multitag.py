"""Multiple tags sharing one reader: addressing and collisions.

The paper evaluates a single tag, but its trigger design (§7: "a specific,
known bit pattern in the payload of the first few subframes") naturally
extends to addressing — different known patterns select different tags.
This module models a deployment where several tags hear the same queries:

* **addressed queries** carry one tag's trigger pattern; only that tag
  synchronises and modulates, others stay idle (their comparators never
  match), so the block ACK carries exactly one tag's bits;
* **broadcast queries** (no address) wake *every* tag in range; each
  corrupts its own bit pattern and the AP sees the union of corruption —
  a collision that garbles everyone's data, which is why addressing (or
  round-robin polling) is required.

Corruption combining: a subframe fails if at least one tag's perturbation
defeats it.  Decode draws are made per tag against that tag's own channel
geometry and combined as independent events — accurate when tag-to-tag
coupling is negligible (tags are weak scatterers).

Draw-order contract (the vectorized fleet engine in
:mod:`repro.core.fleet` reproduces this bit for bit):

1. **FSM phase** — every candidate tag processes the query first
   (detector uniform, period-estimate normal, per-bit alignment
   normals from *that tag's* FSM rng), in endpoint-dict order for a
   broadcast; an addressed query touches only the named tag's rng.
2. **Fading phase** — one :meth:`LinkErrorModel.sample_fading` per
   responding link, in responder order.  When *no* tag responds, one
   fading sample is drawn from the first endpoint's model so the
   benign-channel decode consumes the channel stream exactly like a
   single responding link would (historically the no-responder branch
   drew a fresh fading per subframe — an inconsistency fixed here).
3. **Decode phase** — each responding tag's full per-subframe outcome
   vector is drawn *before* combining (2·n_subcarriers CSI normals
   plus one uniform per subframe, from that tag's error rng).  A
   subframe survives only if every responder's draw survived.  No
   early exit: a failing tag never truncates another tag's stream, so
   per-tag outcome streams are independent of dict insertion order.

With per-tag component rngs (the default built by
:func:`repro.sim.scenario.build_system` / ``TagFleet.build``), each
phase touches disjoint generators per tag, which is what lets the
fleet engine batch each phase across tags without changing any
single generator's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mac.block_ack import BlockAck, BlockAckScoreboard, build_block_ack
from ..phy.error_model import LinkErrorModel
from ..seeding import component_rng
from ..tag.state_machine import QueryObservation, TagStateMachine
from .config import WiTagConfig
from .decoder import raw_bits_from_block_ack
from .query import QueryBuilder
from .system import DEFAULT_AP, DEFAULT_CLIENT, Bits


@dataclass
class TagEndpoint:
    """One tag in a multi-tag deployment.

    Attributes:
        name: address label (used to target queries).
        tag: the tag's behavioural model.
        error_model: the tag's own channel/decode model (its geometry).
        rx_power_dbm: query power at this tag's antenna.
    """

    name: str
    tag: TagStateMachine
    error_model: LinkErrorModel
    rx_power_dbm: float


@dataclass(frozen=True)
class MultiTagQueryResult:
    """Outcome of one query in a multi-tag cell.

    Attributes:
        address: the tag the query addressed (None = broadcast).
        block_ack: the AP's bitmap.
        raw_bits: payload-subframe bits as the reader sees them.
        responded: names of tags that detected and modulated.
        per_tag_sent: bits each responding tag attempted.
    """

    address: str | None
    block_ack: BlockAck
    raw_bits: tuple[int, ...]
    responded: tuple[str, ...]
    per_tag_sent: dict[str, tuple[int, ...]]


@dataclass
class MultiTagCell:
    """A reader cell containing several tags.

    Attributes:
        config: query configuration (shared by all tags — one reader).
        endpoints: the tags, keyed by address.
        rng: randomness for subframe outcome draws.
    """

    config: WiTagConfig
    endpoints: dict[str, TagEndpoint]
    rng: np.random.Generator = field(
        default_factory=lambda: component_rng("multitag")
    )
    #: Optional repro.obs.Telemetry; attach via Telemetry.attach_cell.
    telemetry: object | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ValueError("a cell needs at least one tag")
        self.builder = QueryBuilder(
            self.config, client=DEFAULT_CLIENT, ap=DEFAULT_AP
        )
        self._scoreboard = BlockAckScoreboard()

    def load_bits(self, name: str, bits: Bits) -> None:
        """Queue bits on one tag.

        Raises:
            KeyError: for an unknown tag address.
        """
        self._endpoint(name).tag.load_bits(bits)

    def _endpoint(self, name: str) -> TagEndpoint:
        try:
            return self.endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown tag {name!r}; cell has {sorted(self.endpoints)}"
            ) from None

    def run_query(self, address: str | None = None) -> MultiTagQueryResult:
        """Run one query cycle, addressed or broadcast.

        An addressed query carries the named tag's trigger pattern; only
        that tag responds.  A broadcast query wakes every tag whose
        detector fires — their corruption superimposes.
        """
        if address is not None:
            self._endpoint(address)  # validate early
        query = self.builder.build()
        responders: list[str] = []
        transmissions = {}
        for name, endpoint in self.endpoints.items():
            if address is not None and name != address:
                continue
            observation = QueryObservation(
                n_subframes=query.n_subframes,
                n_trigger_subframes=query.n_trigger_subframes,
                subframe_s=query.mean_subframe_s,
                rx_power_dbm=endpoint.rx_power_dbm,
            )
            transmission = endpoint.tag.process_query(observation)
            if transmission.detected and transmission.bits_loaded:
                responders.append(name)
                transmissions[name] = transmission

        self._scoreboard.reset(query.ssn)
        if transmissions:
            # Fading phase: one sample per responding link, in
            # responder order (see the draw-order contract above).
            fadings = {
                name: self.endpoints[name].error_model.sample_fading()
                for name in transmissions
            }
            # Decode phase: each tag's full outcome vector is drawn
            # before combining, so one tag's failure never truncates
            # another tag's stream (the old early `break` made per-tag
            # streams depend on dict insertion order).
            survived = np.ones(len(query.mpdus), dtype=bool)
            for name, transmission in transmissions.items():
                endpoint = self.endpoints[name]
                idle = endpoint.tag.design.state_for_bit_one
                fading = fadings[name]
                for index, mpdu in enumerate(query.mpdus):
                    ok = endpoint.error_model.subframe_outcome(
                        8 * len(mpdu),
                        idle,
                        transmission.states[index],
                        fading,
                    )
                    if not ok:
                        survived[index] = False
        else:
            # No tag responded: benign channel only (first endpoint's
            # link model decides).  One fading sample, like any
            # responding link, keeps the channel stream consistent
            # across both branches.
            first = next(iter(self.endpoints.values()))
            idle = first.tag.design.state_for_bit_one
            fading = first.error_model.sample_fading()
            survived = np.array(
                [
                    first.error_model.subframe_outcome(
                        8 * len(mpdu), idle, idle, fading
                    )
                    for mpdu in query.mpdus
                ],
                dtype=bool,
            )
        for index in np.flatnonzero(survived):
            self._scoreboard.record((query.ssn + int(index)) % 4096)
        block_ack = build_block_ack(self._scoreboard, DEFAULT_CLIENT, DEFAULT_AP)
        raw = raw_bits_from_block_ack(block_ack, query)
        result = MultiTagQueryResult(
            address=address,
            block_ack=block_ack,
            raw_bits=tuple(raw),
            responded=tuple(responders),
            per_tag_sent={
                name: transmissions[name].bits_loaded for name in transmissions
            },
        )
        if self.telemetry is not None:
            # One decode row per responder (responder order), or the
            # single benign idle row — exactly the rows the fleet
            # engine assembles, so digests match bit for bit.
            if transmissions:
                state_rows = [t.states for t in transmissions.values()]
                fading_rows = [
                    (fadings[name].direct_gain, fadings[name].tag_fading)
                    for name in transmissions
                ]
            else:
                state_rows = [(idle,) * query.n_subframes]
                fading_rows = [(fading.direct_gain, fading.tag_fading)]
            self.telemetry.on_cell_query(
                result,
                n_subframes=query.n_subframes,
                state_rows=state_rows,
                fading_rows=fading_rows,
                cycle_s=self.builder.peek_airtime_s(),
            )
        return result

    def poll_round(self) -> dict[str, MultiTagQueryResult]:
        """One addressed query per tag, in sorted address order."""
        return {
            name: self.run_query(address=name)
            for name in sorted(self.endpoints)
        }
