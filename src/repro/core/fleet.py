"""Struct-of-arrays fleet engine: vectorized thousand-tag polling.

:class:`repro.core.multitag.MultiTagCell` models a reader cell as a
dict of per-tag object graphs and decodes one query at a time through
the scalar PHY loop — perfect as a reference, hopeless at warehouse
scale (2,000 tags x 64 subframes is ~128k scalar decode calls per
polling round).  This module keeps the cell as the bit-identical
reference (the way tiers 2-4 kept theirs, see ``docs/
running_experiments.md``) and re-materialises the same physics as
parallel numpy arrays:

* per-tag link state lives in flat arrays — positions, rx power at the
  tag, LOS gains, tag-path gains, per-tag subcarrier rotations — not in
  per-link ``BackscatterChannel``/``LinkErrorModel`` objects;
* one shared :class:`~repro.phy.error_model.LinkErrorModel` decodes a
  whole polling round as a single ``(n_rows x n_subframes)`` pass
  through :meth:`subframe_outcomes_batch2d`, with a duck-typed
  :class:`_FleetChannelView` standing in for the channel so the
  existing broadcasting yields *per-row* channel vectors;
* per-tag generators ride along as arrays of ``np.random.Generator``
  and the batch decode draws row ``r`` from row ``r``'s own error
  stream (the ``rngs=`` parameter added to the 2-D batch APIs), so the
  fleet consumes every per-tag stream in exactly the scalar order.

Determinism contract (mirrors the draw-order contract documented in
:mod:`repro.core.multitag`): each tag owns three generators — channel
(construction phases + fading), error (CSI noise + outcome uniforms)
and tag FSM (detection + timing) — derived from the fleet seed via
``child_sequence(seed, tag_index).spawn(3)``.  Because the scalar cell
touches disjoint generators per phase, the fleet may run each phase
batched across tags (FSM for all queries, then fadings in row order,
then the decode matrix) without changing any single generator's
stream.  :meth:`TagFleet.reference_cell` rebuilds the equivalent
scalar cell from the same seeds; with ``phy_exact_coding=True`` on
both, poll rounds are bitwise identical for any ``batch_tags``
chunking (without it they differ only through the interpolated
coded-BER table, exactly like tiers 2-4).

Mobility: :meth:`TagFleet.update_positions` refreshes *only the moved
rows* — tag-path amplitude from the bistatic radar equation at the new
distances, LOS phase advanced by the path-length change (``-2 pi
delta / lambda``, path-continuous rather than redrawn), per-row
subcarrier rotation from the new excess delay, and rx power at the
tag.  The direct client->AP path and all fading sigmas it sets are
untouched, and unmoved rows keep their cached state bit for bit.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..mac.block_ack import BlockAck, BlockAckScoreboard
from ..phy.channel import (
    BackscatterChannel,
    ChannelGeometry,
    PathLossModel,
    TagAntenna,
)
from ..phy.constants import SPEED_OF_LIGHT_M_S, Band
from ..phy.error_model import FadingBatch, LinkErrorModel
from ..phy.mcs import Mcs, highest_reliable_mcs
from ..phy.noise import ReceiverNoise
from ..phy.ofdm import data_subcarrier_offsets_hz, delay_phase_rotation
from ..seeding import child_sequence
from ..tag.antenna import phase_flip_design
from ..tag.envelope_detector import TriggerDetector
from ..tag.oscillator import witag_crystal_50khz
from ..tag.state_machine import QueryObservation, TagStateMachine
from .config import WiTagConfig
from .multitag import MultiTagCell, MultiTagQueryResult, TagEndpoint
from .query import QueryBuilder
from .system import DEFAULT_AP, DEFAULT_CLIENT, Bits


def _tag_generators(
    seed: int, index: int
) -> tuple[np.random.Generator, np.random.Generator, np.random.Generator]:
    """The (channel, error, tag-FSM) generators of one tag.

    Derived via ``child_sequence(seed, index).spawn(3)`` so a tag's
    streams depend only on the fleet seed and its own index — adding
    or removing other tags never perturbs them.
    """
    channel_seq, error_seq, tag_seq = child_sequence(seed, index).spawn(3)
    return (
        np.random.default_rng(channel_seq),
        np.random.default_rng(error_seq),
        np.random.default_rng(tag_seq),
    )


class _FleetChannelView:
    """Duck-typed per-row channel for the shared decode model.

    :meth:`LinkErrorModel.subframe_effective_sinrs_batch2d` only calls
    ``channel.channel_vector_batch``; this view reproduces
    :meth:`BackscatterChannel.channel_vector_batch` with *array-valued*
    tag-path gain and rotation, so the same broadcasting expression
    yields row ``r``'s channel from row ``r``'s tag — bitwise equal to
    that tag's own scalar channel (the elementwise operations keep the
    scalar expression's association order).
    """

    __slots__ = ("_h_tag_los", "_tag_rotation")

    def __init__(
        self, h_tag_los: np.ndarray, tag_rotation: np.ndarray
    ) -> None:
        self._h_tag_los = h_tag_los
        self._tag_rotation = tag_rotation

    def channel_vector_batch(
        self,
        state,
        direct_gains: np.ndarray,
        tag_fadings: np.ndarray,
    ) -> np.ndarray:
        gains = np.asarray(direct_gains, dtype=complex)
        fadings = np.asarray(tag_fadings, dtype=complex)
        gamma = state.reflection_coefficient
        tag_term = (gamma * fadings) * self._h_tag_los
        return gains[:, None] + tag_term[:, None] * self._tag_rotation


class TagFleet:
    """A reader cell's tags as struct-of-arrays link state.

    Build with :meth:`build`; poll with :meth:`run_query` /
    :meth:`poll_round` (the same result objects as the scalar
    :class:`MultiTagCell`, which :meth:`reference_cell` reconstructs
    bit-identically from the same seeds).

    Attributes:
        names: tag addresses, in index order (the reference cell's
            endpoint-dict order; "first endpoint" = index 0).
        positions: ``(n_tags, 2)`` tag coordinates in metres.
        rx_power_dbm: query power at each tag's antenna.
        config: shared reader configuration (one reader per cell).
        batch_tags: decode chunk size in rows; any value yields
            bitwise-identical results (per-row generators make chunk
            boundaries draw-neutral), it only bounds peak memory.
        invalidated_rows: cumulative count of per-tag cache rows
            refreshed by :meth:`update_positions` (observability for
            the incremental-invalidation contract).
        telemetry: optional :class:`repro.obs.Telemetry`; attach via
            :meth:`Telemetry.attach_fleet` for per-query metrics and
            trace records identical to an instrumented
            :meth:`reference_cell` run.
    """

    def __init__(self, **state) -> None:
        # Built via TagFleet.build(); the keyword form keeps the
        # constructor honest about the one blessed entry point.
        self.__dict__.update(state)

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        positions: Iterable[tuple[float, float]],
        *,
        names: Sequence[str] | None = None,
        client_xy: tuple[float, float] = (0.0, 0.0),
        ap_xy: tuple[float, float] = (8.0, 0.0),
        seed: int = 0,
        tx_power_dbm: float = 15.0,
        mismatch_gain_db: float = 22.0,
        rician_k_db: float | None = 15.0,
        tag_rician_k_db: float | None = 5.0,
        band: Band = Band.GHZ_2_4,
        channel_width_mhz: int = 20,
        mcs: Mcs | None = None,
        kernel_tier: str = "auto",
        temperature_c: float = 25.0,
        phy_exact_coding: bool = False,
        batch_tags: int = 256,
    ) -> "TagFleet":
        """Construct a fleet over a floorplan's tag positions.

        Per-tag channels are materialised through real
        :class:`BackscatterChannel` objects (guaranteeing the same
        construction math and random-phase draws as the scalar
        reference) and immediately harvested into arrays; only the
        per-tag generators survive as objects.

        Args:
            positions: ``(x, y)`` per tag, metres.
            names: tag addresses; defaults to ``tag0000``.. so sorted
                order equals index order.
            client_xy / ap_xy: reader endpoints (client transmits the
                query A-MPDUs, AP returns the block ACK).
            mcs: query MCS; auto-selected from the client->AP link SNR
                when omitted (paper §4.1's rate rule).
            phy_exact_coding: decode through the exact scalar coding
                math instead of the interpolated table — slower, but
                bitwise identical to the scalar reference cell.
            batch_tags: decode chunk size (memory bound, not a result
                knob).
        """
        pos = np.asarray(list(positions), dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2 or not len(pos):
            raise ValueError(
                f"positions must be (n_tags, 2), got {pos.shape}"
            )
        n = len(pos)
        if names is None:
            names = tuple(f"tag{i:04d}" for i in range(n))
        else:
            names = tuple(names)
            if len(names) != n or len(set(names)) != n:
                raise ValueError(
                    f"need {n} distinct names, got {len(names)} "
                    f"({len(set(names))} distinct)"
                )
        if batch_tags < 1:
            raise ValueError(f"batch_tags must be >= 1, got {batch_tags}")

        wavelength = band.wavelength_m
        cx, cy = float(client_xy[0]), float(client_xy[1])
        ax, ay = float(ap_xy[0]), float(ap_xy[1])
        tx_rx_m = math.hypot(ax - cx, ay - cy)
        direct_loss = PathLossModel()
        tx_tag_loss = PathLossModel()
        tag_rx_loss = PathLossModel()
        antenna = TagAntenna()
        receiver = ReceiverNoise(bandwidth_hz=channel_width_mhz * 1e6)
        if mcs is None:
            link_snr_db = (
                tx_power_dbm
                - direct_loss.path_loss_db(tx_rx_m, wavelength)
                - receiver.noise_floor_dbm
            )
            mcs = highest_reliable_mcs(link_snr_db)
        from ..sim.scenario import _fit_tag_clock  # lazy: avoids cycle

        config = WiTagConfig(
            mcs=mcs,
            tag_clock_hz=_fit_tag_clock(mcs, channel_width_mhz, False),
            band=band,
            channel_width_mhz=channel_width_mhz,
            tx_power_dbm=tx_power_dbm,
        )

        design = phase_flip_design()
        detector = TriggerDetector()
        oscillator = witag_crystal_50khz()
        align_cache: dict = {}

        tx_tag_m = np.empty(n)
        tag_rx_m = np.empty(n)
        rx_power = np.empty(n)
        h_direct_los = np.empty(n, dtype=complex)
        h_tag_los = np.empty(n, dtype=complex)
        offsets_hz = data_subcarrier_offsets_hz(channel_width_mhz)
        tag_rotation = np.empty((n, offsets_hz.size), dtype=complex)
        channel_rngs: list[np.random.Generator] = []
        error_rngs: list[np.random.Generator] = []
        fsms: list[TagStateMachine] = []
        for i in range(n):
            d1 = math.hypot(pos[i, 0] - cx, pos[i, 1] - cy)
            d2 = math.hypot(ax - pos[i, 0], ay - pos[i, 1])
            channel_rng, error_rng, tag_rng = _tag_generators(seed, i)
            channel = BackscatterChannel(
                geometry=ChannelGeometry(
                    tx_rx_m=tx_rx_m, tx_tag_m=d1, tag_rx_m=d2
                ),
                band=band,
                direct_loss=direct_loss,
                tx_tag_loss=tx_tag_loss,
                tag_rx_loss=tag_rx_loss,
                antenna=antenna,
                rician_k_db=rician_k_db,
                tag_rician_k_db=tag_rician_k_db,
                channel_width_mhz=channel_width_mhz,
                rng=channel_rng,
            )
            tx_tag_m[i] = d1
            tag_rx_m[i] = d2
            rx_power[i] = tx_power_dbm - tx_tag_loss.path_loss_db(
                d1, wavelength
            )
            h_direct_los[i] = channel._h_direct_los
            h_tag_los[i] = channel._h_tag_los
            tag_rotation[i] = channel._tag_rotation
            channel_rngs.append(channel_rng)
            error_rngs.append(error_rng)
            fsm = TagStateMachine(
                design=design,
                detector=detector,
                oscillator=oscillator,
                rng=tag_rng,
            )
            fsm._align_cache = align_cache  # shared across the fleet
            fsms.append(fsm)

        # Fading constants (see BackscatterChannel.sample_*_fading).
        if rician_k_db is not None:
            k_lin = 10.0 ** (rician_k_db / 10.0)
            d_los_part = math.sqrt(k_lin / (k_lin + 1.0)) * h_direct_los
            # Python's abs(complex), not np.abs: the two hypot
            # implementations can disagree by 1 ulp, and the scalar
            # channel's sigma must be reproduced bit for bit for the
            # fading draws (and telemetry digests) to match exactly.
            d_sigma = np.array(
                [abs(complex(h)) for h in h_direct_los]
            ) * math.sqrt(1.0 / (k_lin + 1.0) / 2.0)
        else:
            d_los_part = d_sigma = None
        if tag_rician_k_db is not None:
            k_lin = 10.0 ** (tag_rician_k_db / 10.0)
            t_los_part = math.sqrt(k_lin / (k_lin + 1.0))
            t_sigma = math.sqrt(1.0 / (k_lin + 1.0) / 2.0)
        else:
            t_los_part = t_sigma = None

        decoder = LinkErrorModel(
            channel=_FleetChannelView(h_tag_los, tag_rotation),
            mcs=mcs,
            tx_power_dbm=tx_power_dbm,
            receiver=receiver,
            mismatch_gain_db=mismatch_gain_db,
            # Never drawn from: every batch decode passes per-row rngs.
            rng=np.random.default_rng(child_sequence(seed, n)),
            kernel_tier=kernel_tier,
        )

        fleet = cls(
            names=names,
            positions=pos,
            config=config,
            telemetry=None,
            batch_tags=int(batch_tags),
            phy_exact_coding=bool(phy_exact_coding),
            temperature_c=float(temperature_c),
            invalidated_rows=0,
            rx_power_dbm=rx_power,
            _index={name: i for i, name in enumerate(names)},
            _seed=int(seed),
            _client_xy=(cx, cy),
            _ap_xy=(ax, ay),
            _tx_rx_m=tx_rx_m,
            _tx_tag_m=tx_tag_m,
            _tag_rx_m=tag_rx_m,
            _tx_power_dbm=float(tx_power_dbm),
            _mismatch_gain_db=float(mismatch_gain_db),
            _rician_k_db=rician_k_db,
            _tag_rician_k_db=tag_rician_k_db,
            _band=band,
            _channel_width_mhz=int(channel_width_mhz),
            _kernel_tier=kernel_tier,
            _wavelength=wavelength,
            _offsets_hz=offsets_hz,
            _direct_loss=direct_loss,
            _tx_tag_loss=tx_tag_loss,
            _tag_rx_loss=tag_rx_loss,
            _antenna=antenna,
            _receiver=receiver,
            _scatter_amp=(
                math.sqrt(
                    4.0
                    * math.pi
                    * antenna.radar_cross_section_m2(wavelength)
                )
                / wavelength
            ),
            _h_direct_los=h_direct_los,
            _h_tag_los=h_tag_los,
            _tag_rotation=tag_rotation,
            _d_los_part=d_los_part,
            _d_sigma=d_sigma,
            _t_los_part=t_los_part,
            _t_sigma=t_sigma,
            _channel_rngs=channel_rngs,
            _error_rngs=error_rngs,
            _fsms=fsms,
            _design=design,
            _decoder=decoder,
            _builder=QueryBuilder(config, client=DEFAULT_CLIENT, ap=DEFAULT_AP),
            _scoreboard=BlockAckScoreboard(),
        )
        return fleet

    # -- basic accessors ----------------------------------------------

    @property
    def n_tags(self) -> int:
        """Number of tags in the fleet."""
        return len(self.names)

    @property
    def counters(self):
        """Per-stage timing of the shared decode model."""
        return self._decoder.counters

    def load_bits(self, name: str, bits: Bits) -> None:
        """Queue bits on one tag.

        Raises:
            KeyError: for an unknown tag address.
        """
        self._fsms[self._tag_index(name)].load_bits(list(bits))

    def pending_bits(self, name: str) -> int:
        """Bits still queued on one tag."""
        return self._fsms[self._tag_index(name)].pending_bits

    def _tag_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"unknown tag {name!r}; fleet has {len(self.names)} tags"
            ) from None

    # -- the scalar reference -----------------------------------------

    def reference_cell(self) -> MultiTagCell:
        """The bit-identical scalar :class:`MultiTagCell` twin.

        Rebuilt from the fleet's construction parameters with *fresh*
        generators from the same seeds, so a freshly built fleet and
        its reference start from identical stream states (both begin
        at SSN 0; build the reference before polling the fleet when
        comparing).  Endpoints are inserted in fleet index order, so
        the cell's "first endpoint" is tag 0.  Mobility updates are
        not reflected — the reference models the fleet as built.
        """
        endpoints: dict[str, TagEndpoint] = {}
        for i, name in enumerate(self.names):
            channel_rng, error_rng, tag_rng = _tag_generators(
                self._seed, i
            )
            channel = BackscatterChannel(
                geometry=ChannelGeometry(
                    tx_rx_m=self._tx_rx_m,
                    tx_tag_m=float(self._tx_tag_m[i]),
                    tag_rx_m=float(self._tag_rx_m[i]),
                ),
                band=self._band,
                direct_loss=self._direct_loss,
                tx_tag_loss=self._tx_tag_loss,
                tag_rx_loss=self._tag_rx_loss,
                antenna=self._antenna,
                rician_k_db=self._rician_k_db,
                tag_rician_k_db=self._tag_rician_k_db,
                channel_width_mhz=self._channel_width_mhz,
                rng=channel_rng,
            )
            error_model = LinkErrorModel(
                channel=channel,
                mcs=self.config.mcs,
                tx_power_dbm=self._tx_power_dbm,
                receiver=self._receiver,
                mismatch_gain_db=self._mismatch_gain_db,
                rng=error_rng,
                kernel_tier=self._kernel_tier,
            )
            endpoints[name] = TagEndpoint(
                name=name,
                tag=TagStateMachine(rng=tag_rng),
                error_model=error_model,
                rx_power_dbm=float(self.rx_power_dbm[i]),
            )
        return MultiTagCell(config=self.config, endpoints=endpoints)

    # -- mobility ------------------------------------------------------

    def update_positions(
        self,
        indices: Sequence[int],
        new_positions: Iterable[tuple[float, float]],
    ) -> None:
        """Move tags and refresh only the moved rows' link state.

        Per moved tag: tag-path amplitude from the bistatic radar
        equation at the new leg lengths, LOS phase advanced by
        ``-2 pi * (path-length change) / lambda`` (path-continuous —
        a fresh build at the same position would draw a different
        random phase), subcarrier rotation from the new excess delay,
        and rx power at the tag.  Unmoved rows are untouched bit for
        bit; the direct client->AP path (and hence the direct-fading
        sigma) never changes.
        """
        cx, cy = self._client_xy
        ax, ay = self._ap_xy
        wavelength = self._wavelength
        moved = 0
        for i, (x, y) in zip(indices, new_positions):
            x, y = float(x), float(y)
            d1 = math.hypot(x - cx, y - cy)
            d2 = math.hypot(ax - x, ay - y)
            if d1 <= 0.0 or d2 <= 0.0:
                raise ValueError(
                    f"tag {i} may not sit exactly on the client or AP"
                )
            delta_path = (d1 + d2) - (
                float(self._tx_tag_m[i]) + float(self._tag_rx_m[i])
            )
            amp = (
                self._tx_tag_loss.amplitude_gain(d1, wavelength)
                * self._tag_rx_loss.amplitude_gain(d2, wavelength)
                * self._scatter_amp
            )
            old = complex(self._h_tag_los[i])
            phase = math.atan2(old.imag, old.real) - (
                2.0 * math.pi * delta_path / wavelength
            )
            self._h_tag_los[i] = amp * np.exp(1j * phase)
            excess_s = (d1 + d2 - self._tx_rx_m) / SPEED_OF_LIGHT_M_S
            self._tag_rotation[i] = delay_phase_rotation(
                self._offsets_hz, excess_s
            )
            self.rx_power_dbm[i] = (
                self._tx_power_dbm
                - self._tx_tag_loss.path_loss_db(d1, wavelength)
            )
            self._tx_tag_m[i] = d1
            self._tag_rx_m[i] = d2
            self.positions[i, 0] = x
            self.positions[i, 1] = y
            moved += 1
        self.invalidated_rows += moved

    # -- fading --------------------------------------------------------

    def _draw_fading(self, i: int) -> tuple[complex, complex]:
        """One coherence-interval sample from tag ``i``'s channel rng.

        Bitwise equal to ``sample_direct_fading()`` followed by
        ``sample_tag_fading()`` on that tag's own
        :class:`BackscatterChannel` (same ``rng.normal`` calls in the
        same order).
        """
        rng = self._channel_rngs[i]
        if self._d_sigma is None:
            direct = complex(self._h_direct_los[i])
        else:
            sigma = float(self._d_sigma[i])
            scatter = complex(
                rng.normal(0.0, sigma), rng.normal(0.0, sigma)
            )
            direct = complex(self._d_los_part[i] + scatter)
        if self._t_sigma is None:
            tag = complex(1.0, 0.0)
        else:
            tag = complex(
                self._t_los_part + rng.normal(0.0, self._t_sigma),
                rng.normal(0.0, self._t_sigma),
            )
        return direct, tag

    # -- polling -------------------------------------------------------

    def run_query(self, address: str | None = None) -> MultiTagQueryResult:
        """One query cycle, addressed or broadcast (``None``).

        Same semantics and result object as
        :meth:`MultiTagCell.run_query`.
        """
        return self._run_queries([address])[0]

    def poll_round(self) -> dict[str, MultiTagQueryResult]:
        """One addressed query per tag, in sorted address order.

        The whole round — every query's decode — runs as one batched
        ``(n_rows x n_subframes)`` PHY pass (chunked by
        ``batch_tags``), bit-compatible with
        :meth:`MultiTagCell.poll_round` on :meth:`reference_cell`.
        """
        order = sorted(self.names)
        results = self._run_queries(order)
        return dict(zip(order, results))

    def poll_tags(
        self, names: Sequence[str]
    ) -> dict[str, MultiTagQueryResult]:
        """One addressed query per named tag, in the given order.

        The multi-AP network layer uses this to poll just the tags
        currently assigned to one reader cell.
        """
        results = self._run_queries(list(names))
        return dict(zip(names, results))

    def _run_queries(
        self, addresses: Sequence[str | None]
    ) -> list[MultiTagQueryResult]:
        """Run a batch of query cycles through one decode pass."""
        for address in addresses:
            if address is not None:
                self._tag_index(address)  # validate early
        if not addresses:
            return []

        frames = [self._builder.build_fast() for _ in addresses]
        idle = self._design.state_for_bit_one

        # Phase 1 — tag FSMs, in query order then endpoint order
        # (process_query_fast is bitwise-identical to the scalar
        # reference's process_query, per its contract).
        responders_per_q: list[list[int]] = []
        transmissions_per_q: list[dict[int, object]] = []
        for frame, address in zip(frames, addresses):
            indices: Iterable[int] = (
                range(self.n_tags)
                if address is None
                else (self._tag_index(address),)
            )
            responders: list[int] = []
            transmissions: dict[int, object] = {}
            for i in indices:
                observation = QueryObservation(
                    n_subframes=frame.n_subframes,
                    n_trigger_subframes=frame.n_trigger_subframes,
                    subframe_s=frame.mean_subframe_s,
                    rx_power_dbm=float(self.rx_power_dbm[i]),
                    temperature_c=self.temperature_c,
                )
                transmission = self._fsms[i].process_query_fast(observation)
                if transmission.detected and transmission.bits_loaded:
                    responders.append(i)
                    transmissions[i] = transmission
            responders_per_q.append(responders)
            transmissions_per_q.append(transmissions)

        # Row assembly: one decode row per (query, responder); a query
        # nobody answered decodes one benign row through the first
        # endpoint's link (tag 0), exactly like the scalar cell's
        # no-responder branch.
        k = frames[0].n_subframes
        row_tag: list[int] = []
        row_states: list[Sequence] = []
        rows_per_q: list[int] = []
        for q, frame in enumerate(frames):
            responders = responders_per_q[q]
            if responders:
                for i in responders:
                    row_tag.append(i)
                    row_states.append(transmissions_per_q[q][i].states)
                rows_per_q.append(len(responders))
            else:
                row_tag.append(0)
                row_states.append((idle,) * frame.n_subframes)
                rows_per_q.append(1)
        n_rows = len(row_tag)

        # Phase 2 — fading, one draw per row in row (= scalar) order.
        direct = np.empty(n_rows, dtype=complex)
        tag_fade = np.empty(n_rows, dtype=complex)
        for r, i in enumerate(row_tag):
            direct[r], tag_fade[r] = self._draw_fading(i)

        # Phase 3 — one batched decode, chunked by batch_tags (memory
        # only: per-row generators make chunk boundaries draw-neutral).
        mpdu_bits = [8 * len(mpdu) for mpdu in frames[0].mpdus]
        outcomes = np.empty((n_rows, k), dtype=bool)
        tag_indices = np.asarray(row_tag, dtype=np.intp)
        for start in range(0, n_rows, self.batch_tags):
            stop = min(start + self.batch_tags, n_rows)
            sel = tag_indices[start:stop]
            self._decoder.channel = _FleetChannelView(
                self._h_tag_los[sel], self._tag_rotation[sel]
            )
            outcomes[start:stop] = self._decoder.subframe_outcomes_batch2d(
                mpdu_bits,
                idle,
                row_states[start:stop],
                FadingBatch(
                    direct_gains=direct[start:stop],
                    tag_fadings=tag_fade[start:stop],
                ),
                exact_coding=self.phy_exact_coding,
                rngs=[self._error_rngs[i] for i in sel],
            )

        # Combine per query: a subframe survives only if every
        # responder's row survived.
        n_q = len(frames)
        survived = np.empty((n_q, k), dtype=bool)
        r = 0
        for q, count in enumerate(rows_per_q):
            if count == 1:
                survived[q] = outcomes[r]
            else:
                survived[q] = outcomes[r : r + count].all(axis=0)
            r += count

        # Results: bitmap via one packbits (ssn == frame.ssn, so the
        # raw bits reduce to the outcome row past the trigger
        # subframes — the tier-3 reduction).
        packed = np.packbits(survived, axis=1, bitorder="little")
        raw_rows = survived.astype(np.uint8).tolist()
        results: list[MultiTagQueryResult] = []
        for q, (frame, address) in enumerate(zip(frames, addresses)):
            bitmap = int.from_bytes(packed[q].tobytes(), "little")
            block_ack = BlockAck(
                receiver=DEFAULT_CLIENT,
                transmitter=DEFAULT_AP,
                ssn=frame.ssn,
                bitmap=bitmap,
            )
            responders = responders_per_q[q]
            transmissions = transmissions_per_q[q]
            results.append(
                MultiTagQueryResult(
                    address=address,
                    block_ack=block_ack,
                    raw_bits=tuple(
                        raw_rows[q][frame.n_trigger_subframes :]
                    ),
                    responded=tuple(self.names[i] for i in responders),
                    per_tag_sent={
                        self.names[i]: transmissions[i].bits_loaded
                        for i in responders
                    },
                )
            )

        telemetry = self.telemetry
        if telemetry is not None:
            # Per-query hook in query order, slicing the decode rows
            # back out of the batch arrays — the same values the
            # scalar cell passes, so snapshots and traces match.
            cycle_s = self._builder.peek_airtime_s()
            row = 0
            for result, count in zip(results, rows_per_q):
                telemetry.on_cell_query(
                    result,
                    n_subframes=k,
                    state_rows=row_states[row : row + count],
                    fading_rows=[
                        (complex(direct[r]), complex(tag_fade[r]))
                        for r in range(row, row + count)
                    ],
                    cycle_s=cycle_s,
                )
                row += count
            # The replay below touches the real scoreboard only for
            # the last query; account for the elided ones.
            telemetry.on_scoreboard_bulk(
                records=int(survived[:-1].sum()),
                resets=len(frames) - 1,
            )

        # Leave the mutable MAC state as the scalar cell would: the
        # scoreboard holds the last query's outcomes.
        self._scoreboard.reset(frames[-1].ssn)
        for index in np.flatnonzero(survived[-1]):
            self._scoreboard.record((frames[-1].ssn + int(index)) % 4096)
        return results
