"""Query-rate adaptation for WiTAG readers.

Paper §4.1: "we can use the highest PHY-layer transmission rate that
achieves a near-zero error rate, so that frame losses due to path loss or
interference are not confused with a tag's data."  The static version of
that rule is :func:`repro.phy.mcs.highest_reliable_mcs` (from a link-SNR
estimate); this module provides the *online* version a deployment needs: a
controller that watches benign subframe losses — losses the tag did not
cause — and walks the MCS down when the channel cannot sustain the current
rate, or probes upward when it has been clean for a while.

The reader can measure benign loss directly: trigger subframes are never
corrupted by the tag, so any lost trigger subframe is channel loss; idle
queries (tag queue empty) extend that to all 64 subframes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..phy.mcs import Mcs, ht_mcs

if TYPE_CHECKING:  # pragma: no cover
    from .system import WiTagSystem


@dataclass
class QueryRateController:
    """AIMD-style MCS controller driven by benign-loss observations.

    Attributes:
        mcs_index: current per-stream MCS index (0-7 for HT).
        max_index: ceiling (7 for HT, 9 when VHT rates are allowed).
        downgrade_threshold: benign loss rate that forces a step down.
        probe_after_clean: clean observations before probing one step up.
    """

    mcs_index: int = 7
    max_index: int = 7
    downgrade_threshold: float = 0.05
    probe_after_clean: int = 50
    _clean_streak: int = field(default=0, repr=False)
    _observations: int = field(default=0, repr=False)
    _downgrades: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.max_index <= 31:
            # ht_mcs accepts 0-31 (index // 8 = extra spatial streams);
            # a larger ceiling would let a probe walk into ht_mcs's
            # ValueError mid-session instead of failing here.
            raise ValueError(
                f"max_index must be 0-31, got {self.max_index}"
            )
        if not 0 <= self.mcs_index <= self.max_index:
            raise ValueError(
                f"mcs_index must be 0-{self.max_index}, got {self.mcs_index}"
            )
        if not 0.0 < self.downgrade_threshold < 1.0:
            raise ValueError("downgrade threshold must be in (0, 1)")
        if self.probe_after_clean < 1:
            raise ValueError("probe_after_clean must be >= 1")

    @property
    def mcs(self) -> Mcs:
        """The controller's current MCS."""
        return ht_mcs(self.mcs_index)

    @property
    def observations(self) -> int:
        """Benign-loss observations processed."""
        return self._observations

    @property
    def downgrades(self) -> int:
        """Rate step-downs taken so far."""
        return self._downgrades

    def observe_benign_loss(self, lost: int, total: int) -> int:
        """Feed one query's benign-loss counts; returns the new MCS index.

        Args:
            lost: benign subframes (trigger subframes, or all subframes of
                an idle query) that failed.
            total: benign subframes observed.

        Raises:
            ValueError: for inconsistent counts.
        """
        if total < 0 or lost < 0 or lost > total:
            raise ValueError(f"invalid counts lost={lost} total={total}")
        if total == 0:
            return self.mcs_index
        self._observations += 1
        loss_rate = lost / total
        if loss_rate > self.downgrade_threshold:
            if self.mcs_index > 0:
                self.mcs_index -= 1
                self._downgrades += 1
            self._clean_streak = 0
        else:
            self._clean_streak += 1
            if (
                self._clean_streak >= self.probe_after_clean
                and self.mcs_index < self.max_index
            ):
                self.mcs_index += 1
                self._clean_streak = 0
        return self.mcs_index

    def settle(
        self, benign_loss_rate_for: "callable", *, max_steps: int = 64
    ) -> int:
        """Iterate against a loss-rate oracle until the rate stabilises.

        Args:
            benign_loss_rate_for: function mapping an MCS index to the
                channel's benign loss rate at that rate.

        Returns:
            The settled MCS index — the highest whose loss stays at or
            below the downgrade threshold.
        """
        for _ in range(max_steps):
            rate = benign_loss_rate_for(self.mcs_index)
            lost = round(rate * 1000)
            before = self.mcs_index
            self.observe_benign_loss(lost, 1000)
            if self.mcs_index == before and rate <= self.downgrade_threshold:
                break
        return self.mcs_index


@dataclass
class AdaptiveSession:
    """Runs a system while adapting the query MCS from benign losses.

    After every query the reader inspects the *trigger* subframes — the
    tag never corrupts those, so their losses are pure channel feedback —
    and feeds them to the controller.  When the controller moves, the
    session rebuilds the system's query pipeline at the new rate (query
    builder, error model and, if the new rate needs a slower tag clock,
    the configuration's clock).

    Attributes:
        system: the deployment under adaptation.
        controller: the AIMD rate controller.
    """

    system: "WiTagSystem"
    controller: QueryRateController = field(default_factory=QueryRateController)

    def __post_init__(self) -> None:
        index = self.system.config.mcs.index
        if not 0 <= index <= self.controller.max_index:
            # Assigning the field directly would bypass the
            # controller's own range validation and plant an index its
            # probe logic can never climb back from.
            raise ValueError(
                f"system MCS index {index} outside controller range "
                f"0-{self.controller.max_index}"
            )
        self.controller.mcs_index = index
        self.rate_changes: list[tuple[int, int]] = []

    def _apply_mcs(self, index: int) -> None:
        from dataclasses import replace

        from .query import QueryBuilder

        new_mcs = ht_mcs(index)
        # Slow the tag clock if a minimal subframe no longer fits one
        # clock period at the new (lower) rate.
        clock_hz = self.system.config.tag_clock_hz
        symbol_s = 0.0000036 if self.system.config.short_gi else 0.000004
        dbps = new_mcs.data_bits_per_symbol(
            self.system.config.channel_width_mhz
        )
        while clock_hz > 1.0:
            capacity_bytes = (1.0 / clock_hz) / symbol_s * dbps / 8.0
            if capacity_bytes >= 38.0:
                break
            clock_hz /= 2.0
        self.system.config = replace(
            self.system.config, mcs=new_mcs, tag_clock_hz=clock_hz
        )
        self.system.error_model.mcs = new_mcs
        self.system.builder = QueryBuilder(
            self.system.config,
            self.system.client,
            self.system.ap,
            sequence=self.system.builder.sequence,
        )

    def run_queries(self, count: int) -> list:
        """Run ``count`` adaptive query cycles; returns the results.

        Raises:
            ValueError: for a non-positive count.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        results = []
        for cycle in range(count):
            result = self.system.run_query()
            results.append(result)
            n_trigger = result.query.n_trigger_subframes
            trigger_fates = result.block_ack.bits(n_trigger)
            lost = sum(1 for ok in trigger_fates if not ok)
            before = self.controller.mcs_index
            after = self.controller.observe_benign_loss(lost, n_trigger)
            if after != before:
                self.rate_changes.append((cycle, after))
                self._apply_mcs(after)
        return results


@dataclass
class RedundancyController:
    """AIMD redundancy ladder for adaptive FEC (GuardRider-style).

    The FEC twin of :class:`QueryRateController`: where that controller
    walks the query MCS against benign channel losses, this one walks
    the tag's coding redundancy against observed *block corruption* —
    the fraction of FEC blocks the decoder could not correct in a
    feedback round.  Corruption above ``increase_threshold`` steps one
    rung up the ladder (more parity, lower rate) immediately;
    ``decrease_after_clean`` consecutive clean rounds ease one rung
    down (additive-increase-in-rate, multiplicative-ish-decrease in
    exposure — the same hysteresis shape as the MCS controller, so an
    oscillating channel parks at the protective rung instead of
    flapping).

    Attributes:
        levels: redundancy rungs, weakest first — e.g. Reed-Solomon
            parity-symbol counts ``(2, 4, 8, 16)``.
        index: current rung.
        increase_threshold: block-corruption rate that forces a step up.
        decrease_after_clean: clean rounds before easing one rung down.
    """

    levels: tuple = (2, 4, 8, 16)
    index: int = 0
    increase_threshold: float = 0.1
    decrease_after_clean: int = 8
    _clean_streak: int = field(default=0, repr=False)
    _observations: int = field(default=0, repr=False)
    _increases: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.levels = tuple(self.levels)
        if not self.levels:
            raise ValueError("need at least one redundancy level")
        if list(self.levels) != sorted(set(self.levels)):
            raise ValueError("levels must be strictly increasing")
        if not 0 <= self.index < len(self.levels):
            raise ValueError(
                f"index must be 0-{len(self.levels) - 1}, got {self.index}"
            )
        if not 0.0 <= self.increase_threshold < 1.0:
            raise ValueError("increase threshold must be in [0, 1)")
        if self.decrease_after_clean < 1:
            raise ValueError("decrease_after_clean must be >= 1")

    @property
    def level(self):
        """The current redundancy rung's value."""
        return self.levels[self.index]

    @property
    def observations(self) -> int:
        """Feedback rounds processed."""
        return self._observations

    @property
    def increases(self) -> int:
        """Redundancy step-ups taken so far."""
        return self._increases

    def observe_corruption(self, corrupted: int, total: int) -> int:
        """Feed one round's block-corruption counts; returns the index.

        Args:
            corrupted: FEC blocks the decoder flagged uncorrectable.
            total: blocks decoded this round.

        Raises:
            ValueError: for inconsistent counts.
        """
        if total < 0 or corrupted < 0 or corrupted > total:
            raise ValueError(
                f"invalid counts corrupted={corrupted} total={total}"
            )
        if total == 0:
            return self.index
        self._observations += 1
        corruption = corrupted / total
        if corruption > self.increase_threshold:
            if self.index < len(self.levels) - 1:
                self.index += 1
                self._increases += 1
            self._clean_streak = 0
        else:
            self._clean_streak += 1
            if self._clean_streak >= self.decrease_after_clean and self.index:
                self.index -= 1
                self._clean_streak = 0
        return self.index
