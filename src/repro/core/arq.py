"""Reliable tag-message transfer: ARQ over the WiTAG link.

The paper leaves error handling to future work (§4.1).  The measured error
process (see ``benchmarks/test_ablation_fec.py``) is bursty — whole query
A-MPDUs go bad when the tag's reflected path fades — which makes
message-level retransmission the right recovery unit.  This module wraps a
:class:`~repro.core.system.WiTagSystem` in a simple ARQ loop:

1. load the CRC-framed message onto the tag;
2. query until the tag's queue drains;
3. if no CRC-valid copy surfaced at the reader, retransmit;
4. give up after ``max_attempts``.

The tag side of this protocol needs nothing beyond what the paper's tag
already has: a queue and a CRC appended at framing time.  "Did the reader
get it?" feedback would ride the next query's trigger pattern in a real
deployment; the simulator grants it implicitly by letting the controller
see the reader state (a standard simplification for protocol evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .decoder import TagReader
from .encoder import TagEncoder
from .framing import TagMessage
from .system import WiTagSystem


@dataclass(frozen=True)
class TransferReport:
    """Outcome of one reliable message transfer.

    Attributes:
        delivered: whether a CRC-valid copy reached the reader.
        attempts: transmissions of the framed message (1 = no retries).
        queries: total query cycles consumed.
        airtime_s: total wall-clock time consumed by those cycles.
        message_bits: size of the framed message.
    """

    delivered: bool
    attempts: int
    queries: int
    airtime_s: float
    message_bits: int

    @property
    def effective_rate_bps(self) -> float:
        """Delivered message bits per second of channel time (0 if lost)."""
        if not self.delivered or self.airtime_s <= 0:
            return 0.0
        return self.message_bits / self.airtime_s


@dataclass
class ArqTransfer:
    """ARQ controller for reliable tag-to-reader messaging.

    Attributes:
        system: the deployment.
        encoder: bit-level encoder (must match on tag and reader).
        max_attempts: transmissions before giving up.
    """

    system: WiTagSystem
    encoder: TagEncoder = field(default_factory=TagEncoder)
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def send(self, payload: bytes) -> TransferReport:
        """Reliably transfer one payload; returns the transfer report."""
        message = TagMessage(payload=payload)
        bits = message.to_bits()
        reader = TagReader(encoder=self.encoder)
        queries = 0
        airtime = 0.0
        attempts = 0
        delivered = False
        while attempts < self.max_attempts and not delivered:
            attempts += 1
            self.system.load_tag_bits(self.encoder.encode(bits))
            while self.system.tag.pending_bits and not delivered:
                result = self.system.run_query()
                reader.ingest(result.block_ack, result.query)
                queries += 1
                airtime += result.cycle_s
                delivered = any(
                    m.payload == payload for m in reader.messages()
                )
        return TransferReport(
            delivered=delivered,
            attempts=attempts,
            queries=queries,
            airtime_s=airtime,
            message_bits=message.framed_bits,
        )

    def send_all(self, payloads: list[bytes]) -> list[TransferReport]:
        """Transfer a sequence of payloads back to back."""
        return [self.send(p) for p in payloads]
