"""Reader-side decoding: block-ACK bitmaps -> tag bits -> messages.

This is the only software a WiTAG deployment adds to the WiFi client
(paper §4: "It only requires an application that reads the tag's data from
block ACKs").  Given the block ACK for a query frame, the reader:

1. aligns the bitmap with the query's starting sequence number;
2. discards the trigger-subframe positions;
3. maps subframe fates to raw bits (received -> 1, lost -> 0, paper §4);
4. un-line-codes / un-FECs via the configured :class:`TagEncoder`; and
5. re-assembles framed messages across queries via a bit-stream scanner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mac.block_ack import BlockAck, seq_offset
from .encoder import TagEncoder
from .errors import DecodeError
from .framing import TagMessage, scan_for_frames
from .query import QueryFrame

Bits = list[int]


def raw_bits_from_block_ack(block_ack: BlockAck, query: QueryFrame) -> Bits:
    """Extract the tag's raw payload-subframe bits for one query.

    Raises:
        DecodeError: if the bitmap window does not cover the query's
            sequence range.
    """
    offset = seq_offset(block_ack.ssn, query.ssn)
    last = offset + query.n_subframes - 1
    if last >= 64:
        raise DecodeError(
            f"query occupies bitmap offsets {offset}..{last}, outside the "
            "64-bit block-ACK window"
        )
    fates = block_ack.bits(offset + query.n_subframes)[offset:]
    payload_fates = fates[query.n_trigger_subframes :]
    return [1 if ok else 0 for ok in payload_fates]


@dataclass
class TagReader:
    """Accumulates per-query bits and extracts framed tag messages.

    Attributes:
        encoder: must match the tag's encoder configuration.
    """

    encoder: TagEncoder = field(default_factory=TagEncoder)
    _stream: Bits = field(default_factory=list)

    def ingest(self, block_ack: BlockAck, query: QueryFrame) -> Bits:
        """Process one query's block ACK; returns the raw extracted bits.

        Raw subframe bits are buffered across queries; line-code and FEC
        decoding happen over the accumulated stream in :meth:`messages`,
        because a codeword (or Manchester pair) may straddle a query
        boundary.
        """
        raw = raw_bits_from_block_ack(block_ack, query)
        self._stream.extend(raw)
        return raw

    def messages(self) -> list[TagMessage]:
        """All valid messages currently recoverable from the stream.

        Decodes the full buffered stream (tolerantly — see
        :meth:`TagEncoder.decode_stream`) and re-scans for frames each
        call; simple and safe for the stream sizes in play (bounded by
        :meth:`trim`).
        """
        try:
            decoded = self.encoder.decode_stream(self._stream)
        except DecodeError:
            return []
        return scan_for_frames(decoded)

    def trim(self, keep_bits: int = 65536) -> None:
        """Bound the internal stream buffer to the trailing ``keep_bits``."""
        if keep_bits < 0:
            raise ValueError("keep_bits must be >= 0")
        if len(self._stream) > keep_bits:
            del self._stream[: len(self._stream) - keep_bits]

    @property
    def stream_bits(self) -> int:
        """Current buffered stream length."""
        return len(self._stream)


def bit_errors(sent: Bits, received: Bits) -> int:
    """Hamming distance between two equal-length bit lists.

    Raises:
        ValueError: on length mismatch — callers must align first.
    """
    if len(sent) != len(received):
        raise ValueError(
            f"length mismatch: sent {len(sent)} vs received {len(received)}"
        )
    return sum(1 for a, b in zip(sent, received) if a != b)
