"""WiTAG core: the paper's primary contribution as a library.

Public API for building query frames, running end-to-end tag
communication, and decoding tag data from block ACKs.
"""

from .arq import ArqTransfer, TransferReport
from .config import EncryptionMode, WiTagConfig
from .decoder import TagReader, bit_errors, raw_bits_from_block_ack
from .encoder import LineCode, TagEncoder
from .errors import (
    ConfigurationError,
    DecodeError,
    FecError,
    FramingError,
    WiTagError,
)
from .fec import (
    BlockInterleaver,
    HammingCode,
    InterleavedCode,
    NoCode,
    RepetitionCode,
)
from .fleet import TagFleet
from .framing import TagMessage, bits_to_bytes, bytes_to_bits, deframe, scan_for_frames
from .multitag import MultiTagCell, MultiTagQueryResult, TagEndpoint
from .query import QueryBuilder, QueryFrame, TRIGGER_PATTERN
from .rate_control import AdaptiveSession, QueryRateController
from .session import MeasurementSession, SessionStats, run_parallel_sessions
from .system import DEFAULT_AP, DEFAULT_CLIENT, QueryResult, WiTagSystem
from .throughput import (
    CycleBreakdown,
    analytic_throughput_bps,
    block_ack_airtime_s,
    query_cycle,
    subframe_airtime_s,
)

__all__ = [
    "ArqTransfer",
    "BlockInterleaver",
    "ConfigurationError",
    "CycleBreakdown",
    "DEFAULT_AP",
    "DEFAULT_CLIENT",
    "DecodeError",
    "EncryptionMode",
    "FecError",
    "FramingError",
    "HammingCode",
    "InterleavedCode",
    "LineCode",
    "MeasurementSession",
    "MultiTagCell",
    "MultiTagQueryResult",
    "NoCode",
    "QueryBuilder",
    "QueryFrame",
    "AdaptiveSession",
    "QueryRateController",
    "QueryResult",
    "RepetitionCode",
    "SessionStats",
    "run_parallel_sessions",
    "TRIGGER_PATTERN",
    "TagEncoder",
    "TagEndpoint",
    "TagFleet",
    "TagMessage",
    "TagReader",
    "TransferReport",
    "WiTagConfig",
    "WiTagError",
    "WiTagSystem",
    "analytic_throughput_bps",
    "bit_errors",
    "bits_to_bytes",
    "block_ack_airtime_s",
    "bytes_to_bits",
    "deframe",
    "query_cycle",
    "raw_bits_from_block_ack",
    "scan_for_frames",
    "subframe_airtime_s",
]
