"""Query A-MPDU construction.

A WiTAG query is an ordinary A-MPDU whose only purpose is to exist on the
air long enough, and in the right shape, for the tag to write bits into it
(paper §4): a couple of *trigger subframes* carrying a known amplitude
pattern (§7), followed by payload subframes the tag may corrupt.

Two details make queries tag-friendly:

* **Clock-grid padding.**  The tag toggles on its local clock (one cycle
  per subframe for the 50 kHz design point).  The builder pads subframes —
  with slightly alternating sizes, since A-MPDU subframes are 4-byte
  quantised — so that every cumulative subframe boundary stays within a
  fraction of an OFDM symbol of the ideal ``k * clock_period`` grid.  This
  bounds the tag's accumulated misalignment independent of frame length.
* **Trigger pattern.**  Trigger subframes carry payload bytes chosen to
  create amplitude contrast for the tag's envelope detector.  Payload
  subframes are null QoS frames padded to size.

When the network uses encryption, each MPDU body is protected with CCMP or
WEP before aggregation.  Nothing else changes — which is the paper's
encryption-compatibility argument made concrete.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mac.addresses import MacAddress
from ..mac.ampdu import DELIMITER_BYTES, aggregate, subframe_lengths
from ..mac.crc import fcs_bytes
from ..mac.frames import QosDataFrame, SequenceControl
from ..mac.security.ccmp import CcmpContext
from ..mac.security.wep import WepContext
from ..mac.sequence import SequenceCounter
from ..phy.airtime import SubframeSchedule, subframe_schedule
from .config import EncryptionMode, WiTagConfig
from .errors import ConfigurationError

#: Alternating high/low amplitude bytes for the trigger pattern: runs of
#: ones and zeros produce OFDM waveforms with distinguishable envelope
#: statistics after scrambling-free payload mapping (model-level stand-in
#: for the paper's "specific bit patterns ... different signal amplitudes").
TRIGGER_PATTERN = bytes([0xFF, 0x00] * 8)

#: Minimum MPDU: QoS header + FCS.
_MIN_MPDU_BYTES = QosDataFrame.HEADER_BYTES + QosDataFrame.FCS_BYTES

#: Cap on memoized frames per builder (the default 64-subframe query
#: cycles through 64 distinct SSNs; pathological subframe counts are
#: bounded here rather than allowed to retain all 4096).
_FRAME_MEMO_MAX = 256


@dataclass(frozen=True)
class QueryFrame:
    """A fully built query A-MPDU ready for 'transmission'.

    Attributes:
        psdu: the serialized A-MPDU bytes.
        mpdus: the individual serialized MPDUs, in order.
        schedule: on-air timing of each subframe.
        ssn: starting sequence number (anchors the block-ACK bitmap).
        n_trigger_subframes: leading subframes not carrying tag bits.
    """

    psdu: bytes
    mpdus: tuple[bytes, ...]
    schedule: SubframeSchedule
    ssn: int
    n_trigger_subframes: int

    @property
    def n_subframes(self) -> int:
        return len(self.mpdus)

    @property
    def n_payload_subframes(self) -> int:
        return self.n_subframes - self.n_trigger_subframes

    @property
    def airtime_s(self) -> float:
        """Total PPDU airtime."""
        return self.schedule.timing.total_s

    @property
    def mean_subframe_s(self) -> float:
        """Mean start-to-start subframe period.

        This is the toggle period a synchronised tag must realise.  It is
        measured between window *starts*: adjacent subframes share their
        boundary OFDM symbol, so window durations overlap and would
        overestimate the period.
        """
        windows = self.schedule.windows
        if len(windows) == 1:
            return windows[0][1] - windows[0][0]
        return (windows[-1][0] - windows[0][0]) / (len(windows) - 1)


class QueryBuilder:
    """Builds query A-MPDUs for a configuration.

    Example:
        >>> from repro.mac.addresses import MacAddress
        >>> builder = QueryBuilder(
        ...     WiTagConfig(),
        ...     client=MacAddress.parse("02:00:00:00:00:01"),
        ...     ap=MacAddress.parse("02:00:00:00:00:02"),
        ... )
        >>> query = builder.build()
        >>> query.n_subframes
        64
    """

    def __init__(
        self,
        config: WiTagConfig,
        client: MacAddress,
        ap: MacAddress,
        *,
        sequence: SequenceCounter | None = None,
    ) -> None:
        self.config = config
        self.client = client
        self.ap = ap
        self.sequence = sequence or SequenceCounter()
        self._ccmp: CcmpContext | None = None
        self._wep: WepContext | None = None
        if config.encryption is EncryptionMode.WPA2_CCMP:
            self._ccmp = CcmpContext(config.encryption_key)
        elif config.encryption is EncryptionMode.WEP:
            self._wep = WepContext(config.encryption_key)
        self._target_bytes = self._target_subframe_bytes()
        # Unencrypted query content is identical between builds except the
        # per-MPDU sequence-control field, so serialized templates, the
        # byte plan and the airtime schedule are cached after first use
        # (see build()).  Encrypted builds bypass the cache: CCMP/WEP
        # payloads change with every packet number / IV.
        self._templates: list[tuple[bytes, bytes]] | None = None
        self._schedule: SubframeSchedule | None = None
        # Sequence numbers advance n_subframes per build (mod 4096), so
        # unencrypted frames repeat with period 4096 / gcd(4096,
        # n_subframes) — at most _FRAME_MEMO_MAX distinct SSNs for the
        # default 64-subframe query.  build_fast() serves repeats from
        # this memo; QueryFrame is frozen so sharing is safe.
        self._frame_memo: dict[int, QueryFrame] = {}

    def _target_subframe_bytes(self) -> float:
        """Ideal (fractional) on-air bytes per subframe.

        One tag clock period of airtime at the configured MCS.
        """
        cfg = self.config
        dbps = cfg.mcs.data_bits_per_symbol(cfg.channel_width_mhz)
        symbol_s = 0.0000036 if cfg.short_gi else 0.000004
        symbols = cfg.tag_clock_period_s / symbol_s
        target = symbols * dbps / 8.0
        if target < _MIN_MPDU_BYTES + DELIMITER_BYTES:
            raise ConfigurationError(
                "tag clock period too short for a minimal subframe at "
                f"this MCS (need >= {_MIN_MPDU_BYTES + DELIMITER_BYTES} "
                f"bytes, target {target:.1f})"
            )
        return target

    def _subframe_byte_plan(self) -> list[int]:
        """Per-subframe on-air sizes tracking the tag clock grid.

        Chooses each subframe's size so the *cumulative* boundary after
        subframe k is the 4-byte-quantised value nearest ``k * target``,
        bounding boundary error by 2 bytes regardless of frame length.
        """
        n = self.config.n_subframes
        plan: list[int] = []
        previous = 0
        minimum = _MIN_MPDU_BYTES + DELIMITER_BYTES
        for k in range(1, n + 1):
            cumulative = 4 * round(k * self._target_bytes / 4.0)
            size = cumulative - previous
            if size < minimum:
                size = minimum + (-minimum) % 4
                cumulative = previous + size
            plan.append(size)
            previous = cumulative
        return plan

    def _payload_for(self, subframe_bytes: int, trigger: bool) -> bytes:
        """MPDU payload filling a subframe to its planned on-air size."""
        payload_len = subframe_bytes - DELIMITER_BYTES - _MIN_MPDU_BYTES
        overhead = 0
        if self._ccmp is not None:
            overhead = 8 + 8  # CCMP header + MIC
        elif self._wep is not None:
            overhead = 4 + 4  # IV + key id + ICV
        payload_len = max(0, payload_len - overhead)
        if trigger:
            repeats = math.ceil(payload_len / len(TRIGGER_PATTERN)) if payload_len else 0
            return (TRIGGER_PATTERN * max(repeats, 1))[:payload_len]
        return bytes(payload_len)

    def _protect(self, payload: bytes) -> bytes:
        """Apply the configured link encryption to an MPDU payload."""
        if self._ccmp is not None:
            protected, _pn = self._ccmp.encrypt(
                payload, bytes(self.client)
            )
            return protected
        if self._wep is not None:
            return self._wep.encrypt(payload)
        return payload

    def _serialize_subframe(self, size: int, trigger: bool, seq: int) -> bytes:
        """Reference MPDU serialization for one subframe (any encryption)."""
        payload = self._protect(self._payload_for(size, trigger))
        frame = QosDataFrame(
            receiver=self.ap,
            transmitter=self.client,
            destination=self.ap,
            seq=SequenceControl(seq),
            payload=payload,
        )
        return frame.serialize()

    def build(self) -> QueryFrame:
        """Build the next query A-MPDU, consuming sequence numbers."""
        cfg = self.config
        if self._ccmp is not None or self._wep is not None:
            return self._build_reference()
        if self._templates is None:
            # First unencrypted build: serialize each subframe once through
            # the reference path and remember it split around the 2-byte
            # sequence-control field (bytes 22..24 of the MPDU header).
            self._templates = []
            for index, size in enumerate(self._subframe_byte_plan()):
                serialized = self._serialize_subframe(
                    size, index < cfg.n_trigger_subframes, 0
                )
                body = serialized[: -QosDataFrame.FCS_BYTES]
                self._templates.append((body[:22], body[24:]))
        ssn = self.sequence.next_value
        mpdus: list[bytes] = []
        for head, tail in self._templates:
            seq = SequenceControl(self.sequence.allocate()).to_int()
            body = head + seq.to_bytes(2, "little") + tail
            mpdus.append(body + fcs_bytes(body))
        if self._schedule is None:
            # Subframe sizes never change between builds, so the airtime
            # schedule (a frozen dataclass) is computed once and shared.
            self._schedule = subframe_schedule(
                subframe_lengths(mpdus),
                cfg.mcs,
                channel_width_mhz=cfg.channel_width_mhz,
                short_gi=cfg.short_gi,
                phy_format=cfg.phy_format,
            )
        return QueryFrame(
            psdu=aggregate(mpdus),
            mpdus=tuple(mpdus),
            schedule=self._schedule,
            ssn=ssn,
            n_trigger_subframes=cfg.n_trigger_subframes,
        )

    def build_fast(self) -> QueryFrame:
        """Memoized :meth:`build` for the batched session engine.

        Returns frames byte-identical to :meth:`build` (same SSN, same
        MPDUs, same schedule) and advances the sequence counter exactly
        as a real build would.  Unencrypted frames are a pure function of
        the starting sequence number, so repeats within the modulo-4096
        cycle come out of a per-SSN memo instead of being re-spliced.
        Encrypted configs fall through to the uncached reference build
        (CCMP/WEP payloads change every packet number / IV).

        Only the session-batch engine calls this; the scalar and
        per-query fast paths keep paying the splice cost so benchmark
        comparisons against them stay honest.
        """
        if self._ccmp is not None or self._wep is not None:
            return self._build_reference()
        ssn = self.sequence.next_value
        cached = self._frame_memo.get(ssn)
        if cached is not None:
            self.sequence.advance(len(cached.mpdus))
            return cached
        frame = self.build()
        if len(self._frame_memo) < _FRAME_MEMO_MAX:
            self._frame_memo[ssn] = frame
        return frame

    def peek_airtime_s(self) -> float:
        """Airtime of the next query without consuming sequence numbers.

        The session-batch ``run_for`` path uses this to predict the
        (constant) cycle duration before committing to a query count.
        Unencrypted only: an encrypted peek would consume CCMP packet
        numbers / WEP IVs and change subsequent frames.
        """
        if self._ccmp is not None or self._wep is not None:
            raise ConfigurationError(
                "peek_airtime_s is only available for unencrypted queries"
            )
        ssn = self.sequence.next_value
        frame = self.build_fast()
        self.sequence.seek(ssn)
        return frame.airtime_s

    def _build_reference(self) -> QueryFrame:
        """Uncached build serializing every MPDU from scratch.

        The only path for encrypted configs (CCMP packet numbers and WEP
        IVs change every MPDU, so templates would be wrong) and the
        equivalence oracle the cached path is tested against.
        """
        cfg = self.config
        plan = self._subframe_byte_plan()
        ssn = self.sequence.next_value
        mpdus: list[bytes] = []
        for index, size in enumerate(plan):
            trigger = index < cfg.n_trigger_subframes
            mpdus.append(
                self._serialize_subframe(
                    size, trigger, self.sequence.allocate()
                )
            )
        schedule = subframe_schedule(
            subframe_lengths(mpdus),
            cfg.mcs,
            channel_width_mhz=cfg.channel_width_mhz,
            short_gi=cfg.short_gi,
            phy_format=cfg.phy_format,
        )
        return QueryFrame(
            psdu=aggregate(mpdus),
            mpdus=tuple(mpdus),
            schedule=schedule,
            ssn=ssn,
            n_trigger_subframes=cfg.n_trigger_subframes,
        )
