"""Tag-side bit encoding: mapping message bits onto subframe actions.

The base WiTAG line code is trivial — one message bit per payload subframe,
`1` = leave intact, `0` = corrupt (paper §4) — but the encoder layer also
offers Manchester encoding, whose guaranteed transitions let the reader
detect a desynchronised or absent tag (an idle tag produces all-ones,
which is an *invalid* Manchester stream rather than valid data).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import DecodeError
from .fec import Code, HammingCode, InterleavedCode, NoCode, RepetitionCode

Bits = list[int]


class LineCode(enum.Enum):
    """Subframe-level line codes."""

    OOK = "ook"  # direct: one message bit per subframe
    MANCHESTER = "manchester"  # 1 -> (1,0), 0 -> (0,1)


@dataclass(frozen=True)
class TagEncoder:
    """Composes FEC and line coding into the final subframe bit schedule.

    Attributes:
        fec: forward error correction (default: none — the paper's base
            system).
        line_code: subframe-level line code.
    """

    fec: Code = NoCode()
    line_code: LineCode = LineCode.OOK

    def encode(self, message_bits: Bits) -> Bits:
        """Message bits -> subframe bits (what the tag FSM is loaded with)."""
        coded = self.fec.encode(list(message_bits))
        if self.line_code is LineCode.OOK:
            return coded
        out: Bits = []
        for bit in coded:
            out.extend((1, 0) if bit else (0, 1))
        return out

    def decode(self, subframe_bits: Bits) -> Bits:
        """Subframe bits (from the block ACK) -> message bits.

        Raises:
            DecodeError: for an invalid Manchester stream.
        """
        if self.line_code is LineCode.OOK:
            return self.fec.decode(list(subframe_bits))
        if len(subframe_bits) % 2:
            raise DecodeError(
                f"Manchester stream length {len(subframe_bits)} is odd"
            )
        coded: Bits = []
        for i in range(0, len(subframe_bits), 2):
            pair = (subframe_bits[i], subframe_bits[i + 1])
            if pair == (1, 0):
                coded.append(1)
            elif pair == (0, 1):
                coded.append(0)
            else:
                # Erasure: pick the half more likely corrupted by noise.
                # (1,1) means no corruption happened at all -> idle tag.
                raise DecodeError(
                    f"invalid Manchester pair {pair} at position {i}"
                )
        return self.fec.decode(coded)

    def decode_stream(self, subframe_bits: Bits) -> Bits:
        """Decode an accumulated multi-query bit stream tolerantly.

        Unlike :meth:`decode`, which expects one exact codeword-aligned
        chunk, this handles a stream that may end mid-codeword (the tail
        is deferred) and, under Manchester coding, may contain idle
        ``(1, 1)`` stretches from queries the tag slept through — those
        pairs carry no data and are skipped rather than rejected.
        Residual bit errors are passed through; framing CRCs arbitrate.
        """
        bits = list(subframe_bits)
        if self.line_code is LineCode.MANCHESTER:
            coded: Bits = []
            for i in range(0, len(bits) - 1, 2):
                pair = (bits[i], bits[i + 1])
                if pair == (1, 0):
                    coded.append(1)
                elif pair == (0, 1):
                    coded.append(0)
                # (1,1) idle and (0,0) corrupt pairs carry no data.
            bits = coded
        granularity = self._fec_granularity()
        usable = len(bits) - len(bits) % granularity
        return self.fec.decode(bits[:usable])

    def _fec_granularity(self) -> int:
        """Codeword size of the FEC layer in coded bits."""
        if isinstance(self.fec, RepetitionCode):
            return self.fec.n
        if isinstance(self.fec, HammingCode):
            return 7
        if isinstance(self.fec, InterleavedCode):
            return max(self.fec.interleaver.depth, 1)
        return 1

    def subframes_needed(self, n_message_bits: int) -> int:
        """How many payload subframes carry ``n_message_bits``."""
        if n_message_bits < 0:
            raise ValueError("bit count must be >= 0")
        coded = n_message_bits / self.fec.rate
        factor = 2 if self.line_code is LineCode.MANCHESTER else 1
        return int(round(coded)) * factor

    @property
    def efficiency(self) -> float:
        """Message bits per subframe."""
        factor = 0.5 if self.line_code is LineCode.MANCHESTER else 1.0
        return self.fec.rate * factor
