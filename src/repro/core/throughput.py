"""Analytic throughput model for WiTAG (paper §4.1).

WiTAG carries one tag bit per payload subframe, so its rate is governed by
the query cycle::

    cycle = channel access + query PPDU + SIFS + block ACK
    rate  = payload subframes / cycle

The paper's design levers all appear here: more subframes amortise the
per-frame overhead; shorter subframes (higher MCS, smaller MPDUs) shrink
the PPDU — but the subframe duration is floored by the tag's clock period
(one 50 kHz cycle = 20 us), which is what pins the paper's operating point
near 40 Kbps for 64-subframe queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..phy.airtime import ppdu_airtime
from ..phy.constants import (
    SLOT_TIME_S,
    SYMBOL_LONG_GI_S,
)
from .config import WiTagConfig

#: Block ACKs go out as non-HT (legacy OFDM) control responses; 24 Mb/s is
#: the standard basic rate used for control responses in 802.11a/g/n.
_LEGACY_CONTROL_RATE_BPS = 24e6
_LEGACY_PREAMBLE_S = 20e-6
_LEGACY_BITS_PER_SYMBOL = _LEGACY_CONTROL_RATE_BPS * SYMBOL_LONG_GI_S


def block_ack_airtime_s(frame_bytes: int = 32) -> float:
    """Airtime of a compressed block ACK at the legacy control rate."""
    if frame_bytes <= 0:
        raise ValueError("frame must be non-empty")
    bits = 16 + 8 * frame_bytes + 6  # service + PSDU + tail
    n_symbols = math.ceil(bits / _LEGACY_BITS_PER_SYMBOL)
    return _LEGACY_PREAMBLE_S + n_symbols * SYMBOL_LONG_GI_S


@dataclass(frozen=True)
class CycleBreakdown:
    """Timing decomposition of one query cycle.

    Attributes:
        access_s: DIFS + mean backoff (and contention wait if modelled).
        query_s: query PPDU airtime.
        sifs_s: the SIFS before the block ACK.
        block_ack_s: block ACK airtime.
        payload_bits: tag bits carried per cycle.
    """

    access_s: float
    query_s: float
    sifs_s: float
    block_ack_s: float
    payload_bits: int

    @property
    def total_s(self) -> float:
        return self.access_s + self.query_s + self.sifs_s + self.block_ack_s

    @property
    def throughput_bps(self) -> float:
        """Tag bits per second for back-to-back cycles."""
        return self.payload_bits / self.total_s


def subframe_airtime_s(config: WiTagConfig) -> float:
    """On-air duration of one (clock-grid padded) subframe.

    Subframes are padded to one tag clock period, rounded to whole OFDM
    symbols.
    """
    symbol_s = 0.0000036 if config.short_gi else 0.000004
    symbols = max(1, round(config.tag_clock_period_s / symbol_s))
    return symbols * symbol_s


def query_cycle(
    config: WiTagConfig,
    *,
    access_s: float | None = None,
    mean_backoff_slots: float = 7.5,
) -> CycleBreakdown:
    """Analytic cycle breakdown for a configuration.

    Args:
        access_s: override for the channel-access time; by default
            DIFS + ``mean_backoff_slots`` idle slots (CWmin/2 of the
            best-effort access category).
    """
    sifs = config.band.sifs_s
    if access_s is None:
        difs = sifs + 2 * SLOT_TIME_S
        access_s = difs + mean_backoff_slots * SLOT_TIME_S
    dbps = config.mcs.data_bits_per_symbol(config.channel_width_mhz)
    symbol_s = 0.0000036 if config.short_gi else 0.000004
    subframe_bytes = subframe_airtime_s(config) / symbol_s * dbps / 8.0
    psdu_bytes = int(round(subframe_bytes * config.n_subframes))
    timing = ppdu_airtime(
        psdu_bytes,
        config.mcs,
        channel_width_mhz=config.channel_width_mhz,
        short_gi=config.short_gi,
        phy_format=config.phy_format,
    )
    return CycleBreakdown(
        access_s=access_s,
        query_s=timing.total_s,
        sifs_s=sifs,
        block_ack_s=block_ack_airtime_s(),
        payload_bits=config.bits_per_query,
    )


def analytic_throughput_bps(config: WiTagConfig, **kwargs: float) -> float:
    """Tag throughput for a configuration (see :func:`query_cycle`)."""
    return query_cycle(config, **kwargs).throughput_bps
